"""Collections: the core CRUD surface of the document store.

A :class:`Collection` is a named set of documents with secondary indexes,
Mongo-style ``find``/``update``/``delete`` semantics, and — critically for
the paper — an atomic :meth:`find_one_and_update`.  That single primitive is
what lets one MongoDB deployment act as a *message queue*: the FireWorks
launcher claims a runnable job by atomically flipping its state from
``WAITING`` to ``RUNNING`` so that two launchers never grab the same job
(§III-B2).  All mutating operations hold the collection lock, giving the
same document-level atomicity MongoDB provides.

Documents are deep-copied on the way in and out, so callers can never mutate
stored state behind the store's back — the same isolation a wire protocol
would give, at much lower cost.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional

from ..errors import DocstoreError, DuplicateKeyError
from .cursor import Cursor, apply_projection
from .documents import (
    deep_copy_doc,
    doc_size_bytes,
    get_path,
    validate_document,
)
from .indexes import (
    IndexManager,
    QueryPlan,
    default_index_name,
    normalize_index_spec,
)
from .locks import RWLock
from .matching import Matcher, compile_query
from .objectid import ObjectId
from .planner import QueryPlanner, iter_plan
from .updates import apply_update, is_operator_update

__all__ = ["Collection", "InsertResult", "UpdateResult", "DeleteResult", "BulkWriteResult"]


class InsertResult:
    """Result of insert_one/insert_many."""

    __slots__ = ("inserted_ids",)

    def __init__(self, inserted_ids: List[Any]):
        self.inserted_ids = inserted_ids

    @property
    def inserted_id(self) -> Any:
        return self.inserted_ids[0] if self.inserted_ids else None


class UpdateResult:
    __slots__ = ("matched_count", "modified_count", "upserted_id")

    def __init__(self, matched: int, modified: int, upserted_id: Any = None):
        self.matched_count = matched
        self.modified_count = modified
        self.upserted_id = upserted_id


class DeleteResult:
    __slots__ = ("deleted_count",)

    def __init__(self, deleted: int):
        self.deleted_count = deleted


class BulkWriteResult:
    __slots__ = ("inserted_count", "matched_count", "modified_count", "deleted_count")

    def __init__(self, inserted: int, matched: int, modified: int, deleted: int):
        self.inserted_count = inserted
        self.matched_count = matched
        self.modified_count = modified
        self.deleted_count = deleted


class Collection:
    """A named document collection with CRUD, indexes, and atomic claims."""

    def __init__(self, name: str, database: Optional[Any] = None):
        if not name or "$" in name:
            raise DocstoreError(f"invalid collection name {name!r}")
        self.name = name
        self.database = database
        self._docs: Dict[int, dict] = {}
        self._id_to_pos: Dict[Any, int] = {}
        self._next_pos = 0
        self._indexes = IndexManager()
        # Cost-based planner with its shape-keyed plan cache.
        self._planner = QueryPlanner(self)
        # Reader-writer lock: many concurrent finds, one exclusive writer.
        # ``with self._lock:`` (no mode) still takes the exclusive side, so
        # external callers treating it as a mutex stay correct.
        self._lock = RWLock(name=name)
        # The planner's last decision is per-thread: concurrent readers
        # must not clobber each other's explain() output.
        self._plan_local = threading.local()
        # $indexStats-style usage accounting: name -> {"ops", "since"}.
        # Guarded by its own mutex because it is written under the *shared*
        # lock mode, where many reader threads run at once.
        self._index_usage: Dict[str, dict] = {}
        self._usage_lock = threading.Lock()
        # Optional observers (oplog for replication, query timing log).
        self._change_listeners: List[Callable[[str, dict], None]] = []

    # -- bookkeeping ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._docs)

    def __repr__(self) -> str:
        return f"Collection({self.name!r}, docs={len(self._docs)})"

    def add_change_listener(self, fn: Callable[[str, dict], None]) -> None:
        """Register ``fn(op, payload)`` called on insert/update/delete."""
        self._change_listeners.append(fn)

    def _notify(self, op: str, payload: dict) -> None:
        for fn in self._change_listeners:
            fn(op, payload)

    @staticmethod
    def _id_key(value: Any) -> Any:
        return value.binary if isinstance(value, ObjectId) else value

    @property
    def namespace(self) -> str:
        db = self.database
        return f"{db.name}.{self.name}" if db is not None else self.name

    def _ops_registry(self):
        """The owning store's active-ops table, or None when detached.

        ``system.*`` namespaces are exempt so the profiler's own writes
        never appear in ``currentOp`` output.
        """
        if self.name.startswith("system."):
            return None
        client = getattr(self.database, "client", None)
        return getattr(client, "_ops", None)

    def _observe(
        self,
        op: str,
        kind: str,
        query: Any,
        started: float,
        nreturned: int = 0,
        n_ops: int = 1,
        docs_examined: Optional[int] = None,
        plan: Optional[str] = None,
        stages: Optional[List[dict]] = None,
    ) -> None:
        """Report a finished operation to the database's instrumentation
        funnel (opcounters, profiler, metrics, tracing).  A no-op for
        detached collections and ``system.*`` namespaces."""
        db = self.database
        if db is None or self.name.startswith("system."):
            return
        observer = getattr(db, "_observe_op", None)
        if observer is None:
            return
        observer(
            self.name, op, kind, query, time.perf_counter() - started,
            nreturned=nreturned, n_ops=n_ops,
            docs_examined=docs_examined, plan=plan, stages=stages,
        )

    # -- inserts ----------------------------------------------------------

    def insert_one(self, document: Mapping[str, Any]) -> InsertResult:
        """Insert a single document, assigning an ObjectId if needed."""
        t0 = time.perf_counter()
        result = InsertResult([self._insert(document)])
        self._observe("insert", "insert", {}, t0)
        return result

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> InsertResult:
        t0 = time.perf_counter()
        ids = [self._insert(d) for d in documents]
        self._observe("insert", "insert", {}, t0, n_ops=len(ids))
        return InsertResult(ids)

    def _insert(self, document: Mapping[str, Any], _notify: bool = True) -> Any:
        if not isinstance(document, Mapping):
            raise DocstoreError("documents must be mappings")
        doc = deep_copy_doc(dict(document))
        if "_id" not in doc:
            doc["_id"] = ObjectId()
        validate_document(doc)
        with self._lock.write():
            key = self._id_key(doc["_id"])
            if key in self._id_to_pos:
                raise DuplicateKeyError(
                    f"duplicate _id {doc['_id']!r} in collection {self.name!r}"
                )
            pos = self._next_pos
            self._next_pos += 1
            self._indexes.add_document(pos, doc)  # may raise DuplicateKeyError
            self._docs[pos] = doc
            self._id_to_pos[key] = pos
        if _notify:
            self._notify("insert", {"ns": self.name, "doc": deep_copy_doc(doc)})
        return doc["_id"]

    # -- query execution ---------------------------------------------------

    def _record_usage(self, index_name: str) -> None:
        """$indexStats accounting: the planner consulted ``index_name``
        (equality/range probe, sort-only scan, or covered read alike)."""
        with self._usage_lock:
            usage = self._index_usage.setdefault(
                index_name, {"ops": 0, "since": time.time()}
            )
            usage["ops"] += 1

    def _candidates(self, query: Mapping[str, Any], matcher: Matcher) -> Iterator[dict]:
        """Planner-backed candidate stream (no sort/projection push-down).

        Used by find_one / count / find_one_and_* under the caller's lock;
        yields the *stored* documents, so callers must copy before exposure.
        """
        result = self._planner.plan(query, matcher)
        winner = result.winner
        plan_record = QueryPlan(
            winner.kind, winner.index_name, 0,
            provides_sort=winner.provides_sort, covered=winner.covered,
            key_pattern=winner.key_pattern, cache=result.cache_status,
        )
        self._plan_local.plan = plan_record
        if winner.index is not None:
            self._record_usage(winner.index.name)
        stats = {"keys": 0, "docs": 0}
        n = 0
        try:
            for doc, _pos in iter_plan(self, winner, matcher, stats):
                n += 1
                yield doc
        finally:
            plan_record.candidates_examined = stats["docs"]
            plan_record.keys_examined = stats["keys"]
            plan_record.n_returned = n
            self._planner.note_execution(result, stats, n)

    def explain(
        self,
        query: Optional[Mapping[str, Any]] = None,
        sort: Optional[List[tuple]] = None,
        projection: Optional[Mapping[str, Any]] = None,
        hint: Optional[str] = None,
        verbosity: str = "executionStats",
        pipeline: Optional[List[Mapping[str, Any]]] = None,
    ) -> dict:
        """Plan and execute ``query``, reporting the chosen plan.

        Always runs the planner fresh on the given query (never a stale
        per-thread artifact, and never served from the plan cache).  The
        report carries MongoDB ``executionStats``-style fields — ``stage``,
        ``index`` (also as ``indexUsed``), ``docsExamined``/``keysExamined``,
        ``nReturned``, ``executionTimeMillis`` — plus ``planSummary``,
        ``providesSort``/``blockingSort``, ``covered``, ``keyPattern`` and
        the ``rejectedPlans`` the winner beat.  With
        ``verbosity="allPlansExecution"`` each rejected plan includes its
        trial-run statistics.

        With ``pipeline=[...]`` this explains an aggregation instead:
        equivalent to ``aggregate(pipeline, explain=True)`` — per-stage
        docs-in/docs-out/elapsed executionStats (``query``/``sort``/
        ``projection``/``hint`` are ignored in that mode).
        """
        if pipeline is not None:
            return self.aggregate(pipeline, explain=True)
        query = query or {}
        matcher = compile_query(query)
        sort_spec = list(sort) if sort else None
        t0 = time.perf_counter()
        stats = {"keys": 0, "docs": 0}
        with self._lock.read():
            result = self._planner.plan(
                query, matcher, sort_spec=sort_spec, projection=projection,
                hint=hint, use_cache=False,
            )
            winner = result.winner
            count = sum(1 for _ in iter_plan(self, winner, matcher, stats))
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        out = {
            "stage": winner.kind,
            "index": winner.index_name,
            "indexUsed": winner.index_name,
            "docsExamined": stats["docs"],
            "keysExamined": stats["keys"],
            "nReturned": count,
            "executionTimeMillis": elapsed_ms,
            "planSummary": winner.summary,
            "providesSort": winner.provides_sort,
            "blockingSort": bool(sort_spec) and not winner.provides_sort,
            "covered": winner.covered,
            "keyPattern": [list(k) for k in winner.key_pattern]
            if winner.key_pattern else None,
            "rejectedPlans": [c.describe() for c in result.rejected],
        }
        if verbosity == "allPlansExecution":
            out["allPlansExecution"] = [
                dict(c.describe(), winner=(i == 0))
                for i, c in enumerate([winner] + list(result.rejected))
            ]
        return out

    def find(
        self,
        query: Optional[Mapping[str, Any]] = None,
        projection: Optional[Mapping[str, Any]] = None,
        hint: Optional[str] = None,
    ) -> Cursor:
        """Return a lazy cursor over matching documents.

        Planning happens when the cursor executes, so a chained ``.sort``
        participates: the planner may pick an index that yields the sort
        order (no blocking sort) or answer a projection-only query from
        index keys alone (covered query).  ``hint`` forces an index by
        name (``"$natural"`` forces a collection scan).
        """
        query = query or {}
        matcher = compile_query(query)

        def executor(sort_spec, skip, limit, cursor_hint):
            t0 = time.perf_counter()
            registry = self._ops_registry()
            active = (registry.register("find", self.namespace, query)
                      if registry is not None else None)
            effective_hint = cursor_hint if cursor_hint is not None else hint
            matched: List[dict] = []
            try:
                with self._lock.read():
                    if sort_spec is None and effective_hint is None \
                            and projection is None:
                        # Plain unordered read: the shared candidate stream
                        # (same path find_one / count use).
                        max_docs = skip + limit if limit is not None else None
                        gen = self._candidates(query, matcher)
                        try:
                            for doc in gen:
                                if active is not None:
                                    # Cooperative killOp check point.
                                    active.check_killed()
                                matched.append(deep_copy_doc(doc))
                                if max_docs is not None \
                                        and len(matched) >= max_docs:
                                    break
                        finally:
                            gen.close()  # flush plan stats eagerly
                        plan_record = self.last_plan
                        already_sorted = True
                    else:
                        plan_record, already_sorted = self._planned_read(
                            query, matcher, sort_spec, skip, limit,
                            effective_hint, projection, matched, active,
                        )
                    if active is not None and plan_record is not None:
                        active.plan_summary = plan_record.summary
            finally:
                if registry is not None:
                    registry.finish(active)
            self._observe(
                "find", "query", query, t0, nreturned=len(matched),
                docs_examined=plan_record.candidates_examined
                if plan_record else None,
                plan=plan_record.summary if plan_record else None,
            )
            return matched, already_sorted

        return Cursor(executor, projection, planned=True)

    def _planned_read(
        self,
        query: Mapping[str, Any],
        matcher: Matcher,
        sort_spec: Optional[List[tuple]],
        skip: int,
        limit: Optional[int],
        hint: Optional[str],
        projection: Optional[Mapping[str, Any]],
        matched: List[dict],
        active: Any,
    ) -> tuple:
        """Plan-and-execute a find with sort/hint/projection push-down.

        Appends result documents to ``matched`` and returns
        ``(plan_record, already_sorted)``.  Caller holds the read lock.
        """
        result = self._planner.plan(
            query, matcher, sort_spec=sort_spec,
            projection=projection, hint=hint,
        )
        winner = result.winner
        # Limit push-down is only sound when results already arrive in
        # final order (index-provided, or no sort requested at all).
        max_docs = None
        if limit is not None and (not sort_spec or winner.provides_sort):
            max_docs = skip + limit
        stats = {"keys": 0, "docs": 0}
        for doc, _pos in iter_plan(self, winner, matcher, stats):
            if active is not None:
                # Cooperative killOp check point, per candidate.
                active.check_killed()
            matched.append(doc if winner.covered else deep_copy_doc(doc))
            if max_docs is not None and len(matched) >= max_docs:
                break
        plan_record = QueryPlan(
            winner.kind, winner.index_name, stats["docs"],
            keys_examined=stats["keys"],
            n_returned=len(matched),
            provides_sort=winner.provides_sort,
            covered=winner.covered,
            key_pattern=winner.key_pattern,
            rejected=[c.describe() for c in result.rejected],
            cache=result.cache_status,
        )
        self._plan_local.plan = plan_record
        if winner.index is not None:
            self._record_usage(winner.index.name)
        self._planner.note_execution(result, stats, len(matched))
        return plan_record, (not sort_spec) or winner.provides_sort

    def find_one(
        self,
        query: Optional[Mapping[str, Any]] = None,
        projection: Optional[Mapping[str, Any]] = None,
    ) -> Optional[dict]:
        """First matching document or None."""
        query = query or {}
        matcher = compile_query(query)
        t0 = time.perf_counter()
        with self._lock.read():
            for doc in self._candidates(query, matcher):
                result = apply_projection(doc, projection)
                self._observe("findOne", "query", query, t0, nreturned=1)
                return result
        self._observe("findOne", "query", query, t0, nreturned=0)
        return None

    def count_documents(self, query: Optional[Mapping[str, Any]] = None) -> int:
        query = query or {}
        t0 = time.perf_counter()
        if not query:
            n = len(self._docs)
        else:
            matcher = compile_query(query)
            with self._lock.read():
                n = sum(1 for _ in self._candidates(query, matcher))
        self._observe("count", "command", query, t0, nreturned=n)
        return n

    def distinct(
        self, field: str, query: Optional[Mapping[str, Any]] = None
    ) -> List[Any]:
        return self.find(query or {}).distinct(field)

    # -- updates ------------------------------------------------------------

    def update_one(
        self,
        query: Mapping[str, Any],
        update: Mapping[str, Any],
        upsert: bool = False,
    ) -> UpdateResult:
        t0 = time.perf_counter()
        result = self._update(query, update, multi=False, upsert=upsert)
        self._observe("update", "update", query, t0,
                      nreturned=result.matched_count)
        return result

    def update_many(
        self,
        query: Mapping[str, Any],
        update: Mapping[str, Any],
        upsert: bool = False,
    ) -> UpdateResult:
        t0 = time.perf_counter()
        result = self._update(query, update, multi=True, upsert=upsert)
        self._observe("update", "update", query, t0,
                      nreturned=result.matched_count)
        return result

    def replace_one(
        self,
        query: Mapping[str, Any],
        replacement: Mapping[str, Any],
        upsert: bool = False,
    ) -> UpdateResult:
        if is_operator_update(replacement):
            raise DocstoreError("replace_one requires a plain document")
        t0 = time.perf_counter()
        result = self._update(query, replacement, multi=False, upsert=upsert)
        self._observe("update", "update", query, t0,
                      nreturned=result.matched_count)
        return result

    def _update(
        self,
        query: Mapping[str, Any],
        update: Mapping[str, Any],
        multi: bool,
        upsert: bool,
    ) -> UpdateResult:
        matcher = compile_query(query)
        is_operator_update(update)  # validates mixing eagerly
        matched = 0
        modified = 0
        with self._lock.write():
            positions = [
                pos
                for pos in sorted(self._docs)
                if matcher.matches(self._docs[pos])
            ]
            if not multi:
                positions = positions[:1]
            for pos in positions:
                matched += 1
                if self._apply_to_position(pos, update):
                    modified += 1
            if matched == 0 and upsert:
                new_doc = self._build_upsert_doc(query, update)
                new_id = self._insert(new_doc)
                return UpdateResult(0, 0, upserted_id=new_id)
        return UpdateResult(matched, modified)

    def _apply_to_position(self, pos: int, update: Mapping[str, Any]) -> bool:
        old = self._docs[pos]
        new = deep_copy_doc(old)
        apply_update(new, update)
        validate_document(new)
        if new.get("_id") != old.get("_id"):
            raise DocstoreError("update cannot change _id")
        if new == old:
            return False
        self._indexes.remove_document(pos, old)
        try:
            self._indexes.add_document(pos, new)
        except DuplicateKeyError:
            self._indexes.add_document(pos, old)  # restore
            raise
        self._docs[pos] = new
        self._notify(
            "update",
            {"ns": self.name, "_id": new.get("_id"), "doc": deep_copy_doc(new)},
        )
        return True

    @staticmethod
    def _build_upsert_doc(
        query: Mapping[str, Any], update: Mapping[str, Any]
    ) -> dict:
        base: dict = {}
        # Seed with equality conditions from the query, like Mongo upserts.
        for field, cond in query.items():
            if field.startswith("$"):
                continue
            if isinstance(cond, Mapping) and any(
                str(k).startswith("$") for k in cond
            ):
                if "$eq" in cond:
                    from .documents import set_path

                    set_path(base, field, deep_copy_doc(cond["$eq"]))
                continue
            from .documents import set_path

            set_path(base, field, deep_copy_doc(cond))
        if is_operator_update(update):
            apply_update(base, update, is_insert=True)
        else:
            preserved_id = base.get("_id")
            base = deep_copy_doc(dict(update))
            if preserved_id is not None and "_id" not in base:
                base["_id"] = preserved_id
        return base

    def find_one_and_update(
        self,
        query: Mapping[str, Any],
        update: Mapping[str, Any],
        sort: Optional[List[tuple]] = None,
        return_document: str = "before",
        upsert: bool = False,
        projection: Optional[Mapping[str, Any]] = None,
    ) -> Optional[dict]:
        """Atomically find one document and update it.

        This is the task-queue primitive: the launcher calls it with a
        "runnable job" query and a ``{"$set": {"state": "RUNNING", ...}}``
        update; under the collection lock no other launcher can claim the
        same document.  ``return_document`` is ``"before"`` or ``"after"``.
        """
        if return_document not in ("before", "after"):
            raise DocstoreError("return_document must be 'before' or 'after'")
        matcher = compile_query(query)
        t0 = time.perf_counter()
        with self._lock.write():
            candidates = list(self._candidates(query, matcher))
            if sort:
                from .matching import ordering_key

                for field, direction in reversed(sort):
                    candidates.sort(
                        key=lambda d, _f=field: ordering_key(get_path(d, _f)),
                        reverse=direction == -1,
                    )
            if not candidates:
                if upsert:
                    new_doc = self._build_upsert_doc(query, update)
                    new_id = self._insert(new_doc)
                    self._observe("findAndModify", "update", query, t0,
                                  nreturned=1)
                    if return_document == "after":
                        stored = self.find_one({"_id": new_id}, projection)
                        return stored
                else:
                    self._observe("findAndModify", "update", query, t0)
                return None
            target = candidates[0]
            pos = self._id_to_pos[self._id_key(target["_id"])]
            before = deep_copy_doc(self._docs[pos])
            self._apply_to_position(pos, update)
            result = before if return_document == "before" else deep_copy_doc(
                self._docs[pos]
            )
            self._observe("findAndModify", "update", query, t0, nreturned=1)
            return apply_projection(result, projection) if projection else result

    def find_one_and_delete(
        self,
        query: Mapping[str, Any],
        sort: Optional[List[tuple]] = None,
    ) -> Optional[dict]:
        """Atomically find one matching document and remove it."""
        matcher = compile_query(query)
        t0 = time.perf_counter()
        with self._lock.write():
            candidates = list(self._candidates(query, matcher))
            if sort:
                from .matching import ordering_key

                for field, direction in reversed(sort):
                    candidates.sort(
                        key=lambda d, _f=field: ordering_key(get_path(d, _f)),
                        reverse=direction == -1,
                    )
            if not candidates:
                self._observe("findAndModify", "delete", query, t0)
                return None
            target = candidates[0]
            self._delete_by_id(target["_id"])
            self._observe("findAndModify", "delete", query, t0, nreturned=1)
            return deep_copy_doc(target)

    # -- deletes -------------------------------------------------------------

    def delete_one(self, query: Mapping[str, Any]) -> DeleteResult:
        return self._delete(query, multi=False)

    def delete_many(self, query: Optional[Mapping[str, Any]] = None) -> DeleteResult:
        return self._delete(query or {}, multi=True)

    def _delete(self, query: Mapping[str, Any], multi: bool) -> DeleteResult:
        # IDHACK: a bare _id equality resolves through the _id map instead
        # of scanning every document.
        if len(query) == 1 and "_id" in query and not isinstance(
                query["_id"], (Mapping, list)):
            t0 = time.perf_counter()
            deleted = 0
            with self._lock.write():
                if self._id_key(query["_id"]) in self._id_to_pos:
                    self._delete_by_id(query["_id"])
                    deleted = 1
            self._observe("delete", "delete", query, t0, nreturned=deleted)
            return DeleteResult(deleted)
        matcher = compile_query(query)
        deleted = 0
        t0 = time.perf_counter()
        with self._lock.write():
            ids = [
                self._docs[pos]["_id"]
                for pos in sorted(self._docs)
                if matcher.matches(self._docs[pos])
            ]
            if not multi:
                ids = ids[:1]
            for _id in ids:
                self._delete_by_id(_id)
                deleted += 1
        self._observe("delete", "delete", query, t0, nreturned=deleted)
        return DeleteResult(deleted)

    def _delete_by_id(self, _id: Any) -> None:
        key = self._id_key(_id)
        pos = self._id_to_pos.pop(key, None)
        if pos is None:
            return
        doc = self._docs.pop(pos)
        self._indexes.remove_document(pos, doc)
        self._notify("delete", {"ns": self.name, "_id": _id})

    def drop(self) -> None:
        """Remove all documents and indexes."""
        with self._lock.write():
            self._docs.clear()
            self._id_to_pos.clear()
            for name in self._indexes.names():
                self._indexes.drop(name)
            self._next_pos = 0
        self._notify("drop", {"ns": self.name})

    # -- indexes ---------------------------------------------------------------

    def create_index(
        self, keys: Any, unique: bool = False, name: Optional[str] = None,
        expire_after_seconds: Optional[float] = None
    ) -> str:
        """Create (and bulk-backfill) an index; returns its name.

        ``keys`` accepts a bare field name or a compound spec like
        ``[("formula", 1), ("e_above_hull", -1)]``.  Re-creating an index
        with an identical spec is a no-op; reusing a name for a different
        spec is an error.  Creating or dropping an index invalidates the
        collection's plan cache.

        ``expire_after_seconds`` marks the index as a TTL index: documents
        whose *first* indexed field holds an epoch-seconds number older
        than ``now - expire_after_seconds`` are removed by
        :meth:`reap_expired` (usually driven by the store's background
        reaper).  Unlike MongoDB's date-typed TTL, expiry here follows the
        repo's ``ts``-as-epoch-float convention; non-numeric values never
        expire (type-bracketed ``$lt``).
        """
        spec = normalize_index_spec(keys)
        index_name = name or default_index_name(spec)
        ttl = (
            float(expire_after_seconds)
            if expire_after_seconds is not None else None
        )
        with self._lock.write():
            existing = self._indexes.get(index_name)
            if existing is not None:
                if (existing.keys == spec and existing.unique == unique
                        and existing.expire_after_seconds == ttl):
                    return index_name
                raise DocstoreError(
                    f"index {index_name!r} already exists with a "
                    "different spec"
                )
            index = self._indexes.create(spec, unique=unique, name=index_name,
                                         expire_after_seconds=ttl)
            try:
                index.build(sorted(self._docs.items()))
            except DocstoreError:
                self._indexes.drop(index.name)
                raise
            with self._usage_lock:
                self._index_usage.setdefault(
                    index.name, {"ops": 0, "since": time.time()}
                )
            self._planner.invalidate()
            return index.name

    def drop_index(self, name: str) -> None:
        with self._lock.write():
            self._indexes.drop(name)
            with self._usage_lock:
                self._index_usage.pop(name, None)
            self._planner.invalidate()

    def index_information(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        for ix in self._indexes.all():
            info = {
                "field": ix.field,
                "key": [list(k) for k in ix.keys],
                "unique": ix.unique,
                "entries": len(ix),
            }
            if ix.expire_after_seconds is not None:
                info["expireAfterSeconds"] = ix.expire_after_seconds
            out[ix.name] = info
        return out

    # -- TTL retention ---------------------------------------------------------

    def ttl_info(self) -> List[dict]:
        """The collection's TTL indexes as ``{name, field,
        expire_after_seconds}`` rows (empty for most collections — the
        store's reaper uses this to skip them cheaply)."""
        with self._lock.read():
            return [
                {
                    "name": ix.name,
                    "field": ix.field,
                    "expire_after_seconds": ix.expire_after_seconds,
                }
                for ix in self._indexes.ttl_indexes()
            ]

    def reap_expired(self, now: Optional[float] = None) -> int:
        """Delete documents past every TTL index's retention window.

        Expiry goes through the normal :meth:`delete_many` path, so change
        streams, replication, and the journal all observe the deletes —
        TTL is a real engine feature, not a storage-side vacuum.  Returns
        the number of documents removed.
        """
        ttl = self.ttl_info()
        if not ttl:
            return 0
        if now is None:
            now = time.time()
        removed = 0
        for info in ttl:
            cutoff = now - info["expire_after_seconds"]
            # Type-bracketed $lt: only numeric (epoch-seconds) values can
            # expire; strings/dates-as-strings are left alone.
            result = self.delete_many({info["field"]: {"$lt": cutoff}})
            removed += result.deleted_count
        return removed

    def index_stats(self) -> List[dict]:
        """``$indexStats``-style usage accounting, one document per index.

        ``accesses.ops`` counts queries the planner answered with the
        index — equality/range probes, sort-only consultations, and
        covered reads alike; ``accesses.since`` is when counting began.
        An index with zero ops since creation is a drop candidate — the
        advisor's :meth:`~repro.obs.advisor.IndexAdvisor.unused_indexes`
        reads this.
        """
        with self._lock.read(), self._usage_lock:
            return [
                {
                    "name": ix.name,
                    "field": ix.field,
                    "key": [list(k) for k in ix.keys],
                    "unique": ix.unique,
                    "entries": len(ix),
                    "accesses": dict(self._index_usage.get(
                        ix.name, {"ops": 0, "since": None}
                    )),
                }
                for ix in self._indexes.all()
            ]

    def plan_cache_stats(self) -> dict:
        """Hit/miss/evict/invalidate/replan counters for the plan cache."""
        return self._planner.cache.stats()

    @property
    def last_plan(self) -> Optional[QueryPlan]:
        """Plan chosen by this thread's most recent query.

        Per-thread on purpose: under the shared lock mode several readers
        plan queries simultaneously, and each must see its own plan.
        """
        return getattr(self._plan_local, "plan", None)

    # -- bulk writes -------------------------------------------------------------

    def bulk_write(
        self,
        operations: List[Mapping[str, Any]],
        ordered: bool = True,
    ) -> BulkWriteResult:
        """Execute a batch of write operations (pymongo-style op docs).

        Each operation is a single-key document naming the op::

            {"insert_one": {"document": {...}}}
            {"update_one": {"filter": {...}, "update": {...}, "upsert": bool}}
            {"update_many": {...}}  {"replace_one": {...}}
            {"delete_one": {"filter": {...}}}  {"delete_many": {...}}

        With ``ordered=True`` (default) execution stops at the first error,
        matching MongoDB; the partial result is attached to the raised
        exception as ``partial_result``.
        """
        inserted = matched = modified = deleted = 0
        for i, op_doc in enumerate(operations):
            if not isinstance(op_doc, Mapping) or len(op_doc) != 1:
                raise DocstoreError(
                    f"bulk op {i} must be a single-key document"
                )
            name, spec = next(iter(op_doc.items()))
            try:
                if name == "insert_one":
                    self.insert_one(spec["document"])
                    inserted += 1
                elif name in ("update_one", "update_many"):
                    fn = self.update_one if name == "update_one" else self.update_many
                    r = fn(spec["filter"], spec["update"],
                           upsert=spec.get("upsert", False))
                    matched += r.matched_count
                    modified += r.modified_count
                    if r.upserted_id is not None:
                        inserted += 1
                elif name == "replace_one":
                    r = self.replace_one(spec["filter"], spec["replacement"],
                                         upsert=spec.get("upsert", False))
                    matched += r.matched_count
                    modified += r.modified_count
                    if r.upserted_id is not None:
                        inserted += 1
                elif name == "delete_one":
                    deleted += self.delete_one(spec["filter"]).deleted_count
                elif name == "delete_many":
                    deleted += self.delete_many(spec.get("filter", {})).deleted_count
                else:
                    raise DocstoreError(f"unknown bulk op {name!r}")
            except DocstoreError as exc:
                if ordered:
                    exc.partial_result = BulkWriteResult(  # type: ignore[attr-defined]
                        inserted, matched, modified, deleted
                    )
                    raise
                # unordered: skip the failing op, keep going
                continue
        return BulkWriteResult(inserted, matched, modified, deleted)

    def watch(self, max_buffer: int = 10_000):
        """Open a change stream over this collection."""
        from .changestream import ChangeStream

        return ChangeStream(self, max_buffer=max_buffer)

    # -- aggregation & misc -----------------------------------------------------

    def aggregate(self, pipeline: List[Mapping[str, Any]],
                  explain: bool = False) -> Any:
        """Run an aggregation pipeline (see :mod:`repro.docstore.aggregation`).

        With ``explain=True`` the pipeline still runs, but the return
        value is an ``executionStats``-style report instead of the result
        documents: one record per stage (``docs_in``/``docs_out``/
        ``elapsed_ms``, plus ``state_size`` for ``$group``/``$sort``),
        led by a synthetic ``$cursor`` stage pricing the collection
        snapshot, with ``nReturned`` and ``executionTimeMillis`` totals.
        The per-stage records also ride into ``system.profile`` for slow
        pipelines, where the advisor mines them.
        """
        from .aggregation import pipeline_stage_names, run_pipeline

        t0 = time.perf_counter()
        stage_stats: List[dict] = []
        with self._lock.read():
            docs = [deep_copy_doc(self._docs[p]) for p in sorted(self._docs)]
        stage_stats.append({
            "stage": "$cursor", "docs_in": len(docs), "docs_out": len(docs),
            "elapsed_ms": (time.perf_counter() - t0) * 1e3,
        })
        out = run_pipeline(docs, pipeline, database=self.database,
                           stage_stats=stage_stats)
        if explain:
            return {
                "ns": self.namespace,
                "pipeline": pipeline_stage_names(pipeline),
                "stages": stage_stats,
                "nReturned": len(out),
                "executionTimeMillis": (time.perf_counter() - t0) * 1e3,
            }
        self._observe("aggregate", "command",
                      {"pipeline": pipeline_stage_names(pipeline)}, t0,
                      nreturned=len(out), stages=stage_stats)
        return out

    def map_reduce(
        self,
        mapper: Callable[[dict], Iterable[tuple]],
        reducer: Callable[[Any, List[Any]], Any],
        query: Optional[Mapping[str, Any]] = None,
        finalize: Optional[Callable[[Any, Any], Any]] = None,
    ) -> List[dict]:
        """Built-in single-threaded MapReduce (see :mod:`.mapreduce`)."""
        from .mapreduce import collection_map_reduce

        return collection_map_reduce(self, mapper, reducer, query, finalize)

    def stats(self) -> dict:
        """Collection statistics (counts, sizes, index info)."""
        with self._lock.read():
            sizes = [doc_size_bytes(d) for d in self._docs.values()]
        total = sum(sizes)
        return {
            "ns": self.name,
            "count": len(sizes),
            "size": total,
            "avgObjSize": (total / len(sizes)) if sizes else 0.0,
            "nindexes": len(self._indexes.names()),
            "indexes": self.index_information(),
        }

    def all_documents(self) -> List[dict]:
        """Snapshot of every document (deep-copied)."""
        with self._lock.read():
            return [deep_copy_doc(self._docs[p]) for p in sorted(self._docs)]

    def lock_stats(self) -> dict:
        """Reader-writer lock accounting (acquires, cumulative wait time)."""
        return self._lock.stats()

    def lock_contention(self, limit: int = 10) -> List[dict]:
        """Top contended (waiter site, holder site) pairings on this
        collection's lock — see :meth:`RWLock.contention_report`."""
        return self._lock.contention_report(limit=limit)
