"""Update-operator engine implementing MongoDB atomic update documents.

The paper's FireWorks engine stores Fuse parameter overrides "as a Python
dict that is similar to Mongo atomic update syntax (e.g. $set, $unset, etc.)"
(§III-C2), and the workflow state machine advances jobs with atomic updates
against the ``engines`` collection.  This module provides exactly that
semantics: an update document is applied to a document *in place*, and the
same code path powers both collection updates and Fuse overrides.

Supported operators: ``$set $unset $inc $mul $min $max $rename $push $pull
$addToSet $pop $pullAll $setOnInsert $currentDate``.  A plain document with
no ``$`` keys replaces the whole document except ``_id`` (Mongo replacement
semantics).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping

from ..errors import UpdateSyntaxError
from .documents import MISSING, get_path, set_path, unset_path
from .matching import compile_query, _is_operator_doc, _values_equal

__all__ = ["apply_update", "is_operator_update", "UPDATE_OPERATORS"]

UPDATE_OPERATORS = frozenset(
    {
        "$set", "$unset", "$inc", "$mul", "$min", "$max", "$rename",
        "$push", "$pull", "$addToSet", "$pop", "$pullAll",
        "$setOnInsert", "$currentDate",
    }
)


def is_operator_update(update: Mapping[str, Any]) -> bool:
    """True if ``update`` is an operator document rather than a replacement."""
    if not isinstance(update, Mapping):
        raise UpdateSyntaxError("update must be a document")
    has_ops = any(k.startswith("$") for k in update)
    if has_ops and not all(k.startswith("$") for k in update):
        raise UpdateSyntaxError("cannot mix operator and non-operator fields")
    return has_ops


def _require_number(value: Any, op: str, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise UpdateSyntaxError(f"{op} requires numeric operand for {path!r}")
    return value


def _ensure_list_target(doc: dict, path: str, op: str) -> List[Any]:
    current = get_path(doc, path)
    if current is MISSING or current is None:
        new_list: List[Any] = []
        set_path(doc, path, new_list)
        return new_list
    if not isinstance(current, list):
        raise UpdateSyntaxError(f"{op} target {path!r} is not an array")
    return current


def apply_update(
    doc: dict,
    update: Mapping[str, Any],
    *,
    is_insert: bool = False,
) -> dict:
    """Apply ``update`` to ``doc`` in place and return it.

    ``is_insert`` enables ``$setOnInsert`` (used by upserts).  Raises
    :class:`UpdateSyntaxError` on malformed updates, leaving the document
    unmodified if validation fails before any mutation (operator arguments
    are validated eagerly per clause).
    """
    if not is_operator_update(update):
        # Replacement: keep _id, replace everything else.
        preserved = doc.get("_id", MISSING)
        doc.clear()
        for key, value in update.items():
            doc[key] = value
        if preserved is not MISSING and "_id" not in doc:
            doc["_id"] = preserved
        return doc

    for op, clause in update.items():
        if op not in UPDATE_OPERATORS:
            raise UpdateSyntaxError(f"unknown update operator {op!r}")
        if not isinstance(clause, Mapping):
            raise UpdateSyntaxError(f"{op} requires a document of field/value pairs")
        handler = _HANDLERS[op]
        for path, operand in clause.items():
            if path == "_id" and op != "$setOnInsert":
                raise UpdateSyntaxError("cannot update the _id field")
            handler(doc, path, operand, is_insert)
    return doc


def _op_set(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    set_path(doc, path, operand)


def _op_set_on_insert(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    if is_insert:
        set_path(doc, path, operand)


def _op_unset(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    unset_path(doc, path)


def _op_inc(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    amount = _require_number(operand, "$inc", path)
    current = get_path(doc, path)
    if current is MISSING or current is None:
        set_path(doc, path, amount)
        return
    base = _require_number(current, "$inc", path)
    set_path(doc, path, base + amount)


def _op_mul(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    factor = _require_number(operand, "$mul", path)
    current = get_path(doc, path)
    if current is MISSING or current is None:
        set_path(doc, path, 0 if isinstance(factor, int) else 0.0)
        return
    base = _require_number(current, "$mul", path)
    set_path(doc, path, base * factor)


def _op_min(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    current = get_path(doc, path)
    if current is MISSING:
        set_path(doc, path, operand)
        return
    from .matching import compare_values

    if compare_values(operand, current) < 0:
        set_path(doc, path, operand)


def _op_max(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    current = get_path(doc, path)
    if current is MISSING:
        set_path(doc, path, operand)
        return
    from .matching import compare_values

    if compare_values(operand, current) > 0:
        set_path(doc, path, operand)


def _op_rename(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    if not isinstance(operand, str) or not operand:
        raise UpdateSyntaxError("$rename requires a non-empty string target")
    if operand == path:
        raise UpdateSyntaxError("$rename source and target are identical")
    value = get_path(doc, path)
    if value is MISSING:
        return
    unset_path(doc, path)
    set_path(doc, operand, value)


def _op_push(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    target = _ensure_list_target(doc, path, "$push")
    if isinstance(operand, Mapping) and "$each" in operand:
        each = operand["$each"]
        if not isinstance(each, list):
            raise UpdateSyntaxError("$push $each requires an array")
        unknown = set(operand) - {"$each", "$slice", "$sort", "$position"}
        if unknown:
            raise UpdateSyntaxError(f"unknown $push modifiers: {sorted(unknown)}")
        position = operand.get("$position")
        if position is None:
            target.extend(each)
        else:
            if isinstance(position, bool) or not isinstance(position, int):
                raise UpdateSyntaxError("$position requires an integer")
            target[position:position] = each
        if "$sort" in operand:
            _push_sort(target, operand["$sort"])
        if "$slice" in operand:
            n = operand["$slice"]
            if isinstance(n, bool) or not isinstance(n, int):
                raise UpdateSyntaxError("$slice requires an integer")
            new = target[n:] if n < 0 else target[:n]
            target[:] = new
    else:
        target.append(operand)


def _push_sort(target: List[Any], spec: Any) -> None:
    from .matching import ordering_key

    if isinstance(spec, int) and not isinstance(spec, bool):
        if spec not in (1, -1):
            raise UpdateSyntaxError("$sort direction must be 1 or -1")
        target.sort(key=ordering_key, reverse=spec == -1)
    elif isinstance(spec, Mapping):
        for field, direction in reversed(list(spec.items())):
            if direction not in (1, -1):
                raise UpdateSyntaxError("$sort direction must be 1 or -1")
            target.sort(
                key=lambda e: ordering_key(get_path(e, field)),
                reverse=direction == -1,
            )
    else:
        raise UpdateSyntaxError("$sort requires 1, -1, or a field/direction doc")


def _op_add_to_set(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    target = _ensure_list_target(doc, path, "$addToSet")
    if isinstance(operand, Mapping) and "$each" in operand:
        each = operand["$each"]
        if not isinstance(each, list):
            raise UpdateSyntaxError("$addToSet $each requires an array")
        candidates = each
    else:
        candidates = [operand]
    for cand in candidates:
        if not any(_values_equal(cand, existing) for existing in target):
            target.append(cand)


def _op_pop(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    if operand not in (1, -1):
        raise UpdateSyntaxError("$pop requires 1 (last) or -1 (first)")
    current = get_path(doc, path)
    if current is MISSING or current is None:
        return
    if not isinstance(current, list):
        raise UpdateSyntaxError(f"$pop target {path!r} is not an array")
    if current:
        current.pop(-1 if operand == 1 else 0)


def _op_pull(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    current = get_path(doc, path)
    if current is MISSING or current is None:
        return
    if not isinstance(current, list):
        raise UpdateSyntaxError(f"$pull target {path!r} is not an array")
    if _is_operator_doc(operand):
        matcher = compile_query({"v": operand})
        keep = [e for e in current if not matcher.matches({"v": e})]
    elif isinstance(operand, Mapping):
        matcher = compile_query(operand)
        keep = [
            e
            for e in current
            if not (isinstance(e, Mapping) and matcher.matches(e))
        ]
    else:
        keep = [e for e in current if not _values_equal(e, operand)]
    current[:] = keep


def _op_pull_all(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    if not isinstance(operand, list):
        raise UpdateSyntaxError("$pullAll requires an array")
    current = get_path(doc, path)
    if current is MISSING or current is None:
        return
    if not isinstance(current, list):
        raise UpdateSyntaxError(f"$pullAll target {path!r} is not an array")
    current[:] = [
        e for e in current if not any(_values_equal(e, v) for v in operand)
    ]


def _op_current_date(doc: dict, path: str, operand: Any, is_insert: bool) -> None:
    if operand is not True and operand != {"$type": "timestamp"} and operand != {
        "$type": "date"
    }:
        raise UpdateSyntaxError("$currentDate requires true or {'$type': ...}")
    set_path(doc, path, time.time())


_HANDLERS: Dict[str, Any] = {
    "$set": _op_set,
    "$setOnInsert": _op_set_on_insert,
    "$unset": _op_unset,
    "$inc": _op_inc,
    "$mul": _op_mul,
    "$min": _op_min,
    "$max": _op_max,
    "$rename": _op_rename,
    "$push": _op_push,
    "$addToSet": _op_add_to_set,
    "$pop": _op_pop,
    "$pull": _op_pull,
    "$pullAll": _op_pull_all,
    "$currentDate": _op_current_date,
}
