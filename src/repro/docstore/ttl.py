"""TTL retention: a background reaper for ``expire_after_seconds`` indexes.

MongoDB bounds collection growth with TTL indexes swept by a background
monitor thread; the Materials Project leans on exactly this to keep its
operational collections (query logs, usage analytics) from eating the
cluster.  :class:`TTLReaper` is our analog: a daemon thread that
periodically walks every database in a :class:`~repro.docstore.database.
DocumentStore` and calls :meth:`~repro.docstore.collection.Collection.
reap_expired` on collections carrying a TTL index.

Expired deletes go through the normal ``delete_many`` path, so change
streams, replication, and the journal all observe them — a change-stream
consumer sees a TTL reap as ordinary ``delete`` events, and a recovered
store replays them like any other write.

Divergence from MongoDB: expiry keys are epoch-seconds *numbers* (the
repo-wide ``ts`` convention), not BSON dates, and the sweep interval
defaults to seconds rather than Mongo's fixed 60s so tests and the
telemetry warehouse can demonstrate retention quickly.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import DocumentStore

__all__ = ["TTLReaper"]

#: Default sweep cadence (MongoDB's TTL monitor runs every 60s; ours is
#: tighter because the telemetry warehouse uses short retention in tests).
DEFAULT_INTERVAL_S = 10.0


class TTLReaper:
    """Background sweeper deleting documents past their TTL window.

    ``reaper = TTLReaper(store); reaper.start()`` — or use
    :meth:`DocumentStore.start_ttl_reaper`.  :meth:`sweep` can also be
    called synchronously (tests, single-shot maintenance).
    """

    def __init__(self, store: "DocumentStore",
                 interval_s: float = DEFAULT_INTERVAL_S):
        self.store = store
        self.interval_s = float(interval_s)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._sweeps = 0
        self._reaped_total = 0
        self._last_sweep_ts: Optional[float] = None

    # -- sweeping ---------------------------------------------------------

    def sweep(self, now: Optional[float] = None) -> int:
        """One synchronous pass over every collection; returns docs reaped."""
        reaped = 0
        for db_name in self.store.list_database_names():
            db = self.store.get_database(db_name)
            with db._lock:
                colls = [
                    c for n, c in db._collections.items()
                    if not n.startswith("system.")
                ]
            for coll in colls:
                n = coll.reap_expired(now)
                if n:
                    reaped += n
                    self._note_reaped(db_name, coll.name, n)
        with self._lock:
            self._sweeps += 1
            self._reaped_total += reaped
            self._last_sweep_ts = time.time()
        return reaped

    @staticmethod
    def _note_reaped(db_name: str, coll_name: str, n: int) -> None:
        from ..obs.metrics import get_registry

        get_registry().counter(
            "repro_docstore_ttl_reaped_total",
            "documents removed by TTL retention",
        ).inc(n, db=db_name, coll=coll_name)

    def stats(self) -> dict:
        with self._lock:
            return {
                "running": self.running,
                "interval_s": self.interval_s,
                "sweeps": self._sweeps,
                "reaped_total": self._reaped_total,
                "last_sweep_ts": self._last_sweep_ts,
            }

    # -- thread lifecycle -------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TTLReaper":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-ttl-reaper", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sweep()
            except Exception:  # pragma: no cover - never kill the thread
                pass

    def __enter__(self) -> "TTLReaper":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
