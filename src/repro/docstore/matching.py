"""Query predicate compiler implementing the MongoDB query language.

The paper leans on this language everywhere: the workflow engine selects
runnable jobs with queries like::

    {"elements": {"$all": ["Li", "O"]}, "nelectrons": {"$lte": 200}}

(§III-B2), the web back-end answers ad-hoc user queries over deeply nested
task documents, and the QueryEngine abstraction layer rewrites queries before
they reach the store.  A query document compiles to a :class:`Matcher`, a
callable predicate over documents, so a query parsed once can be evaluated
against many documents (the collection scan and the index subsystem both use
this).

Supported operators
-------------------
Comparison: ``$eq $ne $gt $gte $lt $lte $in $nin``
Logical:    ``$and $or $nor $not``
Element:    ``$exists $type``
Evaluation: ``$mod $regex $options $where``
Array:      ``$all $elemMatch $size``

Semantics follow MongoDB: a bare path/value pair matches either the value
itself or any element of an array at that path ("implicit $elemMatch" for
scalars); range operators use type bracketing (numbers only compare with
numbers, strings with strings); ``$ne``/``$nin`` match missing fields.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from ..errors import QuerySyntaxError
from .documents import MISSING, get_path_multi
from .objectid import ObjectId

__all__ = ["Matcher", "compile_query", "type_rank", "ordering_key", "compare_values"]


# --------------------------------------------------------------------------
# BSON-like type ordering used for sorts and type bracketing.
# --------------------------------------------------------------------------

_TYPE_RANKS: List[Tuple[type, int]] = []


def type_rank(value: Any) -> int:
    """Rank of a value in the (simplified) BSON sort order.

    Null < numbers < strings < objects < arrays < bytes < ObjectId < bool.
    ``bool`` is checked before ``int`` because ``bool`` subclasses ``int``
    in Python but sorts separately in BSON.
    """
    if value is MISSING or value is None:
        return 0
    if isinstance(value, bool):
        return 70
    if isinstance(value, (int, float)):
        return 10
    if isinstance(value, str):
        return 20
    if isinstance(value, Mapping):
        return 30
    if isinstance(value, list):
        return 40
    if isinstance(value, bytes):
        return 50
    if isinstance(value, ObjectId):
        return 60
    return 90


def compare_values(a: Any, b: Any) -> int:
    """Three-way comparison in BSON sort order. Returns -1, 0 or 1."""
    ra, rb = type_rank(a), type_rank(b)
    if ra != rb:
        return -1 if ra < rb else 1
    if ra == 0:
        # MISSING sorts before explicit null.
        ka = 0 if a is MISSING else 1
        kb = 0 if b is MISSING else 1
        return (ka > kb) - (ka < kb)
    if ra == 30:  # dicts: compare as sorted key/value sequences
        items_a = list(a.items())
        items_b = list(b.items())
        for (ka, va), (kb, vb) in zip(items_a, items_b):
            if ka != kb:
                return -1 if ka < kb else 1
            c = compare_values(va, vb)
            if c:
                return c
        return (len(items_a) > len(items_b)) - (len(items_a) < len(items_b))
    if ra == 40:  # arrays element-wise
        for va, vb in zip(a, b):
            c = compare_values(va, vb)
            if c:
                return c
        return (len(a) > len(b)) - (len(a) < len(b))
    if ra == 60:
        a, b = a.binary, b.binary
    try:
        return (a > b) - (a < b)
    except TypeError:
        return 0


class ordering_key:
    """Adapter making any document value usable as a Python sort key."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "ordering_key") -> bool:
        return compare_values(self.value, other.value) < 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ordering_key):
            return NotImplemented
        return compare_values(self.value, other.value) == 0

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return 0


# Names accepted by the $type operator, mapped to rank buckets.
_TYPE_NAMES: Dict[str, Callable[[Any], bool]] = {
    "null": lambda v: v is None,
    "double": lambda v: isinstance(v, float) and not isinstance(v, bool),
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "long": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "string": lambda v: isinstance(v, str),
    "object": lambda v: isinstance(v, Mapping),
    "array": lambda v: isinstance(v, list),
    "binData": lambda v: isinstance(v, bytes),
    "objectId": lambda v: isinstance(v, ObjectId),
    "bool": lambda v: isinstance(v, bool),
}


def _values_equal(a: Any, b: Any) -> bool:
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a == b
    if type_rank(a) != type_rank(b):
        return False
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        if len(a) != len(b):
            return False
        return all(k in b and _values_equal(v, b[k]) for k, v in a.items())
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_values_equal(x, y) for x, y in zip(a, b))
    return a == b


Predicate = Callable[[Any], bool]

_OPERATORS = frozenset(
    {
        "$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$nin",
        "$exists", "$type", "$mod", "$regex", "$options", "$where",
        "$all", "$elemMatch", "$size", "$not",
    }
)

_LOGICAL = frozenset({"$and", "$or", "$nor"})


def _is_operator_doc(value: Any) -> bool:
    return (
        isinstance(value, Mapping)
        and len(value) > 0
        and all(isinstance(k, str) and k.startswith("$") for k in value)
    )


def _bracketed_cmp(op: str, operand: Any) -> Predicate:
    """Range comparison with type bracketing (Mongo semantics)."""
    rank = type_rank(operand)

    def pred(value: Any) -> bool:
        if value is MISSING or type_rank(value) != rank:
            return False
        c = compare_values(value, operand)
        if op == "$gt":
            return c > 0
        if op == "$gte":
            return c >= 0
        if op == "$lt":
            return c < 0
        return c <= 0

    return pred


def _compile_value_test(operand: Any) -> Predicate:
    """Equality test used for bare values, $eq, $in members."""
    if isinstance(operand, re.Pattern):
        return lambda v: isinstance(v, str) and bool(operand.search(v))
    return lambda v: _values_equal(v, operand)


def _compile_operator(field_ops: Mapping[str, Any]) -> Tuple[Predicate, bool]:
    """Compile an operator document like ``{"$gte": 3, "$lt": 7}``.

    Returns ``(per_value_predicate, match_on_missing)``: the second element
    is True for negative operators ($ne, $nin, $exists:false, $not) that
    match documents lacking the field entirely.
    """
    preds: List[Predicate] = []
    neg_preds: List[Tuple[Predicate, str]] = []
    match_on_missing = True  # ANDed below; only negatives keep it True
    null_negative = False  # $ne null / $nin [... null]: missing must NOT match

    keys = set(field_ops)
    unknown = {k for k in keys if k not in _OPERATORS}
    if unknown:
        raise QuerySyntaxError(f"unknown query operator(s): {sorted(unknown)}")
    if "$options" in keys and "$regex" not in keys:
        raise QuerySyntaxError("$options requires $regex")

    positive = False
    for op, operand in field_ops.items():
        if op == "$eq":
            preds.append(_compile_value_test(operand))
            positive = True
        elif op in ("$gt", "$gte", "$lt", "$lte"):
            preds.append(_bracketed_cmp(op, operand))
            positive = True
        elif op == "$in":
            if not isinstance(operand, Sequence) or isinstance(operand, (str, bytes)):
                raise QuerySyntaxError("$in requires an array")
            tests = [_compile_value_test(v) for v in operand]
            preds.append(lambda v, _t=tests: any(t(v) for t in _t))
            positive = True
        elif op == "$ne":
            test = _compile_value_test(operand)
            neg_preds.append((test, "$ne"))
            if operand is None:
                # Mongo treats a missing field as null: {$ne: null} must
                # NOT match documents lacking the field.
                null_negative = True
        elif op == "$nin":
            if not isinstance(operand, Sequence) or isinstance(operand, (str, bytes)):
                raise QuerySyntaxError("$nin requires an array")
            tests = [_compile_value_test(v) for v in operand]
            neg_preds.append((lambda v, _t=tests: any(t(v) for t in _t), "$nin"))
            if any(v is None for v in operand):
                null_negative = True
        elif op == "$exists":
            want = bool(operand)
            if want:
                preds.append(lambda v: True)
                positive = True
            else:
                neg_preds.append((lambda v: True, "$exists"))
        elif op == "$type":
            if isinstance(operand, str):
                names = [operand]
            elif isinstance(operand, list):
                names = operand
            else:
                raise QuerySyntaxError("$type requires a type name or list of names")
            tests = []
            for name in names:
                if name not in _TYPE_NAMES:
                    raise QuerySyntaxError(f"unknown $type name {name!r}")
                tests.append(_TYPE_NAMES[name])
            preds.append(lambda v, _t=tests: any(t(v) for t in _t))
            positive = True
        elif op == "$mod":
            if (
                not isinstance(operand, (list, tuple))
                or len(operand) != 2
                or isinstance(operand[0], bool)
                or not all(isinstance(x, (int, float)) for x in operand)
            ):
                raise QuerySyntaxError("$mod requires [divisor, remainder]")
            divisor, remainder = int(operand[0]), int(operand[1])
            if divisor == 0:
                raise QuerySyntaxError("$mod divisor cannot be 0")
            preds.append(
                lambda v: isinstance(v, (int, float))
                and not isinstance(v, bool)
                and int(v) % divisor == remainder
            )
            positive = True
        elif op == "$regex":
            flags = 0
            opts = field_ops.get("$options", "")
            if "i" in opts:
                flags |= re.IGNORECASE
            if "m" in opts:
                flags |= re.MULTILINE
            if "s" in opts:
                flags |= re.DOTALL
            if "x" in opts:
                flags |= re.VERBOSE
            if isinstance(operand, re.Pattern):
                pattern = operand
            elif isinstance(operand, str):
                try:
                    pattern = re.compile(operand, flags)
                except re.error as exc:
                    raise QuerySyntaxError(f"invalid $regex: {exc}") from exc
            else:
                raise QuerySyntaxError("$regex requires a string or pattern")
            preds.append(
                lambda v, _p=pattern: isinstance(v, str) and bool(_p.search(v))
            )
            positive = True
        elif op == "$options":
            continue
        elif op == "$where":
            if not callable(operand):
                raise QuerySyntaxError("$where requires a callable")
            # $where sees the whole document, handled at the field level by
            # the caller; here it would be ambiguous.
            raise QuerySyntaxError("$where is only valid at the top level")
        elif op == "$size":
            if isinstance(operand, bool) or not isinstance(operand, int):
                raise QuerySyntaxError("$size requires an integer")
            preds.append(lambda v, _n=operand: isinstance(v, list) and len(v) == _n)
            positive = True
        elif op == "$all":
            if not isinstance(operand, list):
                raise QuerySyntaxError("$all requires an array")
            member_tests = []
            for member in operand:
                if _is_operator_doc(member) and "$elemMatch" in member:
                    inner = compile_query(member["$elemMatch"])
                    member_tests.append(
                        lambda v, _m=inner: isinstance(v, list)
                        and any(_m.matches(e) for e in v)
                    )
                else:
                    test = _compile_value_test(member)
                    member_tests.append(
                        lambda v, _t=test: _t(v)
                        or (isinstance(v, list) and any(_t(e) for e in v))
                    )
            preds.append(lambda v, _mt=member_tests: all(t(v) for t in _mt))
            positive = True
        elif op == "$elemMatch":
            if not isinstance(operand, Mapping):
                raise QuerySyntaxError("$elemMatch requires a document")
            if _is_operator_doc(operand):
                inner_pred, _ = _compile_operator(operand)
                preds.append(
                    lambda v, _p=inner_pred: isinstance(v, list)
                    and any(_p([e]) for e in v)
                )
            else:
                inner = compile_query(operand)
                preds.append(
                    lambda v, _m=inner: isinstance(v, list)
                    and any(_m.matches(e) for e in v)
                )
            positive = True
        elif op == "$not":
            if isinstance(operand, re.Pattern):
                sub = _compile_value_test(operand)
                neg_preds.append((sub, "$not"))
            elif _is_operator_doc(operand):
                sub, _ = _compile_operator(operand)
                neg_preds.append((lambda v, _p=sub: _p([v]), "$not"))
            else:
                raise QuerySyntaxError("$not requires an operator document or regex")
        else:  # pragma: no cover - exhaustive
            raise QuerySyntaxError(f"unhandled operator {op}")

    if positive:
        match_on_missing = False

    def combined(values: List[Any]) -> bool:
        present = [v for v in values if v is not MISSING]
        if preds:
            if not present:
                return False
            # Each positive predicate must be satisfied by at least one
            # candidate value (Mongo array fan-out semantics).
            for p in preds:
                if not any(p(v) for v in present):
                    return False
        for np, _name in neg_preds:
            # Negative operators must hold over every candidate value and
            # match when the field is missing.
            if any(np(v) for v in present):
                return False
        return True

    def wrapper(values: List[Any]) -> bool:
        if not values:
            return match_on_missing and not preds and not null_negative
        return combined(values)

    # combined() already handles the all-MISSING case via `present`
    return wrapper, match_on_missing  # type: ignore[return-value]


class Matcher:
    """A compiled query: call :meth:`matches` on candidate documents."""

    __slots__ = ("query", "_clauses", "_where")

    def __init__(self, query: Mapping[str, Any]):
        if not isinstance(query, Mapping):
            raise QuerySyntaxError("query must be a document")
        self.query = query
        self._clauses: List[Callable[[Any], bool]] = []
        self._where: List[Callable[[Any], bool]] = []
        for key, value in query.items():
            if key == "$where":
                if not callable(value):
                    raise QuerySyntaxError("$where requires a callable")
                self._where.append(value)
            elif key in _LOGICAL:
                self._clauses.append(self._compile_logical(key, value))
            elif key == "$not":
                raise QuerySyntaxError("$not is not valid at the top level")
            elif key.startswith("$"):
                raise QuerySyntaxError(f"unknown top-level operator {key!r}")
            else:
                self._clauses.append(self._compile_field(key, value))

    @staticmethod
    def _compile_logical(op: str, operand: Any) -> Callable[[Any], bool]:
        if not isinstance(operand, list) or not operand:
            raise QuerySyntaxError(f"{op} requires a non-empty array of queries")
        subs = [compile_query(q) for q in operand]
        if op == "$and":
            return lambda doc: all(m.matches(doc) for m in subs)
        if op == "$or":
            return lambda doc: any(m.matches(doc) for m in subs)
        return lambda doc: not any(m.matches(doc) for m in subs)

    @staticmethod
    def _compile_field(path: str, condition: Any) -> Callable[[Any], bool]:
        if _is_operator_doc(condition):
            value_pred, _ = _compile_operator(condition)

            def field_op(doc: Any) -> bool:
                values = get_path_multi(doc, path)
                # Mongo array fan-out: operators may match the array value
                # itself ($size, whole-array compare) or any of its elements.
                expanded = list(values)
                for v in values:
                    if isinstance(v, list):
                        expanded.extend(v)
                return value_pred(expanded)

            return field_op
        # Bare value: equality against value or any array element.
        test = _compile_value_test(condition)

        def field_eq(doc: Any) -> bool:
            values = get_path_multi(doc, path)
            for v in values:
                if test(v):
                    return True
                if isinstance(v, list) and any(test(e) for e in v):
                    return True
            # {"a": null} also matches documents where a is missing.
            if condition is None and not values:
                return True
            return False

        return field_eq

    def matches(self, doc: Any) -> bool:
        """Return True if ``doc`` satisfies the query."""
        for clause in self._clauses:
            if not clause(doc):
                return False
        for fn in self._where:
            if not fn(doc):
                return False
        return True

    def __call__(self, doc: Any) -> bool:
        return self.matches(doc)

    def __repr__(self) -> str:
        return f"Matcher({self.query!r})"


def compile_query(query: Mapping[str, Any]) -> Matcher:
    """Compile a Mongo-style query document into a reusable :class:`Matcher`."""
    return Matcher(query)


# --------------------------------------------------------------------------
# Index predicate extraction (consumed by repro.docstore.planner).
# --------------------------------------------------------------------------

_INDEX_RANGE_OPS = frozenset({"$gt", "$gte", "$lt", "$lte"})
#: Operators that may ride alongside range bounds without invalidating the
#: index interval — the residual matcher enforces them on every candidate.
_RANGE_COMPANIONS = frozenset({"$ne", "$exists"})


class FieldPredicate:
    """The index-usable part of one field's query condition.

    ``kind`` classifies how an index component can serve the condition:

    * ``"eq"``     — a single point probe (``value``);
    * ``"in"``     — a union of point probes (``values``);
    * ``"range"``  — an interval (``bounds`` maps ``gt/gte/lt/lte``);
    * ``"all"``    — ``$all`` members (``values``; any one member is a
      valid superset probe, the matcher enforces the conjunction);
    * ``"opaque"`` — not index-usable (``$regex``, ``$ne`` alone, ...).

    Every candidate document is still verified by the full matcher, so a
    predicate only needs to describe a *superset* of the matching keys.
    """

    __slots__ = ("field", "kind", "value", "values", "bounds")

    def __init__(self, field: str, kind: str, value: Any = None,
                 values: Any = None, bounds: Any = None):
        self.field = field
        self.kind = kind
        self.value = value
        self.values = values
        self.bounds = bounds

    def __repr__(self) -> str:
        return f"FieldPredicate({self.field!r}, {self.kind})"


def _classify_condition(field: str, condition: Any) -> FieldPredicate:
    if isinstance(condition, Mapping) and any(
        str(k).startswith("$") for k in condition
    ):
        ops = set(condition)
        if "$eq" in ops:
            return FieldPredicate(field, "eq", value=condition["$eq"])
        if "$in" in ops and isinstance(condition["$in"], list):
            members = condition["$in"]
            if all(not hasattr(m, "search") for m in members):
                return FieldPredicate(field, "in", values=list(members))
            return FieldPredicate(field, "opaque")
        if ops & _INDEX_RANGE_OPS and not (
            ops - _INDEX_RANGE_OPS - _RANGE_COMPANIONS
        ):
            bounds = {op.lstrip("$"): condition[op]
                      for op in ops & _INDEX_RANGE_OPS}
            return FieldPredicate(field, "range", bounds=bounds)
        if ("$all" in ops and isinstance(condition["$all"], list)
                and condition["$all"]
                and all(not isinstance(m, Mapping)
                        for m in condition["$all"])):
            return FieldPredicate(field, "all", values=list(condition["$all"]))
        return FieldPredicate(field, "opaque")
    if hasattr(condition, "search"):  # bare regex — not index-usable
        return FieldPredicate(field, "opaque")
    # Bare value (including a plain subdocument): equality.
    return FieldPredicate(field, "eq", value=condition)


def index_predicates(query: Mapping[str, Any]) -> Dict[str, FieldPredicate]:
    """Decompose ``query`` into per-field predicates for the planner.

    Only top-level field clauses participate; logical operators
    (``$and``/``$or``/...) and ``$where`` contribute nothing — documents
    selected through an index are always re-verified by the compiled
    matcher, so narrowing by any *conjunctive* top-level field clause is
    sound even when logical operators are present alongside it.
    """
    out: Dict[str, FieldPredicate] = {}
    for field, condition in query.items():
        if str(field).startswith("$"):
            continue
        out[field] = _classify_condition(field, condition)
    return out
