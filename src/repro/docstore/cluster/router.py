"""The mongos analog: shard wrappers, routed collections, the cluster facade.

:class:`ShardedCluster` ties the subsystem together — a
:class:`~repro.docstore.cluster.config.ClusterConfig` chunk map, one
:class:`Shard` (replica set + chunk-ownership ledger) per registered shard,
and :class:`ClusterCollection` routers that cache ``(epoch, chunks)``
snapshots and retry through the two cluster-native failures:

* :class:`~repro.errors.StaleEpoch` — the cached chunk map no longer matches
  the shard's ownership ledger (a split or migration committed underneath
  the router).  Recovery: refresh the snapshot from config and re-route.
* :class:`~repro.errors.NotPrimary` — the targeted shard lost its primary.
  Recovery: ``await_primary`` (which elects if no heartbeat monitor is
  running) and re-issue.

Shard targeting reuses the query planner's predicate decomposition
(:func:`~repro.docstore.planner.shard_key_predicate`): equality, ``$in``,
and (for ranged keys) interval constraints on the shard key select only the
owning chunks' shards — ``explain()`` reports ``SINGLE_SHARD`` — while
anything else scatter-gathers.  Sorted scatter reads push ``sort`` +
``limit`` down to each shard and k-way merge the pre-sorted streams.
"""

from __future__ import annotations

import bisect
import heapq
import threading
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Set

from ...errors import ClusterError, NotPrimary, ShardingError, StaleEpoch
from ...obs import get_registry
from ..database import DocumentStore
from ..documents import MISSING, deep_copy_doc, get_path
from ..matching import ordering_key
from ..objectid import ObjectId
from ..planner import shard_key_predicate
from .config import Chunk, ClusterConfig, bound_sort_key
from .replica import HeartbeatMonitor, ShardReplicaSet

__all__ = ["Shard", "ClusterCollection", "ShardedCluster"]

#: Bounded router retries: enough to absorb one election plus one refresh
#: race per hop without masking a genuinely wedged cluster.
MAX_ROUTE_RETRIES = 8

#: Auto-split a chunk once its document-count estimate crosses this.
DEFAULT_SPLIT_THRESHOLD = 1_000


class Shard:
    """One cluster shard: a replica set plus its chunk-ownership ledger.

    Ownership (``ns -> {chunk ids}``) is the shard-side half of the stale-
    epoch protocol: routed operations name the chunk they think they target
    and the shard rejects the ones it no longer owns.  Writes verify
    ownership *inside* the replica-set lock (so a migration commit cannot
    interleave); reads verify *after* executing, closing the window where a
    read passes the check, blocks on the collection lock behind a migration
    commit, and then observes post-cleanup data.
    """

    def __init__(self, shard_id: str, n_members: int = 3,
                 store_factory: Optional[Callable[[], DocumentStore]] = None,
                 event_sink: Optional[Callable[[dict], None]] = None):
        self.shard_id = shard_id
        self.rs = ShardReplicaSet(shard_id, n_members=n_members,
                                  store_factory=store_factory,
                                  event_sink=event_sink)
        self._owned: Dict[str, Set[str]] = {}
        self._owned_lock = threading.Lock()

    # -- ownership ledger ---------------------------------------------------

    def grant(self, ns: str, chunk_id: str) -> None:
        with self._owned_lock:
            self._owned.setdefault(ns, set()).add(chunk_id)

    def revoke(self, ns: str, chunk_id: str) -> None:
        with self._owned_lock:
            self._owned.get(ns, set()).discard(chunk_id)

    def owns(self, ns: str, chunk_id: str) -> bool:
        with self._owned_lock:
            return chunk_id in self._owned.get(ns, set())

    def owned_chunks(self, ns: str) -> Set[str]:
        with self._owned_lock:
            return set(self._owned.get(ns, set()))

    # -- routed execution ---------------------------------------------------

    @staticmethod
    def _split_ns(ns: str) -> tuple:
        if "." not in ns:
            raise ShardingError(f"namespace {ns!r} must be '<db>.<collection>'")
        return tuple(ns.split(".", 1))

    def write(self, ns: str, chunk_id: str, fn: Callable[[Any], Any]) -> Any:
        db_name, coll_name = self._split_ns(ns)
        with self.rs._lock:
            if not self.owns(ns, chunk_id):
                raise StaleEpoch(
                    f"shard {self.shard_id!r} does not own chunk "
                    f"{chunk_id!r} of {ns!r}"
                )
            return self.rs.write(db_name, coll_name, fn)

    def read(self, ns: str, chunk_ids: Iterable[str],
             fn: Callable[[Any], Any]) -> Any:
        db_name, coll_name = self._split_ns(ns)
        result = self.rs.read(db_name, coll_name, fn)
        for chunk_id in chunk_ids:
            if not self.owns(ns, chunk_id):
                raise StaleEpoch(
                    f"shard {self.shard_id!r} lost chunk {chunk_id!r} of "
                    f"{ns!r} during a read"
                )
        return result


class ClusterCollection:
    """A routed view of one sharded namespace (the mongos collection handle).

    Caches an ``(epoch, chunks)`` snapshot; every operation routes against
    the cache and retries through :class:`StaleEpoch` (refresh) and
    :class:`NotPrimary` (await/elect) — the client never sees either when
    the cluster can recover within the retry budget.
    """

    def __init__(self, cluster: "ShardedCluster", ns: str):
        self.cluster = cluster
        self.ns = ns
        meta = cluster.config.collection_meta(ns)
        if meta is None:
            raise ClusterError(f"{ns!r} is not a sharded namespace")
        self.shard_key: str = meta["key"]
        self.strategy: str = meta["strategy"]
        #: ``(epoch, chunks, lo_keys, hi_keys, raw_ints)`` — swapped as one
        #: tuple so concurrent routing never sees bound keys from a
        #: different epoch than the chunk list.
        self._snapshot: tuple = (0, [], [], [], False)
        self._refresh_lock = threading.Lock()
        self.refresh()

    # -- chunk-map cache ----------------------------------------------------

    def refresh(self) -> None:
        with self._refresh_lock:
            epoch, chunks = self.cluster.config.chunk_snapshot(self.ns)
            # Chunk lookup is the router's hottest path; precompute the
            # bound sort keys once per epoch so point routing is a bisect
            # over plain tuples instead of per-chunk key construction.
            # Hashed chunk maps only ever carry 64-bit integer bounds, so
            # they bisect over the raw ints directly.
            raw_ints = self.strategy == "hashed" and all(
                type(c.min) is int and type(c.max) is int for c in chunks
            )
            if raw_ints:
                lo_keys: list = [c.min for c in chunks]
                hi_keys: list = [c.max for c in chunks]
            else:
                lo_keys = [bound_sort_key(c.min) for c in chunks]
                hi_keys = [bound_sort_key(c.max) for c in chunks]
            self._snapshot = (epoch, chunks, lo_keys, hi_keys, raw_ints)

    @property
    def epoch(self) -> int:
        return self._snapshot[0]

    @property
    def _chunks(self) -> List[Chunk]:
        return self._snapshot[1]

    def _chunk_for(self, routing_value: Any) -> Chunk:
        epoch, chunks, lo_keys, hi_keys, raw_ints = self._snapshot
        key = routing_value if raw_ints else bound_sort_key(routing_value)
        # Rightmost chunk whose lower bound is <= the key; chunks tile the
        # key space [min, max) in sorted order.
        idx = bisect.bisect_right(lo_keys, key) - 1
        if 0 <= idx < len(chunks) and key < hi_keys[idx]:
            return chunks[idx]
        raise ClusterError(
            f"{self.ns!r}: no chunk covers routing value {routing_value!r} "
            f"(epoch {epoch})"
        )

    def _route(self, query: Mapping[str, Any]) -> Dict[str, List[Chunk]]:
        """Target chunks grouped by owning shard for ``query``."""
        chunks = self._route_chunks(query)
        by_shard: Dict[str, List[Chunk]] = {}
        for chunk in chunks:
            by_shard.setdefault(chunk.shard, []).append(chunk)
        return by_shard

    def _route_chunks(self, query: Mapping[str, Any]) -> List[Chunk]:
        # Point-lookup fast path: a bare scalar equality on the shard key
        # routes to exactly one chunk without the full predicate
        # decomposition (extra non-key filters don't widen the target set).
        value = query.get(self.shard_key)
        if type(value) in (str, int, float):
            rv = ClusterConfig.routing_value(self.strategy, value)
            return [self._chunk_for(rv)]
        predicate = shard_key_predicate(query, self.shard_key)
        if predicate is None:
            return list(self._chunks)
        if predicate.kind == "eq":
            rv = ClusterConfig.routing_value(self.strategy, predicate.value)
            return [self._chunk_for(rv)]
        if predicate.kind == "in":
            seen: Dict[str, Chunk] = {}
            for value in predicate.values:
                rv = ClusterConfig.routing_value(self.strategy, value)
                chunk = self._chunk_for(rv)
                seen[chunk.chunk_id] = chunk
            return list(seen.values())
        if predicate.kind == "range" and self.strategy == "range":
            # Hashed keys scramble intervals, so ranges only prune for
            # ranged collections.
            lo_key = bound_sort_key(self._range_bound(predicate.bounds,
                                                      "gt", "gte", "min"))
            hi_key = bound_sort_key(self._range_bound(predicate.bounds,
                                                      "lt", "lte", "max"))
            _, chunks, lo_keys, hi_keys, _raw = self._snapshot
            return [c for i, c in enumerate(chunks)
                    if lo_keys[i] < hi_key and lo_key < hi_keys[i]]
        return list(self._chunks)

    @staticmethod
    def _range_bound(bounds: Mapping[str, Any], strict: str, weak: str,
                     side: str) -> Any:
        if strict in bounds:
            return bounds[strict]
        if weak in bounds:
            return bounds[weak]
        from .config import MAX_KEY, MIN_KEY

        return MIN_KEY if side == "min" else MAX_KEY

    # -- retry loop ---------------------------------------------------------

    def _with_retries(self, op: Callable[[], Any]) -> Any:
        last: Optional[Exception] = None
        for _ in range(MAX_ROUTE_RETRIES):
            try:
                return op()
            except StaleEpoch as exc:
                last = exc
                self.cluster.stale_retries += 1
                get_registry().counter(
                    "repro_cluster_stale_epoch_retries_total",
                    "router retries after a stale chunk-map epoch",
                ).inc(1, ns=self.ns)
                self.refresh()
            except NotPrimary as exc:
                last = exc
                self.cluster.not_primary_retries += 1
                self.cluster.await_primaries()
        raise ClusterError(
            f"{self.ns!r}: routed operation failed after "
            f"{MAX_ROUTE_RETRIES} retries"
        ) from last

    # -- writes -------------------------------------------------------------

    def insert_one(self, document: Mapping[str, Any]) -> Any:
        doc = deep_copy_doc(dict(document))
        if "_id" not in doc:
            # Pre-assign so the write replays identically on every replica.
            doc["_id"] = ObjectId()
        routing_value = ClusterConfig.doc_routing_value(
            self.strategy, self.shard_key, doc)

        def attempt():
            chunk = self._chunk_for(routing_value)
            shard = self.cluster.shard(chunk.shard)
            result = shard.write(self.ns, chunk.chunk_id,
                                 lambda c: c.insert_one(doc))
            self.cluster.note_insert(self, chunk)
            return result

        return self._with_retries(attempt)

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> int:
        count = 0
        for document in documents:
            self.insert_one(document)
            count += 1
        return count

    def update_many(self, query: Mapping[str, Any],
                    update: Mapping[str, Any]) -> int:
        self._reject_shard_key_mutation(update)

        def attempt():
            modified = 0
            for shard_id, chunks in self._route(query).items():
                shard = self.cluster.shard(shard_id)
                for chunk in chunks:
                    result = shard.write(
                        self.ns, chunk.chunk_id,
                        lambda c: c.update_many(query, update))
                    modified += getattr(result, "modified_count", result or 0)
            return modified

        return self._with_retries(attempt)

    def delete_many(self, query: Mapping[str, Any]) -> int:
        def attempt():
            deleted = 0
            for shard_id, chunks in self._route(query).items():
                shard = self.cluster.shard(shard_id)
                for chunk in chunks:
                    result = shard.write(
                        self.ns, chunk.chunk_id,
                        lambda c: c.delete_many(query))
                    deleted += getattr(result, "deleted_count", result or 0)
            return deleted

        return self._with_retries(attempt)

    def _reject_shard_key_mutation(self, update: Mapping[str, Any]) -> None:
        key = self.shard_key
        for op, spec in update.items():
            if not isinstance(spec, Mapping):
                continue
            for field in spec:
                if field == key or field.startswith(key + ".") or (
                        key.startswith(field + ".")):
                    raise ShardingError(
                        f"update would modify the immutable shard key "
                        f"{key!r} (operator {op!r})"
                    )

    # -- reads --------------------------------------------------------------

    def find(self, query: Optional[Mapping[str, Any]] = None,
             sort: Optional[List[tuple]] = None,
             limit: Optional[int] = None) -> List[dict]:
        """Routed find with per-shard sort+limit pushdown and k-way merge."""
        query = query or {}

        def attempt():
            per_shard: List[List[dict]] = []
            for shard_id, chunks in self._route(query).items():
                shard = self.cluster.shard(shard_id)
                chunk_ids = [c.chunk_id for c in chunks]

                def run(c):
                    cursor = c.find(query)
                    if sort:
                        cursor = cursor.sort(sort)
                    if limit is not None:
                        cursor = cursor.limit(limit)
                    return list(cursor)

                per_shard.append(shard.read(self.ns, chunk_ids, run))
            return self._merge(per_shard, sort, limit)

        return self._with_retries(attempt)

    @staticmethod
    def _merge(per_shard: List[List[dict]], sort: Optional[List[tuple]],
               limit: Optional[int]) -> List[dict]:
        if not sort:
            merged: List[dict] = []
            for batch in per_shard:
                merged.extend(batch)
            return merged[:limit] if limit is not None else merged

        def merge_key(doc: dict) -> tuple:
            return tuple(
                ordering_key(get_path(doc, field))
                if direction >= 0
                else _Reversed(ordering_key(get_path(doc, field)))
                for field, direction in sort
            )

        stream = heapq.merge(*per_shard, key=merge_key)
        if limit is None:
            return list(stream)
        out: List[dict] = []
        for doc in stream:
            out.append(doc)
            if len(out) >= limit:
                break
        return out

    def find_one(self, query: Optional[Mapping[str, Any]] = None
                 ) -> Optional[dict]:
        results = self.find(query, limit=1)
        return results[0] if results else None

    def count_documents(self, query: Optional[Mapping[str, Any]] = None) -> int:
        query = query or {}

        def attempt():
            total = 0
            for shard_id, chunks in self._route(query).items():
                shard = self.cluster.shard(shard_id)
                chunk_ids = [c.chunk_id for c in chunks]
                total += shard.read(self.ns, chunk_ids,
                                    lambda c: c.count_documents(query))
            return total

        return self._with_retries(attempt)

    def create_index(self, keys: Any, unique: bool = False) -> str:
        """Create an index on every member of every shard."""
        name = ""
        for shard in self.cluster.shards.values():
            db_name, coll_name = Shard._split_ns(self.ns)
            for member in shard.rs.members:
                name = member.store[db_name][coll_name].create_index(
                    keys, unique=unique)
        return name

    # -- explain ------------------------------------------------------------

    def explain(self, query: Optional[Mapping[str, Any]] = None,
                sort: Optional[List[tuple]] = None) -> dict:
        """Cluster-level explain: targeting mode + per-shard planner output."""
        query = query or {}

        def attempt():
            routed = self._route(query)
            mode = "SINGLE_SHARD" if len(routed) == 1 else "SCATTER_GATHER"
            shard_plans = {}
            for shard_id, chunks in routed.items():
                shard = self.cluster.shard(shard_id)
                chunk_ids = [c.chunk_id for c in chunks]
                plan = shard.read(self.ns, chunk_ids,
                                  lambda c: c.explain(query, sort=sort))
                shard_plans[shard_id] = {
                    "chunks": len(chunks),
                    "stage": plan.get("stage"),
                    "index": plan.get("index"),
                    "nReturned": plan.get("nReturned"),
                }
            return {
                "ns": self.ns,
                "mode": mode,
                "epoch": self.epoch,
                "shardKey": self.shard_key,
                "strategy": self.strategy,
                "shards": shard_plans,
                "mergeSort": "STREAMING_K_WAY" if sort else None,
            }

        return self._with_retries(attempt)


class _Reversed:
    """Inverts an ordering_key so descending sort components merge correctly."""

    __slots__ = ("inner",)

    def __init__(self, inner: Any):
        self.inner = inner

    def __lt__(self, other: "_Reversed") -> bool:
        return other.inner < self.inner

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.inner == self.inner


class ShardedCluster:
    """The cluster facade: topology management, migrations, status.

    ``config_store`` may be a journal-backed :class:`DocumentStore` so the
    chunk map survives restarts; by default it is in-memory.  ``event_sink``
    receives balancer/election/migration event dicts — wire it to
    ``TelemetryWarehouse.record_flight_event`` to land them in
    ``telemetry.events``.
    """

    def __init__(self, config_store: Optional[DocumentStore] = None,
                 n_replicas: int = 3,
                 split_threshold: int = DEFAULT_SPLIT_THRESHOLD,
                 store_factory: Optional[Callable[[], DocumentStore]] = None,
                 event_sink: Optional[Callable[[dict], None]] = None):
        store = config_store if config_store is not None else DocumentStore()
        self.config = ClusterConfig(store["config"])
        self.n_replicas = n_replicas
        self.split_threshold = split_threshold
        self.store_factory = store_factory
        self.event_sink = event_sink
        self.shards: Dict[str, Shard] = {}
        self.migrations = 0
        self.migrated_docs = 0
        self.splits = 0
        self.stale_retries = 0
        self.not_primary_retries = 0
        self._migration_lock = threading.Lock()
        self._collections: Dict[str, ClusterCollection] = {}
        self.heartbeat: Optional[HeartbeatMonitor] = None
        self.balancer: Optional[Any] = None
        # Rebuild shard handles for topology recovered from a journal.
        for shard_id in self.config.shard_ids():
            self._make_shard(shard_id)
        for ns in self.config.sharded_namespaces():
            for chunk in self.config.chunks(ns):
                if chunk.shard in self.shards:
                    self.shards[chunk.shard].grant(ns, chunk.chunk_id)

    # -- topology -----------------------------------------------------------

    def _make_shard(self, shard_id: str) -> Shard:
        shard = Shard(shard_id, n_members=self.n_replicas,
                      store_factory=self.store_factory,
                      event_sink=self._emit)
        self.shards[shard_id] = shard
        if self.heartbeat is not None:
            self.heartbeat.add(shard.rs)
        return shard

    def add_shard(self, shard_id: str) -> Shard:
        if shard_id in self.shards:
            return self.shards[shard_id]
        self.config.register_shard(shard_id)
        shard = self._make_shard(shard_id)
        self._emit({"type": "add_shard", "shard": shard_id})
        return shard

    def shard(self, shard_id: str) -> Shard:
        try:
            return self.shards[shard_id]
        except KeyError:
            raise ClusterError(f"unknown shard {shard_id!r}") from None

    def shard_collection(self, ns: str, shard_key: str,
                         strategy: str = "hashed") -> "ClusterCollection":
        if not self.shards:
            raise ClusterError("add at least one shard before sharding")
        self.config.shard_collection(ns, shard_key, strategy,
                                     sorted(self.shards))
        for chunk in self.config.chunks(ns):
            self.shards[chunk.shard].grant(ns, chunk.chunk_id)
        return self.collection(ns)

    def collection(self, ns: str) -> "ClusterCollection":
        coll = self._collections.get(ns)
        if coll is None:
            coll = ClusterCollection(self, ns)
            self._collections[ns] = coll
        return coll

    # -- daemons ------------------------------------------------------------

    def start_heartbeat(self, interval_s: float = 0.05) -> HeartbeatMonitor:
        if self.heartbeat is None:
            self.heartbeat = HeartbeatMonitor(
                [s.rs for s in self.shards.values()], interval_s=interval_s)
            self.heartbeat.start()
        return self.heartbeat

    def start_balancer(self, interval_s: float = 0.2) -> Any:
        from .balancer import Balancer

        if self.balancer is None:
            self.balancer = Balancer(self, interval_s=interval_s)
            self.balancer.start()
        return self.balancer

    def stop(self) -> None:
        if self.heartbeat is not None:
            self.heartbeat.stop()
            self.heartbeat = None
        if self.balancer is not None:
            self.balancer.stop()
            self.balancer = None

    # -- splits -------------------------------------------------------------

    def note_insert(self, coll: ClusterCollection, chunk: Chunk) -> None:
        """Account one insert into ``chunk``; auto-split past the threshold."""
        ndocs = self.config.add_ndocs(chunk.chunk_id, 1)
        if ndocs > self.split_threshold:
            try:
                self.split_chunk(coll.ns, chunk.chunk_id)
            except ClusterError:
                pass  # unsplittable (single point / unit range): keep going

    def split_chunk(self, ns: str, chunk_id: str) -> tuple:
        """Split one chunk at its data median (ranged) or midpoint (hashed)."""
        chunk = self.config.get_chunk(ns, chunk_id)
        shard = self.shard(chunk.shard)
        meta = self.config.collection_meta(ns)
        with shard.rs._lock:
            split_point, left_n, right_n = self._split_point(
                ns, chunk, shard, meta)
            left, right = self.config.split_chunk(ns, chunk_id, split_point,
                                                  left_n, right_n)
            shard.grant(ns, left.chunk_id)
            shard.grant(ns, right.chunk_id)
            shard.revoke(ns, chunk_id)
        self.splits += 1
        self._invalidate_routers(ns)
        self._emit({"type": "split", "ns": ns, "chunk": chunk_id,
                    "at": split_point, "shard": chunk.shard})
        return left, right

    def _split_point(self, ns: str, chunk: Chunk, shard: Shard,
                     meta: Mapping[str, Any]) -> tuple:
        strategy, key = meta["strategy"], meta["key"]
        db_name, coll_name = Shard._split_ns(ns)
        primary = shard.rs._primary_or_raise()
        docs = primary.store[db_name][coll_name].all_documents()
        values = []
        for doc in docs:
            value = get_path(doc, key)
            if value is MISSING:
                continue
            rv = ClusterConfig.routing_value(strategy, value)
            if chunk.contains(rv):
                values.append(rv)
        if strategy == "hashed":
            if chunk.max - chunk.min < 2:
                raise ClusterError(f"chunk {chunk.chunk_id!r} is unsplittable")
            split_point = chunk.min + (chunk.max - chunk.min) // 2
        else:
            distinct = sorted(set(values), key=ordering_key)
            if len(distinct) < 2:
                raise ClusterError(
                    f"chunk {chunk.chunk_id!r} holds a single key value; "
                    "cannot split"
                )
            split_point = distinct[len(distinct) // 2]
            if bound_sort_key(split_point) == bound_sort_key(chunk.min):
                split_point = distinct[len(distinct) // 2 + 1]
        split_key = bound_sort_key(split_point)
        left_n = sum(1 for v in values if bound_sort_key(v) < split_key)
        return split_point, left_n, len(values) - left_n

    # -- migrations ---------------------------------------------------------

    def move_chunk(self, ns: str, chunk_id: str, dest_id: str) -> int:
        """Migrate one chunk: copy → delta drain → locked commit → cleanup.

        Returns the number of documents moved.  The commit holds the source
        replica-set lock (writers acquire the same lock, so the final drain
        sees a quiesced chunk), swaps config ownership with an epoch bump,
        and deletes the source copies before releasing — any routed
        operation racing the commit fails with :class:`StaleEpoch` and
        re-routes to the destination.
        """
        from ..changestream import ChangeStream

        with self._migration_lock:
            chunk = self.config.get_chunk(ns, chunk_id)
            if chunk.shard == dest_id:
                return 0
            src, dst = self.shard(chunk.shard), self.shard(dest_id)
            meta = self.config.collection_meta(ns)
            strategy, key = meta["strategy"], meta["key"]
            db_name, coll_name = Shard._split_ns(ns)

            def in_chunk(doc: Mapping[str, Any]) -> bool:
                value = get_path(doc, key)
                if value is MISSING:
                    return False
                return chunk.contains(
                    ClusterConfig.routing_value(strategy, value))

            def delta_filter(event: Any) -> bool:
                if event.document is None:
                    return True  # deletes are idempotent on the destination
                return in_chunk(event.document)

            src_primary = src.rs._primary_or_raise()
            source_coll = src_primary.store[db_name][coll_name]
            stream = ChangeStream(source_coll, filter_fn=delta_filter)
            try:
                moved = self._copy_phase(src, dst, db_name, coll_name,
                                         in_chunk)
                self._drain_phase(dst, db_name, coll_name, stream)
                with src.rs._lock:
                    if src.rs.primary is not src_primary:
                        raise ClusterError(
                            f"source primary of {src.shard_id!r} changed "
                            "mid-migration; aborting"
                        )
                    # Writers are excluded now — drain the last deltas.
                    self._apply_delta(dst, db_name, coll_name,
                                      stream.drain())
                    new_epoch = self.config.move_chunk_commit(ns, chunk_id,
                                                              dest_id)
                    dst.grant(ns, chunk_id)
                    src.revoke(ns, chunk_id)
                    stream.close()
                    src.rs.write(db_name, coll_name,
                                 lambda c: _delete_where(c, in_chunk))
            finally:
                stream.close()
        self.migrations += 1
        self.migrated_docs += moved
        self._invalidate_routers(ns)
        get_registry().counter(
            "repro_cluster_migrations_total",
            "chunk migrations committed",
        ).inc(1, ns=ns)
        self._emit({"type": "migration", "ns": ns, "chunk": chunk_id,
                    "from": src.shard_id, "to": dest_id, "docs": moved,
                    "epoch": new_epoch})
        return moved

    def _copy_phase(self, src: Shard, dst: Shard, db_name: str,
                    coll_name: str, in_chunk: Callable) -> int:
        src_coll = src.rs._primary_or_raise().store[db_name][coll_name]
        moved = 0
        for doc in src_coll.all_documents():
            if not in_chunk(doc):
                continue
            snapshot = deep_copy_doc(doc)
            dst.rs.write(db_name, coll_name,
                         lambda c: _upsert(c, snapshot))
            moved += 1
        return moved

    def _drain_phase(self, dst: Shard, db_name: str, coll_name: str,
                     stream: Any, rounds: int = 10) -> None:
        for _ in range(rounds):
            events = stream.drain()
            self._apply_delta(dst, db_name, coll_name, events)
            if len(events) < 16:
                return

    @staticmethod
    def _apply_delta(dst: Shard, db_name: str, coll_name: str,
                     events: List[Any]) -> None:
        for event in events:
            if event.operation == "delete" or event.document is None:
                dst.rs.write(db_name, coll_name, lambda c, e=event:
                             c.delete_one({"_id": e.document_id}))
            else:
                snapshot = deep_copy_doc(event.document)
                dst.rs.write(db_name, coll_name,
                             lambda c, d=snapshot: _upsert(c, d))

    def _invalidate_routers(self, ns: str) -> None:
        coll = self._collections.get(ns)
        if coll is not None:
            coll.refresh()

    # -- wire-op entry points ----------------------------------------------

    def step_down(self, shard_id: str) -> str:
        new_primary = self.shard(shard_id).rs.step_down()
        self._emit({"type": "step_down", "shard": shard_id,
                    "new_primary": new_primary})
        return new_primary

    def await_primaries(self, timeout_s: float = 5.0) -> None:
        for shard in self.shards.values():
            if shard.rs.primary is None:
                shard.rs.await_primary(timeout_s=timeout_s)

    # -- health-monitor protocol (watch_sharded compatibility) --------------

    def shard_distribution(self, ns: Optional[str] = None) -> Dict[str, int]:
        """Estimated docs per shard (first/namespace-summed chunk counters)."""
        namespaces = ([ns] if ns is not None
                      else self.config.sharded_namespaces())
        totals: Dict[str, int] = {sid: 0 for sid in self.shards}
        for namespace in namespaces:
            for shard_id, count in self.config.doc_counts(namespace).items():
                totals[shard_id] = totals.get(shard_id, 0) + count
        return totals

    def balance_factor(self, ns: Optional[str] = None) -> float:
        """max/mean document skew across shards (1.0 = perfectly even)."""
        distribution = self.shard_distribution(ns)
        counts = list(distribution.values())
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0

    # -- introspection ------------------------------------------------------

    def status(self) -> dict:
        namespaces = {}
        for ns in self.config.sharded_namespaces():
            meta = self.config.collection_meta(ns)
            namespaces[ns] = {
                "shardKey": meta["key"],
                "strategy": meta["strategy"],
                "epoch": meta["epoch"],
                "chunks": self.config.chunk_counts(ns),
                "docs": self.config.doc_counts(ns),
            }
        return {
            "shards": {sid: shard.rs.status()
                       for sid, shard in sorted(self.shards.items())},
            "namespaces": namespaces,
            "migrations": self.migrations,
            "migratedDocs": self.migrated_docs,
            "splits": self.splits,
            "staleEpochRetries": self.stale_retries,
            "notPrimaryRetries": self.not_primary_retries,
            "balancerRunning": self.balancer is not None,
            "heartbeatRunning": self.heartbeat is not None,
        }

    def sharding_stats(self) -> dict:
        """The compact ``server_status()["sharding"]`` section."""
        chunk_totals: Dict[str, int] = {sid: 0 for sid in self.shards}
        for ns in self.config.sharded_namespaces():
            for shard_id, count in self.config.chunk_counts(ns).items():
                chunk_totals[shard_id] = chunk_totals.get(shard_id, 0) + count
        return {
            "shards": len(self.shards),
            "chunksPerShard": dict(sorted(chunk_totals.items())),
            "migrations": self.migrations,
            "splits": self.splits,
            "staleEpochRetries": self.stale_retries,
            "elections": sum(s.rs.elections for s in self.shards.values()),
        }

    def _emit(self, event: dict) -> None:
        if self.event_sink is not None:
            try:
                self.event_sink(event)
            except Exception:
                pass


def _upsert(collection: Any, doc: Mapping[str, Any]) -> None:
    collection.delete_one({"_id": doc["_id"]})
    collection.insert_one(doc)


def _delete_where(collection: Any, pred: Callable[[Mapping[str, Any]], bool]
                  ) -> int:
    doomed = [d["_id"] for d in collection.all_documents() if pred(d)]
    for _id in doomed:
        collection.delete_one({"_id": _id})
    return len(doomed)
