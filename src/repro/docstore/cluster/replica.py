"""Per-shard replica sets: majority-ack writes, elections, catch-up.

Each shard in a :class:`~repro.docstore.cluster.router.ShardedCluster` is a
:class:`ShardReplicaSet` — a small group of member nodes, each owning its own
:class:`~repro.docstore.database.DocumentStore`, with exactly one *primary*
at a time:

* **Writes** are serialized under the set lock, applied to the primary and
  synchronously to every alive secondary, and acknowledged only when a
  majority of the *configured* membership applied them.  Because any two
  majorities intersect, an acknowledged write survives the loss of any
  minority of members — the invariant the chaos failover test asserts.
* **Elections** follow the Raft shape the paper's MongoDB deployment relies
  on: a term counter, one vote per member per term, and the rule that a
  candidate must be at least as up to date (``applied_optime``) as each
  voter.  A majority of votes wins; anything less raises
  :class:`~repro.errors.ElectionFailed`.
* **Catch-up** of a revived member is oplog-style via
  :class:`~repro.docstore.changestream.ChangeStream`: killing a node opens
  change streams on a live donor's collections, and revival drains them and
  replays the missed document-level deltas.  If the streams overflowed or
  the donor died in the meantime, the node falls back to a full resync from
  the current best member.

The :class:`HeartbeatMonitor` is the failure detector: a daemon thread that
notices a dead primary and triggers the election, so clients blocked in
``await_primary`` recover without operator action.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...errors import ClusterError, ElectionFailed, NotPrimary
from ...obs import get_registry
from ..changestream import ChangeStream
from ..collection import Collection
from ..database import DocumentStore

__all__ = ["ClusterReplicaNode", "ShardReplicaSet", "HeartbeatMonitor"]

#: Catch-up streams buffer this many missed events before forcing a resync.
CATCHUP_BUFFER = 50_000


class ClusterReplicaNode:
    """One replica-set member: a name, a store, liveness, and an optime."""

    def __init__(self, name: str, store: Optional[DocumentStore] = None):
        self.name = name
        self.store = store if store is not None else DocumentStore()
        self.alive = True
        #: Sequence number of the last write this member applied.
        self.applied_optime = 0

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"ClusterReplicaNode({self.name}, {state}, optime={self.applied_optime})"


class ShardReplicaSet:
    """A shard's replica set: serialized majority-ack writes + elections."""

    def __init__(self, shard_id: str, n_members: int = 3,
                 store_factory: Optional[Callable[[], DocumentStore]] = None,
                 event_sink: Optional[Callable[[dict], None]] = None):
        if n_members < 1:
            raise ClusterError("a replica set needs at least one member")
        self.shard_id = shard_id
        self._lock = threading.RLock()
        self.members: List[ClusterReplicaNode] = [
            ClusterReplicaNode(
                f"{shard_id}-{chr(ord('a') + i)}",
                store_factory() if store_factory is not None else None,
            )
            for i in range(n_members)
        ]
        self.term = 0
        #: ``term -> {voter name: candidate name}`` — one vote per term.
        self.voted_in: Dict[int, Dict[str, str]] = {}
        self.elections = 0
        self.event_sink = event_sink
        self._primary_idx = 0
        self._optime = 0
        #: Pending catch-up state for dead members:
        #: ``name -> (donor name, [(db, coll, stream), ...])``.
        self._catchup: Dict[str, Tuple[str, List[Tuple[str, str, ChangeStream]]]] = {}

    # -- membership ---------------------------------------------------------

    @property
    def majority(self) -> int:
        return len(self.members) // 2 + 1

    def node(self, name: str) -> ClusterReplicaNode:
        for member in self.members:
            if member.name == name:
                return member
        raise ClusterError(f"no member {name!r} in replica set {self.shard_id!r}")

    @property
    def primary(self) -> Optional[ClusterReplicaNode]:
        """The current primary, or ``None`` if it is dead."""
        candidate = self.members[self._primary_idx]
        return candidate if candidate.alive else None

    def primary_name(self) -> Optional[str]:
        primary = self.primary
        return primary.name if primary is not None else None

    def _primary_or_raise(self) -> ClusterReplicaNode:
        primary = self.primary
        if primary is None:
            raise NotPrimary(
                f"shard {self.shard_id!r} has no live primary "
                f"(term {self.term})"
            )
        return primary

    # -- reads / writes -----------------------------------------------------

    def read(self, db_name: str, coll_name: str,
             fn: Callable[[Collection], Any]) -> Any:
        """Run a read against the primary (strong-consistency reads)."""
        primary = self._primary_or_raise()
        return fn(primary.store[db_name][coll_name])

    def write(self, db_name: str, coll_name: str,
              fn: Callable[[Collection], Any]) -> Any:
        """Apply a deterministic write with w:majority semantics.

        ``fn`` runs against the primary's collection first (its return value
        is the client's result), then against every alive secondary.  The
        caller must make ``fn`` deterministic — e.g. pre-assign ``_id``
        before the fan-out — so every member converges on the same state.

        Raises :class:`NotPrimary` when the primary is dead and
        :class:`ClusterError` when fewer than a majority of configured
        members are alive to acknowledge.
        """
        with self._lock:
            primary = self._primary_or_raise()
            alive = [m for m in self.members if m.alive]
            if len(alive) < self.majority:
                raise ClusterError(
                    f"shard {self.shard_id!r}: only {len(alive)}/"
                    f"{len(self.members)} members alive; cannot satisfy "
                    "majority write concern"
                )
            self._optime += 1
            result = fn(primary.store[db_name][coll_name])
            primary.applied_optime = self._optime
            for member in alive:
                if member is primary:
                    continue
                fn(member.store[db_name][coll_name])
                member.applied_optime = self._optime
            return result

    def last_optime(self) -> int:
        return self._optime

    # -- failure injection --------------------------------------------------

    def kill(self, name: str) -> None:
        """Mark a member dead (logical kill; in-flight writes finish first).

        Opens catch-up change streams on a live donor so a later
        :meth:`revive` can replay only the missed deltas.
        """
        with self._lock:
            node = self.node(name)
            if not node.alive:
                return
            node.alive = False
            donor = self._best_alive()
            streams: List[Tuple[str, str, ChangeStream]] = []
            if donor is not None:
                for db_name in donor.store.list_database_names():
                    for coll_name in donor.store[db_name].list_collection_names():
                        streams.append((db_name, coll_name, ChangeStream(
                            donor.store[db_name][coll_name],
                            max_buffer=CATCHUP_BUFFER,
                        )))
                self._catchup[name] = (donor.name, streams)
            self._emit({"type": "member_killed", "shard": self.shard_id,
                        "member": name, "term": self.term})
            get_registry().counter(
                "repro_cluster_member_kills_total",
                "replica-set members marked dead",
            ).inc(1, shard=self.shard_id)

    def revive(self, name: str) -> str:
        """Bring a dead member back, catching it up before it serves.

        Returns ``"delta"`` when the changestream replay sufficed or
        ``"resync"`` when a full copy from the best member was required.
        """
        with self._lock:
            node = self.node(name)
            if node.alive:
                return "delta"
            donor_name, streams = self._catchup.pop(name, (None, []))
            mode = "resync"
            donor = self.node(donor_name) if donor_name else None
            if (donor is not None and donor.alive
                    and not any(s.dropped for _, _, s in streams)
                    and self._same_namespaces(donor, streams)):
                for db_name, coll_name, stream in streams:
                    target = node.store[db_name][coll_name]
                    for event in stream.drain():
                        self._apply_event(target, event)
                mode = "delta"
            else:
                source = self._best_alive()
                if source is None:
                    raise ClusterError(
                        f"shard {self.shard_id!r}: no live member to "
                        f"resync {name!r} from"
                    )
                self._full_resync(source, node)
            for _, _, stream in streams:
                stream.close()
            node.applied_optime = self._optime
            node.alive = True
            self._emit({"type": "member_revived", "shard": self.shard_id,
                        "member": name, "mode": mode, "term": self.term})
            return mode

    def _best_alive(self) -> Optional[ClusterReplicaNode]:
        alive = [m for m in self.members if m.alive]
        if not alive:
            return None
        return max(alive, key=lambda m: m.applied_optime)

    @staticmethod
    def _same_namespaces(donor: ClusterReplicaNode,
                         streams: List[Tuple[str, str, ChangeStream]]) -> bool:
        """Whether the donor grew namespaces the catch-up streams miss."""
        streamed = {(db, coll) for db, coll, _ in streams}
        for db_name in donor.store.list_database_names():
            for coll_name in donor.store[db_name].list_collection_names():
                if (db_name, coll_name) not in streamed:
                    return False
        return True

    @staticmethod
    def _apply_event(target: Collection, event: Any) -> None:
        target.delete_one({"_id": event.document_id})
        if event.operation in ("insert", "update") and event.document is not None:
            target.insert_one(event.document)

    @staticmethod
    def _full_resync(source: ClusterReplicaNode,
                     node: ClusterReplicaNode) -> None:
        for db_name in source.store.list_database_names():
            for coll_name in source.store[db_name].list_collection_names():
                src = source.store[db_name][coll_name]
                dst = node.store[db_name][coll_name]
                for doc in dst.all_documents():
                    dst.delete_one({"_id": doc["_id"]})
                for doc in src.all_documents():
                    dst.insert_one(doc)

    # -- elections ----------------------------------------------------------

    def elect(self, exclude: Optional[str] = None) -> str:
        """Run a primary election; returns the new primary's name.

        The candidate is the most up-to-date alive member (optionally
        excluding a stepping-down primary).  Every alive member casts at
        most one vote per term and only for a candidate whose
        ``applied_optime`` is >= its own; a majority of the *configured*
        membership must vote yes.
        """
        with self._lock:
            voters = [m for m in self.members if m.alive]
            candidates = [m for m in voters if m.name != exclude]
            self.term += 1
            ballot = self.voted_in.setdefault(self.term, {})
            if not candidates:
                raise ElectionFailed(
                    f"shard {self.shard_id!r}: no eligible candidate "
                    f"in term {self.term}"
                )
            candidate = max(candidates, key=lambda m: m.applied_optime)
            votes = 0
            for voter in voters:
                if voter.name in ballot:
                    continue
                if candidate.applied_optime >= voter.applied_optime:
                    ballot[voter.name] = candidate.name
                    votes += 1
            if votes < self.majority:
                raise ElectionFailed(
                    f"shard {self.shard_id!r}: candidate {candidate.name!r} "
                    f"got {votes}/{len(self.members)} votes in term "
                    f"{self.term}; majority is {self.majority}"
                )
            self._primary_idx = self.members.index(candidate)
            self.elections += 1
            self._emit({"type": "election", "shard": self.shard_id,
                        "primary": candidate.name, "term": self.term,
                        "votes": votes})
            get_registry().counter(
                "repro_cluster_elections_total",
                "replica-set primary elections won",
            ).inc(1, shard=self.shard_id)
            return candidate.name

    def step_down(self) -> str:
        """Demote the current primary and elect a successor.

        The stepping-down primary stays alive and still votes, mirroring
        ``replSetStepDown``.
        """
        with self._lock:
            old = self._primary_or_raise()
            return self.elect(exclude=old.name)

    def await_primary(self, timeout_s: float = 5.0,
                      poll_interval_s: float = 0.01) -> ClusterReplicaNode:
        """Block until a live primary exists, electing one if possible.

        Covers both deployments: with a :class:`HeartbeatMonitor` running
        the monitor performs the election and this just observes it; without
        one, the first blocked client triggers the election itself.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            primary = self.primary
            if primary is not None:
                return primary
            try:
                self.elect()
            except ElectionFailed:
                pass
            primary = self.primary
            if primary is not None:
                return primary
            if time.monotonic() >= deadline:
                raise NotPrimary(
                    f"shard {self.shard_id!r}: no primary within "
                    f"{timeout_s:.1f}s"
                )
            time.sleep(poll_interval_s)

    # -- introspection ------------------------------------------------------

    def status(self) -> dict:
        with self._lock:
            return {
                "shard": self.shard_id,
                "term": self.term,
                "primary": self.primary_name(),
                "elections": self.elections,
                "optime": self._optime,
                "members": [
                    {"name": m.name, "alive": m.alive,
                     "optime": m.applied_optime,
                     "role": ("PRIMARY" if self.primary is m else
                              "SECONDARY" if m.alive else "DOWN")}
                    for m in self.members
                ],
            }

    def _emit(self, event: dict) -> None:
        if self.event_sink is not None:
            try:
                self.event_sink(event)
            except Exception:
                pass


class HeartbeatMonitor:
    """Failure detector: a daemon thread that elects around dead primaries."""

    def __init__(self, replica_sets: List[ShardReplicaSet],
                 interval_s: float = 0.05):
        self.replica_sets = list(replica_sets)
        self.interval_s = interval_s
        self.beats = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def add(self, replica_set: ShardReplicaSet) -> None:
        self.replica_sets.append(replica_set)

    def start(self) -> "HeartbeatMonitor":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._run,
                                        name="cluster-heartbeat", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def check_once(self) -> int:
        """One heartbeat sweep; returns how many elections it triggered."""
        triggered = 0
        for rs in self.replica_sets:
            if rs.primary is None:
                try:
                    rs.elect()
                    triggered += 1
                except ElectionFailed:
                    pass
        self.beats += 1
        return triggered

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.check_once()
