"""The balancer daemon: watches shard balance, migrates chunks to even it.

MongoDB's balancer is what makes §IV-D2's "just add shards" story true in
practice: without it, a newly added shard owns nothing and a skewed ingest
leaves one shard holding most of the data.  This balancer watches the same
signal the health monitor alerts on — the shard-balance gauge fed by
``balance_factor()`` — and, whenever either the document skew exceeds its
threshold or chunk counts differ by more than one, moves the cheapest chunk
from the most-loaded shard to the least-loaded one via
:meth:`~repro.docstore.cluster.router.ShardedCluster.move_chunk` (the full
copy → delta-drain → locked-commit protocol, so it is safe to run against
live writers).

``balance_once`` is the deterministic unit the convergence test drives; the
daemon thread is the same loop on a timer.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from ...errors import ClusterError
from ...obs import get_registry
from .router import ShardedCluster

__all__ = ["Balancer"]


class Balancer:
    """Chunk-count/doc-skew equalizer over a :class:`ShardedCluster`."""

    def __init__(self, cluster: ShardedCluster, interval_s: float = 0.2,
                 balance_threshold: float = 1.1,
                 max_moves_per_round: int = 8):
        self.cluster = cluster
        self.interval_s = interval_s
        #: Document-skew trigger: act when ``balance_factor`` (max/mean)
        #: exceeds this even if chunk counts look level.
        self.balance_threshold = balance_threshold
        self.max_moves_per_round = max_moves_per_round
        self.rounds = 0
        self.moves = 0
        self.failed_moves = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- one deterministic pass --------------------------------------------

    def balance_once(self) -> List[dict]:
        """One balancing round; returns the migrations it performed."""
        performed: List[dict] = []
        self.rounds += 1
        for ns in self.cluster.config.sharded_namespaces():
            while len(performed) < self.max_moves_per_round:
                move = self._plan_move(ns)
                if move is None:
                    break
                chunk_id, donor, recipient = move
                try:
                    docs = self.cluster.move_chunk(ns, chunk_id, recipient)
                except ClusterError:
                    self.failed_moves += 1
                    break  # e.g. mid-election source; retry next round
                self.moves += 1
                performed.append({"ns": ns, "chunk": chunk_id,
                                  "from": donor, "to": recipient,
                                  "docs": docs})
        if performed:
            get_registry().counter(
                "repro_cluster_balancer_moves_total",
                "chunk migrations initiated by the balancer",
            ).inc(len(performed))
        return performed

    def _plan_move(self, ns: str) -> Optional[tuple]:
        """Pick ``(chunk_id, donor, recipient)`` or ``None`` if balanced."""
        chunk_counts = self.cluster.config.chunk_counts(ns)
        if len(chunk_counts) < 2:
            return None
        donor = max(chunk_counts, key=lambda s: chunk_counts[s])
        recipient = min(chunk_counts, key=lambda s: chunk_counts[s])
        chunk_spread = chunk_counts[donor] - chunk_counts[recipient]
        skewed = self.cluster.balance_factor(ns) > self.balance_threshold
        if chunk_spread < 2 and not (skewed and chunk_spread >= 1):
            return None
        if chunk_spread < 1:
            return None
        donor_chunks = [c for c in self.cluster.config.chunks(ns)
                        if c.shard == donor]
        if not donor_chunks:
            return None
        # Cheapest first: migration cost scales with documents copied.
        victim = min(donor_chunks, key=lambda c: c.ndocs)
        return victim.chunk_id, donor, recipient

    def is_balanced(self, ns: str) -> bool:
        return self._plan_move(ns) is None

    # -- daemon -------------------------------------------------------------

    def start(self) -> "Balancer":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="cluster-balancer", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.balance_once()
            except Exception:
                self.failed_moves += 1

    def stats(self) -> dict:
        return {"rounds": self.rounds, "moves": self.moves,
                "failed": self.failed_moves,
                "running": self._thread is not None}
