"""Cluster config metadata: the chunk map, shard registry, and epochs.

§IV-D2's scale-out story hinges on MongoDB's config servers: a small,
authoritative metadata collection mapping contiguous ranges of the shard-key
space ("chunks") onto shards, versioned by an *epoch* that lets every router
detect a stale cached map.  This module is that metadata layer for the
reproduction:

* ``config.shards``  — one document per registered shard;
* ``config.chunks``  — one document per chunk: ``{ns, min, max, shard,
  ndocs}`` with half-open ``[min, max)`` bounds over the raw key space
  (ranged collections) or the 64-bit hash space (hashed collections);
* ``config.collections`` — per-namespace sharding metadata: shard key,
  strategy, and the current **epoch**, bumped on every split and every
  migration commit;
* ``config.settings`` — monotonic id counters.

The config store is an ordinary :class:`~repro.docstore.database.Database`,
so pointing it at a journal-backed :class:`DocumentStore` makes the whole
chunk map durable through the same group-commit journal as user data —
a restarted cluster recovers its topology from the journal replay.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ...errors import ClusterError, ShardingError
from ..documents import MISSING, get_path
from ..matching import ordering_key
from ..sharding import hash_shard_key

__all__ = [
    "MIN_KEY",
    "MAX_KEY",
    "Chunk",
    "ClusterConfig",
    "bound_sort_key",
    "value_in_bounds",
]

#: Sentinels bounding the key space.  They serialize as plain strings so
#: chunk documents round-trip the journal; a *data* shard-key value equal to
#: these literals is rejected at insert time to keep the encoding unambiguous.
MIN_KEY = "$minKey"
MAX_KEY = "$maxKey"

#: The hashed strategy's key space: ``hash_shard_key`` yields 64-bit ints.
HASH_SPACE_MAX = 2 ** 64


def bound_sort_key(value: Any) -> tuple:
    """Total order over chunk bounds: ``MIN_KEY < any value < MAX_KEY``."""
    if isinstance(value, str):
        if value == MIN_KEY:
            return (0,)
        if value == MAX_KEY:
            return (2,)
    return (1, ordering_key(value))


def value_in_bounds(value: Any, lo: Any, hi: Any) -> bool:
    """Whether a (routing-space) key value falls in ``[lo, hi)``."""
    key = (1, ordering_key(value))
    # ordering_key only defines ``<``; express ``lo <= key < hi`` with it.
    return not (key < bound_sort_key(lo)) and key < bound_sort_key(hi)


class Chunk:
    """One contiguous slice of the shard-key space, owned by one shard."""

    __slots__ = ("chunk_id", "ns", "min", "max", "shard", "ndocs")

    def __init__(self, chunk_id: str, ns: str, lo: Any, hi: Any,
                 shard: str, ndocs: int = 0):
        self.chunk_id = chunk_id
        self.ns = ns
        self.min = lo
        self.max = hi
        self.shard = shard
        self.ndocs = int(ndocs)

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "Chunk":
        return cls(doc["_id"], doc["ns"], doc["min"], doc["max"],
                   doc["shard"], doc.get("ndocs", 0))

    def to_doc(self) -> dict:
        return {"_id": self.chunk_id, "ns": self.ns, "min": self.min,
                "max": self.max, "shard": self.shard, "ndocs": self.ndocs}

    def contains(self, routing_value: Any) -> bool:
        return value_in_bounds(routing_value, self.min, self.max)

    def __repr__(self) -> str:
        return (f"Chunk({self.chunk_id}: [{self.min!r}, {self.max!r}) "
                f"on {self.shard}, ~{self.ndocs} docs)")


class ClusterConfig:
    """CRUD over the config metadata collections, with epoch versioning.

    All multi-document transitions (split, migration commit) run under one
    process-level mutex *and* bump the namespace epoch last, so a reader
    that saw the old epoch can detect it raced a topology change.  The
    underlying collection writes ride the ordinary per-collection RW locks
    and (for journal-backed stores) the group-commit journal.
    """

    def __init__(self, db: Any):
        self.db = db
        self._mutex = threading.RLock()

    # -- shards ------------------------------------------------------------

    def register_shard(self, shard_id: str) -> dict:
        with self._mutex:
            existing = self.db["shards"].find_one({"_id": shard_id})
            if existing is not None:
                return existing
            doc = {"_id": shard_id, "state": "ACTIVE"}
            self.db["shards"].insert_one(doc)
            return doc

    def shard_ids(self) -> List[str]:
        return sorted(d["_id"] for d in self.db["shards"].find({}))

    # -- namespaces --------------------------------------------------------

    def shard_collection(self, ns: str, shard_key: str, strategy: str,
                         shard_ids: List[str],
                         pre_split_per_shard: int = 2) -> dict:
        """Register ``ns`` as sharded and create its initial chunk map.

        Hashed collections pre-split the 64-bit hash space into
        ``pre_split_per_shard`` chunks per shard, round-robin assigned (the
        mongos hashed-presplit behaviour, so fresh ingest spreads out
        immediately).  Ranged collections start as one
        ``[MIN_KEY, MAX_KEY)`` chunk on the first shard and rely on
        auto-split + the balancer.
        """
        if strategy not in ("hashed", "range"):
            raise ShardingError(f"unknown sharding strategy {strategy!r}")
        if not shard_ids:
            raise ShardingError("cannot shard a collection with no shards")
        with self._mutex:
            if self.db["collections"].find_one({"_id": ns}) is not None:
                raise ShardingError(f"{ns!r} is already sharded")
            meta = {"_id": ns, "key": shard_key, "strategy": strategy,
                    "epoch": 1}
            self.db["collections"].insert_one(meta)
            if strategy == "hashed":
                n_chunks = max(1, pre_split_per_shard) * len(shard_ids)
                step = HASH_SPACE_MAX // n_chunks
                bounds = [i * step for i in range(n_chunks)]
                bounds.append(HASH_SPACE_MAX)
                for i in range(n_chunks):
                    self._insert_chunk(ns, bounds[i], bounds[i + 1],
                                       shard_ids[i % len(shard_ids)])
            else:
                self._insert_chunk(ns, MIN_KEY, MAX_KEY, shard_ids[0])
            return meta

    def collection_meta(self, ns: str) -> Optional[dict]:
        return self.db["collections"].find_one({"_id": ns})

    def sharded_namespaces(self) -> List[str]:
        return sorted(d["_id"] for d in self.db["collections"].find({}))

    def epoch(self, ns: str) -> int:
        meta = self.collection_meta(ns)
        if meta is None:
            raise ClusterError(f"{ns!r} is not a sharded namespace")
        return meta["epoch"]

    def _bump_epoch(self, ns: str) -> int:
        doc = self.db["collections"].find_one_and_update(
            {"_id": ns}, {"$inc": {"epoch": 1}}, return_document="after",
        )
        if doc is None:
            raise ClusterError(f"{ns!r} is not a sharded namespace")
        return doc["epoch"]

    # -- chunks ------------------------------------------------------------

    def _next_chunk_id(self, ns: str) -> str:
        counter = self.db["settings"].find_one_and_update(
            {"_id": "chunk_seq"}, {"$inc": {"value": 1}},
            return_document="after", upsert=True,
        )
        return f"{ns}|{counter['value']}"

    def _insert_chunk(self, ns: str, lo: Any, hi: Any, shard: str,
                      ndocs: int = 0) -> Chunk:
        chunk = Chunk(self._next_chunk_id(ns), ns, lo, hi, shard, ndocs)
        self.db["chunks"].insert_one(chunk.to_doc())
        return chunk

    def chunks(self, ns: str) -> List[Chunk]:
        """The namespace's chunks, ordered by their lower bound."""
        out = [Chunk.from_doc(d) for d in self.db["chunks"].find({"ns": ns})]
        out.sort(key=lambda c: bound_sort_key(c.min))
        return out

    def chunk_snapshot(self, ns: str) -> Tuple[int, List[Chunk]]:
        """``(epoch, ordered chunks)`` read atomically for router caches."""
        with self._mutex:
            return self.epoch(ns), self.chunks(ns)

    def get_chunk(self, ns: str, chunk_id: str) -> Chunk:
        doc = self.db["chunks"].find_one({"_id": chunk_id})
        if doc is None or doc["ns"] != ns:
            raise ClusterError(f"unknown chunk {chunk_id!r} in {ns!r}")
        return Chunk.from_doc(doc)

    def add_ndocs(self, chunk_id: str, delta: int) -> int:
        """Adjust a chunk's document-count estimate; returns the new count."""
        doc = self.db["chunks"].find_one_and_update(
            {"_id": chunk_id}, {"$inc": {"ndocs": delta}},
            return_document="after",
        )
        return doc["ndocs"] if doc else 0

    def chunk_counts(self, ns: str) -> Dict[str, int]:
        """Chunks per shard (all registered shards, zeros included)."""
        counts = {sid: 0 for sid in self.shard_ids()}
        for chunk in self.chunks(ns):
            counts[chunk.shard] = counts.get(chunk.shard, 0) + 1
        return counts

    def doc_counts(self, ns: str) -> Dict[str, int]:
        """Estimated documents per shard from chunk counters."""
        counts = {sid: 0 for sid in self.shard_ids()}
        for chunk in self.chunks(ns):
            counts[chunk.shard] = counts.get(chunk.shard, 0) + chunk.ndocs
        return counts

    # -- topology transitions ---------------------------------------------

    def split_chunk(self, ns: str, chunk_id: str, split_point: Any,
                    left_ndocs: int, right_ndocs: int) -> Tuple[Chunk, Chunk]:
        """Replace one chunk with two at ``split_point``; bumps the epoch."""
        with self._mutex:
            chunk = self.get_chunk(ns, chunk_id)
            if not value_in_bounds(split_point, chunk.min, chunk.max) or (
                bound_sort_key(split_point) == bound_sort_key(chunk.min)
            ):
                raise ClusterError(
                    f"split point {split_point!r} not strictly inside "
                    f"[{chunk.min!r}, {chunk.max!r})"
                )
            self.db["chunks"].delete_one({"_id": chunk_id})
            left = self._insert_chunk(ns, chunk.min, split_point,
                                      chunk.shard, left_ndocs)
            right = self._insert_chunk(ns, split_point, chunk.max,
                                       chunk.shard, right_ndocs)
            self._bump_epoch(ns)
            return left, right

    def move_chunk_commit(self, ns: str, chunk_id: str, dest: str) -> int:
        """Commit a migration: re-home the chunk, bump the epoch."""
        with self._mutex:
            chunk = self.get_chunk(ns, chunk_id)
            if dest not in self.shard_ids():
                raise ClusterError(f"unknown destination shard {dest!r}")
            if chunk.shard == dest:
                raise ClusterError(f"chunk {chunk_id!r} already on {dest!r}")
            self.db["chunks"].update_one({"_id": chunk_id},
                                         {"$set": {"shard": dest}})
            return self._bump_epoch(ns)

    # -- routing helpers ---------------------------------------------------

    @staticmethod
    def routing_value(strategy: str, key_value: Any) -> Any:
        """Map a raw shard-key value into the chunk-bounds space."""
        if isinstance(key_value, str) and key_value in (MIN_KEY, MAX_KEY):
            raise ShardingError(
                f"shard-key value {key_value!r} collides with a key-space "
                "sentinel"
            )
        if strategy == "hashed":
            return hash_shard_key(key_value)
        return key_value

    @staticmethod
    def doc_routing_value(strategy: str, shard_key: str,
                          document: Mapping[str, Any]) -> Any:
        value = get_path(document, shard_key)
        if value is MISSING:
            raise ShardingError(
                f"document missing shard key {shard_key!r}"
            )
        return ClusterConfig.routing_value(strategy, value)
