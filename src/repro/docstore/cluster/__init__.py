"""Self-managing sharded cluster: chunks, balancer, elections, routing.

The paper's §IV-D2 answer to scale is "leverage the sharding and replication
capabilities built in to MongoDB".  This package is that answer's working
model on top of the reproduction's document store:

* :mod:`~repro.docstore.cluster.config` — the chunk map, shard registry, and
  epoch versioning, persisted through the journal when the config store is
  journal-backed;
* :mod:`~repro.docstore.cluster.replica` — per-shard replica sets with
  majority-ack writes, term/vote primary elections, and changestream-based
  catch-up;
* :mod:`~repro.docstore.cluster.balancer` — the daemon that migrates chunks
  to even out shard load;
* :mod:`~repro.docstore.cluster.router` — the mongos analog: planner-aware
  shard targeting with ``SINGLE_SHARD``/``SCATTER_GATHER`` explain modes and
  stale-epoch/not-primary retry.
"""

from .balancer import Balancer
from .config import MAX_KEY, MIN_KEY, Chunk, ClusterConfig
from .replica import ClusterReplicaNode, HeartbeatMonitor, ShardReplicaSet
from .router import ClusterCollection, Shard, ShardedCluster

__all__ = [
    "Balancer",
    "Chunk",
    "ClusterCollection",
    "ClusterConfig",
    "ClusterReplicaNode",
    "HeartbeatMonitor",
    "MAX_KEY",
    "MIN_KEY",
    "Shard",
    "ShardReplicaSet",
    "ShardedCluster",
]
