"""Live operation introspection: MongoDB-style ``currentOp`` / ``killOp``.

Saxton (2022) makes the operational case: running a sharded MongoDB on HPC
lives or dies on per-shard operation visibility — "what is this server
executing right now, and can I stop the scan that is eating it?".  This
module is that capability for the reproduction's store: every long-running
dispatched operation registers itself in a process-wide active-ops table
with an opid, its namespace, the query *shape* (field names and operators,
values elided), elapsed time, and a cooperative kill flag.

The kill is cooperative, exactly like MongoDB's: ``killOp(opid)`` only sets
the flag; the executing operation notices at its next check point (cursor
scans check per candidate document, MapReduce per input document) and
raises :class:`~repro.errors.OperationKilled` out of the caller's stack.

Exposure: :meth:`DocumentStore.current_op` / :meth:`DocumentStore.kill_op`
in-process, ``op: "current_op"`` / ``op: "kill_op"`` on the wire protocol,
and ``GET /ops`` on the Materials API httpd.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional

from ..errors import DeadlineExceeded, OperationKilled
from ..obs import current_span, get_registry

__all__ = ["ActiveOp", "OperationRegistry", "query_shape",
           "current_deadline", "deadline_scope"]

# Per-thread deadline propagated from the wire server: when a request
# carries ``"$deadline"`` (epoch seconds), every operation it registers
# inherits it, and the cooperative kill check points abort past-due work.
_deadline_local = threading.local()


def current_deadline() -> Optional[float]:
    """The wall-clock deadline governing this thread's ops, if any."""
    return getattr(_deadline_local, "deadline", None)


@contextmanager
def deadline_scope(deadline: Optional[float]) -> Iterator[None]:
    """Run a block with ``deadline`` as this thread's operation deadline."""
    previous = current_deadline()
    _deadline_local.deadline = deadline
    try:
        yield
    finally:
        _deadline_local.deadline = previous

#: List elements beyond this many are collapsed into "..." in a shape.
_SHAPE_LIST_CAP = 4


def query_shape(query: Any) -> Any:
    """The structure of a query with its values elided.

    ``{"state": "READY", "spec.nelectrons": {"$lte": 200}}`` becomes
    ``{"state": "?str", "spec.nelectrons": {"$lte": "?int"}}`` — enough for
    an operator to recognize the query family without ``currentOp`` leaking
    document contents into logs or the HTTP surface.
    """
    if isinstance(query, Mapping):
        return {str(k): query_shape(v) for k, v in query.items()}
    if isinstance(query, (list, tuple)):
        shaped = [query_shape(v) for v in query[:_SHAPE_LIST_CAP]]
        if len(query) > _SHAPE_LIST_CAP:
            shaped.append("...")
        return shaped
    return f"?{type(query).__name__}"


class ActiveOp:
    """One in-flight operation: identity, shape, and the kill flag."""

    __slots__ = ("opid", "op", "ns", "shape", "started_s", "started_wall",
                 "trace_id", "deadline", "plan_summary", "_killed")

    def __init__(self, opid: int, op: str, ns: str, query: Any,
                 deadline: Optional[float] = None):
        self.opid = opid
        self.op = op
        self.ns = ns
        self.shape = query_shape(query) if query is not None else None
        #: MongoDB-style planSummary, filled in once the planner has run.
        self.plan_summary: Optional[str] = None
        self.started_s = time.perf_counter()
        self.started_wall = time.time()
        s = current_span()
        self.trace_id = s.trace_id if s is not None else None
        self.deadline = deadline if deadline is not None else current_deadline()
        self._killed = threading.Event()

    @property
    def killed(self) -> bool:
        return self._killed.is_set()

    def kill(self) -> None:
        self._killed.set()

    def check_killed(self) -> None:
        """The cooperative check point; raises if ``killOp`` targeted us
        or the client-supplied deadline has passed."""
        # Deadline first: an op swept by ``kill_expired`` should report
        # *why* it died, not just that the kill flag was set.
        if self.deadline is not None and time.time() > self.deadline:
            self._killed.set()
            raise DeadlineExceeded(
                f"operation {self.opid} ({self.op} on {self.ns}) "
                "exceeded its deadline"
            )
        if self._killed.is_set():
            raise OperationKilled(
                f"operation {self.opid} ({self.op} on {self.ns}) "
                "terminated by killOp"
            )

    def describe(self) -> dict:
        """The ``currentOp``-style document for this op."""
        return {
            "opid": self.opid,
            "op": self.op,
            "ns": self.ns,
            "query_shape": self.shape,
            "planSummary": self.plan_summary,
            "elapsed_ms": (time.perf_counter() - self.started_s) * 1e3,
            "started_at": self.started_wall,
            "trace_id": self.trace_id,
            "deadline": self.deadline,
            "killed": self.killed,
        }


class OperationRegistry:
    """Thread-safe table of every in-flight operation on one store."""

    def __init__(self) -> None:
        self._ops: Dict[int, ActiveOp] = {}
        self._lock = threading.Lock()
        self._opids = itertools.count(1)

    def register(self, op: str, ns: str, query: Any = None) -> ActiveOp:
        active = ActiveOp(next(self._opids), op, ns, query)
        with self._lock:
            self._ops[active.opid] = active
        get_registry().gauge(
            "repro_docstore_active_ops", "operations currently executing"
        ).inc(1, op=op)
        return active

    def finish(self, active: Optional[ActiveOp]) -> None:
        if active is None:
            return
        with self._lock:
            self._ops.pop(active.opid, None)
        get_registry().gauge(
            "repro_docstore_active_ops", "operations currently executing"
        ).dec(1, op=active.op)

    @contextmanager
    def track(self, op: str, ns: str, query: Any = None) -> Iterator[ActiveOp]:
        """Register for the duration of a block; always deregisters."""
        active = self.register(op, ns, query)
        try:
            yield active
        finally:
            self.finish(active)

    def current_op(self) -> List[dict]:
        """Snapshot of every in-flight op, oldest first (``db.currentOp``)."""
        with self._lock:
            ops = sorted(self._ops.values(), key=lambda a: a.opid)
        return [a.describe() for a in ops]

    def kill_expired(self, now: Optional[float] = None) -> int:
        """Flag every op whose ``$deadline`` has passed; returns the count.

        The wire server sweeps this on each dispatch, so an op stuck
        between cooperative check points is still reaped by the next
        arriving request — the same table ``killOp`` uses.
        """
        now = time.time() if now is None else now
        with self._lock:
            expired = [a for a in self._ops.values()
                       if a.deadline is not None and now > a.deadline
                       and not a.killed]
        for active in expired:
            active.kill()
            get_registry().counter(
                "repro_docstore_ops_expired_total",
                "operations aborted past their deadline"
            ).inc(1, op=active.op)
        return len(expired)

    def kill_op(self, opid: int) -> bool:
        """Flag ``opid`` for termination; True if it was in flight."""
        with self._lock:
            active = self._ops.get(opid)
        if active is None:
            return False
        active.kill()
        get_registry().counter(
            "repro_docstore_ops_killed_total", "operations killed via killOp"
        ).inc(1, op=active.op)
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._ops)
