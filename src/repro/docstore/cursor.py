"""Cursors: lazy result sets with sort / skip / limit / projection.

The web back-end (§III-D) pages through result sets and projects deeply
nested fields out of large task documents; projections are also how the
QueryEngine keeps API payloads small.  Cursors are lazy — the underlying
find() does no work until iteration starts — so a query that is immediately
``.limit(1)``-ed after an index probe touches very few documents.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Mapping, Optional

from ..errors import DocstoreError
from .documents import MISSING, deep_copy_doc, get_path, set_path
from .matching import ordering_key

__all__ = ["Cursor", "apply_projection"]


def _split_projection(projection: Mapping[str, Any]) -> tuple:
    include: List[str] = []
    exclude: List[str] = []
    for field, flag in projection.items():
        if flag in (1, True):
            include.append(field)
        elif flag in (0, False):
            exclude.append(field)
        else:
            raise DocstoreError(f"projection value for {field!r} must be 0/1")
    inc_set = [f for f in include if f != "_id"]
    exc_set = [f for f in exclude if f != "_id"]
    if inc_set and exc_set:
        raise DocstoreError("cannot mix inclusion and exclusion in a projection")
    id_flag = projection.get("_id", None)
    return inc_set, exc_set, id_flag


def apply_projection(doc: Mapping[str, Any], projection: Optional[Mapping[str, Any]]) -> dict:
    """Return a new document with the projection applied.

    Follows Mongo rules: inclusion projections whitelist dotted paths (always
    keeping ``_id`` unless ``_id: 0``); exclusion projections remove paths.
    """
    if not projection:
        return deep_copy_doc(doc)
    include, exclude, id_flag = _split_projection(projection)
    if include:
        out: dict = {}
        if id_flag in (None, 1, True) and "_id" in doc:
            out["_id"] = doc["_id"]
        for path in include:
            value = get_path(doc, path)
            if value is not MISSING:
                set_path(out, path, deep_copy_doc(value))
        return out
    out = deep_copy_doc(doc)
    for path in exclude:
        from .documents import unset_path

        unset_path(out, path)
    if id_flag in (0, False):
        out.pop("_id", None)
    return out


class Cursor:
    """Lazy, chainable view over a query's results.

    ``source`` is a zero-argument callable producing the matching documents
    (already safety-copied by the collection).  Chaining ``sort``, ``skip``,
    ``limit`` and re-iterating re-executes the query, like re-running a
    cursor in the mongo shell.

    Collection-backed cursors are constructed with ``planned=True``; their
    source is the collection's plan-and-execute closure, called as
    ``source(sort_spec, skip, limit, hint)`` and returning ``(docs,
    already_sorted)``.  When the winning plan provides the requested sort
    order from the index, ``already_sorted`` is True and the cursor skips
    its blocking in-memory sort.
    """

    def __init__(
        self,
        source: Callable[..., Any],
        projection: Optional[Mapping[str, Any]] = None,
        planned: bool = False,
    ):
        self._source = source
        self._projection = dict(projection) if projection else None
        self._planned = planned
        self._hint: Optional[str] = None
        self._sort_spec: List[tuple] = []
        self._skip = 0
        self._limit: Optional[int] = None
        self._batch_size: Optional[int] = None  # cosmetic parity with Mongo

    # -- chainable modifiers ------------------------------------------------

    def sort(self, key_or_list: Any, direction: int = 1) -> "Cursor":
        """Sort by a field name or list of ``(field, direction)`` pairs."""
        if isinstance(key_or_list, str):
            spec = [(key_or_list, direction)]
        else:
            spec = [(f, d) for f, d in key_or_list]
        for field, d in spec:
            if d not in (1, -1):
                raise DocstoreError("sort direction must be 1 or -1")
            if not isinstance(field, str):
                raise DocstoreError("sort field must be a string")
        self._sort_spec = spec
        return self

    def skip(self, n: int) -> "Cursor":
        if n < 0:
            raise DocstoreError("skip must be non-negative")
        self._skip = n
        return self

    def limit(self, n: int) -> "Cursor":
        if n < 0:
            raise DocstoreError("limit must be non-negative")
        self._limit = n or None
        return self

    def batch_size(self, n: int) -> "Cursor":
        self._batch_size = n
        return self

    def hint(self, index_name: str) -> "Cursor":
        """Bypass the query planner and force ``index_name``.

        ``"$natural"`` forces a collection scan.  Unknown index names raise
        :class:`~repro.errors.DocstoreError` when the cursor executes.
        """
        if not self._planned:
            raise DocstoreError("hint() requires a collection-backed cursor")
        if not isinstance(index_name, str) or not index_name:
            raise DocstoreError("hint must be an index name string")
        self._hint = index_name
        return self

    # -- execution ----------------------------------------------------------

    def _execute(self) -> List[dict]:
        if self._planned:
            docs, already_sorted = self._source(
                self._sort_spec or None, self._skip, self._limit, self._hint
            )
            docs = list(docs)
        else:
            docs = list(self._source())
            already_sorted = False
        if self._sort_spec and not already_sorted:
            for field, direction in reversed(self._sort_spec):
                docs.sort(
                    key=lambda d, _f=field: ordering_key(get_path(d, _f)),
                    reverse=direction == -1,
                )
        if self._skip:
            docs = docs[self._skip:]
        if self._limit is not None:
            docs = docs[: self._limit]
        if self._projection:
            docs = [apply_projection(d, self._projection) for d in docs]
        return docs

    def __iter__(self) -> Iterator[dict]:
        return iter(self._execute())

    def __getitem__(self, index: int) -> dict:
        docs = self._execute()
        return docs[index]

    def count(self) -> int:
        """Number of documents the cursor would return (honors skip/limit)."""
        return len(self._execute())

    def to_list(self) -> List[dict]:
        """Materialize the full result list."""
        return self._execute()

    def first(self) -> Optional[dict]:
        """First document or None."""
        docs = self.limit(1)._execute() if self._limit is None else self._execute()
        return docs[0] if docs else None

    def distinct(self, field: str) -> List[Any]:
        """Distinct values of ``field`` across the result set."""
        seen: List[Any] = []
        for doc in self._execute():
            value = get_path(doc, field)
            if value is MISSING:
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                if not any(_eq(v, s) for s in seen):
                    seen.append(v)
        return seen


def _eq(a: Any, b: Any) -> bool:
    from .matching import _values_equal

    return _values_equal(a, b)
