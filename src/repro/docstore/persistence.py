"""Durability: JSON snapshots plus an append-only journal.

MongoDB persists collections to disk and journals writes; the Materials
Project additionally needs backups/replication of the core database
(§IV-C1).  We reproduce the same recovery model at laptop scale:

* ``snapshot()`` writes every collection to ``<dir>/<db>/<coll>.jsonl``
  (one extended-JSON document per line) plus a manifest, then truncates
  the journal.
* every insert/update/delete is appended to ``<dir>/journal.jsonl``.
* on startup, ``recover()`` loads the latest snapshot and replays the
  journal on top, so a crash between snapshots loses nothing that was
  acknowledged.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict

from ..errors import DocstoreError
from .documents import document_from_json, document_to_json

__all__ = ["PersistenceManager"]

_MANIFEST = "manifest.json"
_JOURNAL = "journal.jsonl"


class PersistenceManager:
    """Binds a :class:`~repro.docstore.database.DocumentStore` to a directory."""

    def __init__(self, store: Any, directory: str):
        self.store = store
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._journal_path = os.path.join(directory, _JOURNAL)
        self._journal_lock = threading.Lock()
        self._journal_fh = None
        self._recovering = False

    # -- journalling --------------------------------------------------------

    def watch_database(self, db: Any) -> None:
        """Attach journal listeners to every (current and future) collection."""
        original_get = db.get_collection

        def wrapped_get(name: str, create: bool = True):
            coll = original_get(name, create)
            if not getattr(coll, "_journaled", False):
                coll._journaled = True
                coll.add_change_listener(
                    lambda op, payload, _db=db.name: self._journal_write(
                        _db, op, payload
                    )
                )
            return coll

        db.get_collection = wrapped_get  # type: ignore[method-assign]

    def _journal_write(self, db_name: str, op: str, payload: dict) -> None:
        if self._recovering:
            return
        record = {"db": db_name, "op": op, "payload": payload}
        line = document_to_json(record)
        with self._journal_lock:
            if self._journal_fh is None:
                self._journal_fh = open(self._journal_path, "a", encoding="utf-8")
            self._journal_fh.write(line + "\n")
            self._journal_fh.flush()

    # -- snapshot -----------------------------------------------------------

    def snapshot(self) -> None:
        """Write all databases to disk and truncate the journal."""
        manifest: Dict[str, Any] = {"databases": {}}
        for db_name in self.store.list_database_names():
            db = self.store.get_database(db_name)
            db_dir = os.path.join(self.directory, db_name)
            os.makedirs(db_dir, exist_ok=True)
            coll_entries = {}
            for coll_name in db.list_collection_names():
                coll = db.get_collection(coll_name)
                path = os.path.join(db_dir, f"{coll_name}.jsonl")
                tmp = path + ".tmp"
                docs = coll.all_documents()
                with open(tmp, "w", encoding="utf-8") as fh:
                    for doc in docs:
                        fh.write(document_to_json(doc) + "\n")
                os.replace(tmp, path)
                coll_entries[coll_name] = {
                    "count": len(docs),
                    "indexes": coll.index_information(),
                }
            manifest["databases"][db_name] = coll_entries
        tmp_manifest = os.path.join(self.directory, _MANIFEST + ".tmp")
        with open(tmp_manifest, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2)
        os.replace(tmp_manifest, os.path.join(self.directory, _MANIFEST))
        with self._journal_lock:
            if self._journal_fh is not None:
                self._journal_fh.close()
                self._journal_fh = None
            open(self._journal_path, "w").close()

    # -- recovery -----------------------------------------------------------

    def recover(self) -> None:
        """Load the latest snapshot, then replay the journal on top."""
        manifest_path = os.path.join(self.directory, _MANIFEST)
        self._recovering = True
        try:
            if os.path.exists(manifest_path):
                with open(manifest_path, encoding="utf-8") as fh:
                    manifest = json.load(fh)
                for db_name, colls in manifest.get("databases", {}).items():
                    db = self.store.get_database(db_name)
                    self.watch_database(db)
                    for coll_name, meta in colls.items():
                        coll = db.get_collection(coll_name)
                        path = os.path.join(
                            self.directory, db_name, f"{coll_name}.jsonl"
                        )
                        if os.path.exists(path):
                            with open(path, encoding="utf-8") as fh:
                                for line in fh:
                                    line = line.strip()
                                    if line:
                                        coll._insert(
                                            document_from_json(line), _notify=False
                                        )
                        for ix_name, ix in meta.get("indexes", {}).items():
                            if ix_name not in coll.index_information():
                                coll.create_index(
                                    ix["field"], unique=ix["unique"], name=ix_name
                                )
            if os.path.exists(self._journal_path):
                self._replay_journal()
        finally:
            self._recovering = False

    def _replay_journal(self) -> None:
        with open(self._journal_path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = document_from_json(line)
                except (ValueError, DocstoreError):
                    # Torn final write after a crash: stop replay there.
                    break
                self._apply_journal_record(record)

    def _apply_journal_record(self, record: dict) -> None:
        db = self.store.get_database(record["db"])
        op = record["op"]
        payload = record["payload"]
        coll = db.get_collection(payload["ns"])
        if op == "insert":
            doc = payload["doc"]
            existing = coll.find_one({"_id": doc["_id"]})
            if existing is None:
                coll._insert(doc, _notify=False)
        elif op == "update":
            coll.replace_one({"_id": payload["_id"]}, payload["doc"], upsert=True)
        elif op == "delete":
            coll.delete_one({"_id": payload["_id"]})
        elif op == "drop":
            coll.drop()

    def close(self) -> None:
        with self._journal_lock:
            if self._journal_fh is not None:
                self._journal_fh.close()
                self._journal_fh = None
