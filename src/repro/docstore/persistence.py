"""Durability: JSON snapshots plus a group-committed write-ahead journal.

MongoDB persists collections to disk and journals writes; the Materials
Project additionally needs backups/replication of the core database
(§IV-C1).  We reproduce the same recovery model at laptop scale, with the
write path engineered for the concurrent regime the deployment actually
ran in (FireWorks queue + builders + API hitting one server):

* every insert/update/delete appends a sequence-numbered record to
  ``<dir>/journal.jsonl`` through a **group-commit** writer: concurrent
  writers hand their records to a single committer thread, which writes
  each accumulated batch with one syscall and (policy permitting) one
  ``fsync`` — N writers pay one disk flush, not N;
* the ``fsync`` policy is configurable: ``"always"`` (acknowledge only
  after the batch is fsynced — machine-crash safe), ``"interval"``
  (fsync on a timer, default 50 ms — bounded loss window), ``"never"``
  (leave flushing to the OS).  Under every policy an acknowledged write
  has at least reached the OS page cache, so a *process* crash loses
  nothing that was acknowledged;
* ``snapshot()`` writes every collection to ``<dir>/<db>/<coll>.jsonl``
  plus a manifest carrying ``last_seq``, then **compacts** the journal:
  records with ``seq <= last_seq`` (the replayed prefix) are dropped and
  any tail written during the snapshot is kept.  Replay skips records at
  or below the manifest's ``last_seq``, so a crash mid-snapshot cannot
  double-apply;
* on startup ``recover()`` loads the latest snapshot and replays the
  journal on top.  A torn tail — truncated JSON, garbage bytes — stops
  replay at the first corrupt record, logs a warning, and truncates the
  journal there so the next recovery sees a clean file.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..errors import DocstoreError
from ..obs import get_logger
from .documents import document_from_json, document_to_json

__all__ = ["PersistenceManager", "JournalWriter", "FSYNC_POLICIES"]

_MANIFEST = "manifest.json"
_JOURNAL = "journal.jsonl"

FSYNC_POLICIES = ("always", "interval", "never")

logger = get_logger("repro.docstore.persistence")


class JournalWriter:
    """Group-commit append path for the write-ahead journal.

    Writers call :meth:`append`; a dedicated committer thread drains the
    pending queue in batches.  Every acknowledged record has been written
    (handed to the OS); with the ``"always"`` policy it has also been
    fsynced before ``append`` returns, the fsync cost amortized across
    every writer in the batch.
    """

    def __init__(self, path: str, fsync: str = "interval",
                 fsync_interval_s: float = 0.05):
        if fsync not in FSYNC_POLICIES:
            raise DocstoreError(
                f"fsync policy must be one of {FSYNC_POLICIES}: {fsync!r}"
            )
        self.path = path
        self.fsync_policy = fsync
        self.fsync_interval_s = fsync_interval_s
        self._cond = threading.Condition(threading.Lock())
        self._pending: List[Tuple[int, str]] = []
        self._next_seq = 1
        self._written_seq = 0
        self._durable_seq = 0
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        # File handle and on-disk layout, guarded by _io_lock so compaction
        # and batch writes never interleave.
        self._io_lock = threading.Lock()
        self._fh = None
        self._last_fsync = time.monotonic()
        self._stats = {"records": 0, "batches": 0, "fsyncs": 0,
                       "max_batch": 0}
        # Committer liveness: monotonic time of the last loop pass.  The
        # flight watchdog reads its age — a wedged fsync shows up as
        # pending records under a stale heartbeat.
        self._heartbeat: Optional[float] = None

    # -- writer side ------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> int:
        """Assign a sequence number, enqueue, and wait for acknowledgement.

        Returns the record's ``seq``.  Blocks until the record has been
        written (every policy) and fsynced (``"always"`` only).
        """
        with self._cond:
            if self._closed:
                raise DocstoreError("journal writer is closed")
            seq = self._next_seq
            self._next_seq += 1
            record = dict(record)
            record["seq"] = seq
            self._pending.append((seq, document_to_json(record)))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="journal-committer", daemon=True
                )
                self._thread.start()
            self._cond.notify_all()
            if self.fsync_policy == "always":
                while self._durable_seq < seq and not self._closed:
                    self._cond.wait()
            else:
                while self._written_seq < seq and not self._closed:
                    self._cond.wait()
        return seq

    def set_next_seq(self, next_seq: int) -> None:
        """Resume sequence numbering after recovery."""
        with self._cond:
            self._next_seq = max(self._next_seq, next_seq)
            self._written_seq = self._next_seq - 1
            self._durable_seq = self._next_seq - 1

    @property
    def last_seq(self) -> int:
        """Highest sequence number assigned so far."""
        with self._cond:
            return self._next_seq - 1

    # -- committer --------------------------------------------------------

    def _run(self) -> None:
        # Only the "interval" policy needs timed wakeups (so a quiet store
        # still converges to durable); the others sleep until notified.
        idle_timeout = (self.fsync_interval_s
                        if self.fsync_policy == "interval" else None)
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait(timeout=idle_timeout)
                    if not self._pending:
                        break
                batch = self._pending
                self._pending = []
                closed = self._closed
                self._heartbeat = time.monotonic()
            if batch:
                self._commit(batch)
            elif self.fsync_policy == "interval":
                self._maybe_interval_fsync()
            if closed and not batch:
                return

    def _commit(self, batch: List[Tuple[int, str]]) -> None:
        last = batch[-1][0]
        fsynced = False
        with self._io_lock:
            fh = self._open_locked()
            fh.write("".join(line + "\n" for _, line in batch))
            fh.flush()
            if self.fsync_policy == "always":
                os.fsync(fh.fileno())
                fsynced = True
            elif self.fsync_policy == "interval":
                now = time.monotonic()
                if now - self._last_fsync >= self.fsync_interval_s:
                    os.fsync(fh.fileno())
                    self._last_fsync = now
                    fsynced = True
        with self._cond:
            self._written_seq = max(self._written_seq, last)
            if fsynced:
                self._durable_seq = max(self._durable_seq, last)
            self._stats["records"] += len(batch)
            self._stats["batches"] += 1
            self._stats["max_batch"] = max(self._stats["max_batch"], len(batch))
            if fsynced:
                self._stats["fsyncs"] += 1
            self._heartbeat = time.monotonic()
            self._cond.notify_all()

    def _maybe_interval_fsync(self) -> None:
        with self._io_lock:
            if self._fh is None:
                return
            now = time.monotonic()
            if now - self._last_fsync < self.fsync_interval_s:
                return
            os.fsync(self._fh.fileno())
            self._last_fsync = now
        with self._cond:
            self._durable_seq = self._written_seq
            self._stats["fsyncs"] += 1
            self._cond.notify_all()

    def _open_locked(self):
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    # -- maintenance ------------------------------------------------------

    def flush(self) -> None:
        """Block until every appended record is written and fsynced."""
        with self._cond:
            target = self._next_seq - 1
            self._cond.notify_all()
            while self._written_seq < target:
                self._cond.wait()
        with self._io_lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._last_fsync = time.monotonic()
        with self._cond:
            self._durable_seq = max(self._durable_seq, target)
            self._cond.notify_all()

    def compact(self, cut_seq: int) -> int:
        """Drop journal records with ``seq <= cut_seq``; keep the tail.

        The snapshot that called us holds the data up to ``cut_seq``; any
        records appended *during* the snapshot survive compaction and are
        replayed on recovery (replay is idempotent, and the manifest's
        ``last_seq`` guards the prefix).  Returns the number of retained
        records.
        """
        self.flush()
        with self._io_lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            kept: List[str] = []
            if os.path.exists(self.path):
                with open(self.path, encoding="utf-8") as fh:
                    for line in fh:
                        stripped = line.strip()
                        if not stripped:
                            continue
                        try:
                            seq = json.loads(stripped).get("seq", 0)
                        except ValueError:
                            continue  # torn tail: compacted away
                        if isinstance(seq, int) and seq > cut_seq:
                            kept.append(stripped)
            tmp = self.path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                for line in kept:
                    fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._last_fsync = time.monotonic()
        return len(kept)

    def stats(self) -> dict:
        with self._cond:
            out = dict(self._stats)
            out.update({
                "policy": self.fsync_policy,
                "last_seq": self._next_seq - 1,
                "written_seq": self._written_seq,
                "durable_seq": self._durable_seq,
                "pending": len(self._pending),
                "heartbeat_age_s": (
                    time.monotonic() - self._heartbeat
                    if self._heartbeat is not None else None),
            })
        return out

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
        # Drain anything the committer did not get to.
        with self._cond:
            batch = self._pending
            self._pending = []
        with self._io_lock:
            if batch:
                fh = self._open_locked()
                fh.write("".join(line + "\n" for _, line in batch))
                fh.flush()
            if self._fh is not None:
                if self.fsync_policy != "never":
                    os.fsync(self._fh.fileno())
                self._fh.close()
                self._fh = None


class PersistenceManager:
    """Binds a :class:`~repro.docstore.database.DocumentStore` to a directory."""

    def __init__(self, store: Any, directory: str, fsync: str = "interval",
                 fsync_interval_s: float = 0.05):
        self.store = store
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._journal_path = os.path.join(directory, _JOURNAL)
        self._journal = JournalWriter(self._journal_path, fsync=fsync,
                                      fsync_interval_s=fsync_interval_s)
        self._snapshot_lock = threading.Lock()
        self._recovering = False
        #: Filled by :meth:`recover`: replay accounting for introspection
        #: and tests (``replayed``, ``skipped``, ``truncated_at``).
        self.last_recovery: Optional[dict] = None

    # -- journalling --------------------------------------------------------

    def watch_database(self, db: Any) -> None:
        """Attach journal listeners to every (current and future) collection."""
        original_get = db.get_collection

        def wrapped_get(name: str, create: bool = True):
            coll = original_get(name, create)
            if not getattr(coll, "_journaled", False):
                coll._journaled = True
                coll.add_change_listener(
                    lambda op, payload, _db=db.name: self._journal_write(
                        _db, op, payload
                    )
                )
            return coll

        db.get_collection = wrapped_get  # type: ignore[method-assign]

    def _journal_write(self, db_name: str, op: str, payload: dict) -> None:
        if self._recovering:
            return
        self._journal.append({"db": db_name, "op": op, "payload": payload})

    def journal_stats(self) -> dict:
        """Group-commit accounting (batches, fsyncs, durable watermark)."""
        return self._journal.stats()

    # -- snapshot -----------------------------------------------------------

    def snapshot(self) -> None:
        """Write all databases to disk, then compact the journal.

        The journal prefix up to the sequence number captured at the start
        of the snapshot is dropped; records appended while the snapshot ran
        are retained and replayed (idempotently) on recovery.
        """
        with self._snapshot_lock:
            cut_seq = self._journal.last_seq
            manifest: Dict[str, Any] = {"databases": {}, "last_seq": cut_seq}
            for db_name in self.store.list_database_names():
                db = self.store.get_database(db_name)
                db_dir = os.path.join(self.directory, db_name)
                os.makedirs(db_dir, exist_ok=True)
                coll_entries = {}
                for coll_name in db.list_collection_names():
                    coll = db.get_collection(coll_name)
                    path = os.path.join(db_dir, f"{coll_name}.jsonl")
                    tmp = path + ".tmp"
                    docs = coll.all_documents()
                    with open(tmp, "w", encoding="utf-8") as fh:
                        for doc in docs:
                            fh.write(document_to_json(doc) + "\n")
                        fh.flush()
                        os.fsync(fh.fileno())
                    os.replace(tmp, path)
                    coll_entries[coll_name] = {
                        "count": len(docs),
                        "indexes": coll.index_information(),
                    }
                manifest["databases"][db_name] = coll_entries
            tmp_manifest = os.path.join(self.directory, _MANIFEST + ".tmp")
            with open(tmp_manifest, "w", encoding="utf-8") as fh:
                json.dump(manifest, fh, indent=2)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_manifest, os.path.join(self.directory, _MANIFEST))
            self._journal.compact(cut_seq)

    # -- recovery -----------------------------------------------------------

    def recover(self) -> None:
        """Load the latest snapshot, then replay the journal on top."""
        manifest_path = os.path.join(self.directory, _MANIFEST)
        snapshot_seq = 0
        self._recovering = True
        try:
            if os.path.exists(manifest_path):
                with open(manifest_path, encoding="utf-8") as fh:
                    manifest = json.load(fh)
                snapshot_seq = int(manifest.get("last_seq", 0))
                for db_name, colls in manifest.get("databases", {}).items():
                    db = self.store.get_database(db_name)
                    self.watch_database(db)
                    for coll_name, meta in colls.items():
                        coll = db.get_collection(coll_name)
                        path = os.path.join(
                            self.directory, db_name, f"{coll_name}.jsonl"
                        )
                        if os.path.exists(path):
                            with open(path, encoding="utf-8") as fh:
                                for line in fh:
                                    line = line.strip()
                                    if line:
                                        coll._insert(
                                            document_from_json(line), _notify=False
                                        )
                        for ix_name, ix in meta.get("indexes", {}).items():
                            if ix_name not in coll.index_information():
                                # Compound manifests carry the full "key"
                                # list; pre-compound snapshots only "field".
                                keys = ix.get("key")
                                if keys is not None:
                                    keys = [(f, d) for f, d in keys]
                                else:
                                    keys = ix["field"]
                                coll.create_index(
                                    keys, unique=ix["unique"], name=ix_name,
                                    expire_after_seconds=ix.get(
                                        "expireAfterSeconds"
                                    ),
                                )
            max_seq = snapshot_seq
            if os.path.exists(self._journal_path):
                max_seq = max(max_seq, self._replay_journal(snapshot_seq))
            self._journal.set_next_seq(max_seq + 1)
        finally:
            self._recovering = False

    def _replay_journal(self, snapshot_seq: int) -> int:
        """Apply journal records after ``snapshot_seq``; heal a torn tail.

        Replays the valid prefix of the journal.  At the first corrupt
        record (torn write, garbage bytes) replay stops, a warning is
        logged, and the file is truncated at the corruption boundary so
        subsequent recoveries see only intact records.  Returns the highest
        sequence number seen.
        """
        replayed = skipped = 0
        truncate_at: Optional[int] = None
        reason = None
        max_seq = snapshot_seq
        offset = 0
        with open(self._journal_path, "rb") as fh:
            for raw in fh:
                line_start = offset
                offset += len(raw)
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    # Blank (e.g. trailing) lines are not data loss; skip.
                    continue
                try:
                    record = document_from_json(line)
                except (ValueError, DocstoreError) as exc:
                    truncate_at, reason = line_start, f"unparseable record: {exc}"
                    break
                if not (isinstance(record, dict) and "op" in record
                        and "db" in record
                        and isinstance(record.get("payload"), dict)):
                    truncate_at = line_start
                    reason = "malformed record (missing db/op/payload)"
                    break
                seq = record.get("seq")
                if isinstance(seq, int):
                    if seq <= snapshot_seq:
                        # Prefix already captured by the snapshot (e.g. a
                        # crash between manifest write and compaction).
                        skipped += 1
                        continue
                    max_seq = max(max_seq, seq)
                self._apply_journal_record(record)
                replayed += 1
        if truncate_at is not None:
            logger.warning(
                "journal %s: torn tail at byte %d (%s); replayed %d records, "
                "truncating the corrupt suffix",
                self._journal_path, truncate_at, reason, replayed,
            )
            with open(self._journal_path, "r+b") as fh:
                fh.truncate(truncate_at)
        self.last_recovery = {
            "replayed": replayed,
            "skipped": skipped,
            "truncated_at": truncate_at,
            "reason": reason,
        }
        return max_seq

    def _apply_journal_record(self, record: dict) -> None:
        db = self.store.get_database(record["db"])
        op = record["op"]
        payload = record["payload"]
        coll = db.get_collection(payload["ns"])
        if op == "insert":
            doc = payload["doc"]
            existing = coll.find_one({"_id": doc["_id"]})
            if existing is None:
                coll._insert(doc, _notify=False)
        elif op == "update":
            coll.replace_one({"_id": payload["_id"]}, payload["doc"], upsert=True)
        elif op == "delete":
            coll.delete_one({"_id": payload["_id"]})
        elif op == "drop":
            coll.drop()

    def close(self) -> None:
        self._journal.close()
