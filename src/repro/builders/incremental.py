"""Incremental building driven by the tasks change stream.

The paper's pipeline reruns builders continuously; rebuilding every
material on each new calculation does not scale.  This builder tails the
``tasks`` change stream and refreshes only the touched ``mps_id`` groups.
If the stream overflows (the builder fell too far behind), it falls back
to a full batch rebuild — the invariant is that incremental state always
equals a from-scratch build.
"""

from __future__ import annotations

from typing import Set

from ..errors import DocstoreError
from ..obs import get_registry, span
from .core import MaterialsBuilder

__all__ = ["IncrementalMaterialsBuilder"]


class IncrementalMaterialsBuilder:
    """Applies task-collection changes to the materials collection."""

    def __init__(self, db):
        self.db = db
        self.builder = MaterialsBuilder(db)
        self.stream = db["tasks"].watch()
        self.full_rebuilds = 0

    def process_pending(self) -> dict:
        """Drain buffered task events and refresh the affected materials."""
        with span("builder.incremental", db=self.db.name):
            try:
                events = self.stream.drain()
            except DocstoreError:
                # Overflow: the stream lost history, resync from scratch.
                self.full_rebuilds += 1
                result = self.builder.run()
                get_registry().counter(
                    "repro_builder_full_rebuilds_total",
                    "incremental-builder resyncs",
                ).inc(1)
                return {"mode": "full-rebuild", **result}

            touched: Set[str] = set()
            saw_delete = False
            for event in events:
                if event.operation == "delete":
                    # Delete events only carry the _id; sweep afterwards.
                    saw_delete = True
                    continue
                mps_id = (event.document or {}).get("mps_id")
                if mps_id:
                    touched.add(mps_id)
            refreshed = 0
            for mps_id in sorted(touched):
                if self.builder.refresh(mps_id):
                    refreshed += 1
            retired = self.builder.retire_orphans() if saw_delete else 0
            return {
                "mode": "incremental",
                "materials_refreshed": refreshed,
                "materials_retired": retired,
            }
