"""Derived-property builders: phase diagrams, batteries, XRD, bands, symmetry.

Each builder reads the curated ``materials`` collection and projects one
derived collection, exactly the "materials → derived collections" stage of
the paper's pipeline.  All of them are idempotent — rerunning against an
unchanged materials collection builds nothing new — and each run is traced
as a ``builder.<name>`` span.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..dft.energy import reference_energy_per_atom
from ..errors import MatgenError
from ..matgen.bandstructure import compute_band_structure
from ..matgen.battery import ConversionElectrode, InsertionElectrode
from ..matgen.composition import Composition
from ..matgen.elements import Element
from ..matgen.phasediagram import PDEntry, PhaseDiagram
from ..matgen.structure import Structure
from ..matgen.symmetry import SymmetryFinder
from ..matgen.xrd import XRDCalculator
from ..obs import current_span, get_registry, span

__all__ = [
    "PhaseDiagramBuilder",
    "BatteryBuilder",
    "XRDBuilder",
    "BandStructureBuilder",
    "SymmetryBuilder",
]


def _usable_materials(db) -> List[dict]:
    """Materials with enough data to enter thermodynamic constructions."""
    return [
        m for m in db["materials"].find({})
        if m.get("formula") and m.get("energy") is not None
        and m.get("elements")
    ]


def _count_built(builder: str, n: int) -> None:
    get_registry().counter(
        "repro_builder_documents_total", "documents built per builder"
    ).inc(n, builder=builder)


def _stamp(builder: str, source_material_ids: List[str]) -> dict:
    """The ``provenance`` subdocument every derived builder writes."""
    return {
        "builder": builder,
        "source_material_ids": sorted(source_material_ids),
        "trace_id": getattr(current_span(), "trace_id", None),
        "built_at": time.time(),
    }


class PhaseDiagramBuilder:
    """One hull per chemical system spanned by the materials collection.

    Every diagram gets elemental reference entries injected (the hull
    needs an endpoint per element), and each material is annotated with
    ``e_above_hull``/``is_stable`` from its own system's diagram.
    """

    def __init__(self, db):
        self.db = db

    def run(self) -> dict:
        with span("builder.phase_diagrams", db=self.db.name):
            materials = _usable_materials(self.db)
            systems: Dict[frozenset, None] = {}
            for m in materials:
                systems.setdefault(frozenset(m["elements"]))
            built = 0
            for elements in sorted(systems, key=lambda s: sorted(s)):
                if self._build_system(elements, materials):
                    built += 1
            _count_built("phase_diagrams", built)
            return {"systems_built": built}

    def _build_system(self, elements: frozenset, materials: List[dict]) -> bool:
        members = [
            m for m in materials if set(m["elements"]) <= elements
        ]
        entries = [
            PDEntry(m["formula"], m["energy"], entry_id=m["material_id"])
            for m in members
        ]
        entries += [
            PDEntry(symbol, reference_energy_per_atom(symbol),
                    entry_id=f"ref-{symbol}")
            for symbol in sorted(elements)
        ]
        try:
            pd = PhaseDiagram(entries)
        except MatgenError:
            return False
        doc = pd.summary()
        doc["n_materials"] = len(members)
        doc["built_at"] = time.time()
        doc["provenance"] = _stamp(
            "phase_diagrams", [m["material_id"] for m in members]
        )
        self.db["phase_diagrams"].update_one(
            {"chemical_system": doc["chemical_system"]},
            {"$set": doc},
            upsert=True,
        )
        # Hull annotations, from each material's own chemical system.
        for material, entry in zip(members, entries):
            if frozenset(material["elements"]) != elements:
                continue
            self.db["materials"].update_one(
                {"material_id": material["material_id"]},
                {"$set": {
                    "e_above_hull": pd.get_e_above_hull(entry),
                    "is_stable": pd.is_stable(entry),
                }},
            )
        return True


class BatteryBuilder:
    """Electrode screening — the computation behind the paper's Figure 1."""

    def __init__(self, db, working_ion: str):
        self.db = db
        self.working_ion = working_ion
        self.ion = Element(working_ion)

    def _framework_of(self, material: dict) -> Tuple[str, bool]:
        """(ion-free framework reduced formula, contains-ion flag)."""
        composition = Composition(material["formula"])
        amounts = {
            element: amount for element, amount in composition.items()
            if element != self.ion
        }
        if not amounts:
            return "", False
        frame = Composition(amounts)
        return frame.reduced_formula, self.ion in composition

    def run_intercalation(self) -> dict:
        with span("builder.batteries.intercalation", ion=self.working_ion):
            groups: Dict[str, List[dict]] = {}
            ionic: Dict[str, bool] = {}
            for material in _usable_materials(self.db):
                frame, has_ion = self._framework_of(material)
                if not frame:
                    continue
                groups.setdefault(frame, []).append(material)
                ionic[frame] = ionic.get(frame, False) or has_ion
            built = 0
            for frame in sorted(groups):
                members = groups[frame]
                if len(members) < 2 or not ionic[frame]:
                    continue
                entries = [
                    PDEntry(m["formula"], m["energy"],
                            entry_id=m["material_id"])
                    for m in members
                ]
                try:
                    electrode = InsertionElectrode(
                        entries, self.working_ion,
                        reference_energy_per_atom(self.working_ion),
                    )
                except MatgenError:
                    continue
                doc = electrode.get_summary_dict()
                doc["material_ids"] = sorted(m["material_id"] for m in members)
                doc["built_at"] = time.time()
                doc["provenance"] = _stamp(
                    "batteries", [m["material_id"] for m in members]
                )
                self.db["batteries"].update_one(
                    {"battery_type": "intercalation",
                     "working_ion": self.working_ion,
                     "framework": doc["framework"]},
                    {"$set": doc},
                    upsert=True,
                )
                built += 1
            _count_built("batteries", built)
            return {"intercalation_built": built}

    def run_conversion(self, max_hosts: int = 10) -> dict:
        with span("builder.batteries.conversion", ion=self.working_ion):
            materials = _usable_materials(self.db)
            hosts = [
                m for m in materials
                if self.working_ion not in m["elements"]
            ]
            hosts.sort(key=lambda m: m["material_id"])
            built = 0
            for host in hosts[:max_hosts]:
                if self._build_conversion(host, materials):
                    built += 1
            _count_built("batteries", built)
            return {"conversion_built": built}

    def _build_conversion(self, host: dict, materials: List[dict]) -> bool:
        elements = set(host["elements"]) | {self.working_ion}
        entries = [
            PDEntry(m["formula"], m["energy"], entry_id=m["material_id"])
            for m in materials if set(m["elements"]) <= elements
        ]
        entries += [
            PDEntry(symbol, reference_energy_per_atom(symbol),
                    entry_id=f"ref-{symbol}")
            for symbol in sorted(elements)
        ]
        try:
            pd = PhaseDiagram(entries)
            electrode = ConversionElectrode(
                PDEntry(host["formula"], host["energy"],
                        entry_id=host["material_id"]),
                pd,
                self.working_ion,
            )
        except MatgenError:
            return False
        doc = electrode.get_summary_dict()
        if doc.get("capacity_grav", 0) <= 0:
            return False
        doc["material_id"] = host["material_id"]
        doc["built_at"] = time.time()
        doc["provenance"] = _stamp("batteries", [host["material_id"]])
        self.db["batteries"].update_one(
            {"battery_type": "conversion",
             "working_ion": self.working_ion,
             "host": doc["host"],
             "material_id": host["material_id"]},
            {"$set": doc},
            upsert=True,
        )
        return True


class _PerMaterialBuilder:
    """Shared skeleton: one derived document per material, idempotent."""

    #: Derived collection name — set by subclasses.
    target = ""
    span_name = ""
    counter_key = ""

    def __init__(self, db):
        self.db = db

    def run(self) -> dict:
        with span(self.span_name, db=self.db.name):
            target = self.db[self.target]
            built = 0
            for material in self.db["materials"].find({}):
                material_id = material.get("material_id")
                if material_id is None or not material.get("structure"):
                    continue
                if target.find_one({"material_id": material_id}) is not None:
                    continue
                structure = Structure.from_dict(material["structure"])
                doc = self._build_one(material, structure)
                if doc is None:
                    continue
                doc.update({
                    "material_id": material_id,
                    "reduced_formula": material.get("reduced_formula"),
                    "built_at": time.time(),
                    "provenance": _stamp(self.target, [material_id]),
                })
                target.insert_one(doc)
                built += 1
            _count_built(self.target, built)
            return {self.counter_key: built}

    def _build_one(self, material: dict, structure: Structure):
        raise NotImplementedError


class XRDBuilder(_PerMaterialBuilder):
    """Computed powder diffraction patterns (Cu Kα) per material."""

    target = "xrd"
    span_name = "builder.xrd"
    counter_key = "xrd_built"

    def _build_one(self, material: dict, structure: Structure):
        pattern = XRDCalculator().get_pattern(structure)
        doc = pattern.as_dict()
        doc["n_peaks"] = len(doc["peaks"])
        return doc


class BandStructureBuilder(_PerMaterialBuilder):
    """Band structures along the standard k-path per material."""

    target = "bandstructures"
    span_name = "builder.bandstructures"
    counter_key = "bandstructures_built"

    def _build_one(self, material: dict, structure: Structure):
        bs = compute_band_structure(structure)
        return {
            "band_gap": bs.band_gap,
            "is_metal": bs.is_metal,
            "n_bands": bs.n_bands,
            "bands": bs.as_dict(),
        }


class SymmetryBuilder(_PerMaterialBuilder):
    """Space-group analysis; also annotates the material itself."""

    target = "symmetry"
    span_name = "builder.symmetry"
    counter_key = "symmetry_built"

    def _build_one(self, material: dict, structure: Structure):
        summary = SymmetryFinder(structure).summary()
        self.db["materials"].update_one(
            {"material_id": material["material_id"]},
            {"$set": {
                "lattice_system": summary["lattice_system"],
                "n_symmetry_ops": summary["n_operations"],
            }},
        )
        return dict(summary)
