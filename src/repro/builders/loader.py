"""The task loader: run directories on disk → task documents.

Mirrors the paper's ingestion path for calculations that did not come
through the workflow engine — a crawler walks a tree of VASP-style run
directories, reduces each to a small summary document (the bulky raw
files optionally land in the content-addressed :class:`FileStore`), and
records FIZZLED runs with their failure signature so nothing is lost.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from ..dft.io import parse_run_directory
from ..errors import DFTError
from ..matgen.structure import Structure
from ..obs import get_registry, span
from .core import ensure_index

__all__ = ["TaskLoader", "ARCHIVE_FILES"]

#: Raw outputs worth keeping verbatim (everything else is rederivable).
ARCHIVE_FILES = ("OUTCAR", "OSZICAR", "EIGENVAL")

#: A directory is a run directory if it contains one of these.
_RUN_MARKERS = ("run_summary.json", "OUTCAR")


class TaskLoader:
    """Loads run directories into the ``tasks`` collection."""

    def __init__(self, db, file_store=None, tasks_collection: str = "tasks"):
        self.db = db
        self.tasks = db[tasks_collection]
        self.file_store = file_store
        ensure_index(self.tasks, "run_dir")

    def load_run_directory(self, run_dir: str,
                           mps_id: Optional[str] = None) -> dict:
        """Parse one run directory and insert its task document.

        Raises :class:`DFTError` when the directory cannot be parsed at
        all; a parseable FAILED run becomes a FIZZLED task instead.
        """
        doc = parse_run_directory(run_dir)
        status = doc.get("status", "UNKNOWN")
        doc["state"] = "COMPLETED" if status == "COMPLETED" else "FIZZLED"
        if mps_id is not None:
            doc["mps_id"] = mps_id
        if doc.get("structure"):
            structure = Structure.from_dict(doc["structure"])
            doc.setdefault("formula", structure.reduced_formula)
            doc.setdefault("elements", structure.elements)
        doc["loaded_at"] = time.time()
        if self.file_store is not None:
            doc["raw_files"] = self.file_store.archive_directory(
                run_dir, list(ARCHIVE_FILES)
            )
        self.tasks.insert_one(doc)
        get_registry().counter(
            "repro_loader_tasks_total", "tasks ingested from disk"
        ).inc(1, state=doc["state"])
        return doc

    def load_tree(self, root: str) -> Dict[str, int]:
        """Walk ``root`` and load every run directory not yet ingested."""
        with span("builder.loader", root=root):
            loaded = skipped = unparseable = 0
            for dirpath, _dirnames, filenames in sorted(os.walk(root)):
                if not any(marker in filenames for marker in _RUN_MARKERS):
                    continue
                if self.tasks.count_documents({"run_dir": dirpath}) > 0:
                    skipped += 1
                    continue
                try:
                    self.load_run_directory(dirpath)
                    loaded += 1
                except DFTError:
                    unparseable += 1
            return {
                "loaded": loaded,
                "skipped_existing": skipped,
                "unparseable": unparseable,
            }
