"""Verification & validation: the audits run before releasing a database.

The paper stresses catching "a calculation bug before releasing a
database"; this runner encodes that as a battery of rules over the live
collections — schema conformance, internal arithmetic, physical ranges,
referential integrity, regression against known compounds, and a
MapReduce consistency sweep.  ``run_all`` files a report document into
``vnv_reports`` so the audit history is itself queryable.
"""

from __future__ import annotations

import math
import time
from typing import Callable, List

from ..errors import MatgenError, ValidationError
from ..matgen.mps import validate_mps
from ..obs import get_registry, span

__all__ = ["Violation", "Rule", "VnVRunner"]

#: Physically plausible DFT ranges (eV); far outside means corruption.
FORMATION_ENERGY_RANGE = (-20.0, 10.0)
BAND_GAP_RANGE = (0.0, 25.0)

#: Max energy-per-atom disagreement between duplicate tasks of one MPS (eV).
ENERGY_SPREAD_TOLERANCE = 1.0

#: Reference values for compounds whose properties are beyond doubt.
KNOWN_COMPOUNDS = {
    "NaCl": {"min_band_gap": 0.5, "max_formation_epa": -0.2},
}


class Violation:
    """One failed check: which rule fired and why."""

    __slots__ = ("rule", "message")

    def __init__(self, rule: str, message: str):
        self.rule = rule
        self.message = message

    def as_dict(self) -> dict:
        return {"rule": self.rule, "message": self.message}

    def __repr__(self) -> str:
        return f"Violation({self.rule!r}, {self.message!r})"


class Rule:
    """A named audit: a callable from the database to violations."""

    __slots__ = ("name", "check")

    def __init__(self, name: str, check: Callable):
        self.name = name
        self.check = check

    def __call__(self, db) -> List[Violation]:
        return self.check(db)


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


# -- individual rules --------------------------------------------------------


def _rule_mps_schema(db) -> List[Violation]:
    violations = []
    for record in db["mps"].find({}):
        try:
            validate_mps(record)
        except MatgenError as exc:
            violations.append(Violation(
                "mps_schema", f"{record.get('mps_id')}: {exc}"
            ))
    return violations


def _rule_task_energy_arithmetic(db) -> List[Violation]:
    """energy, energy_per_atom, and the structure must agree."""
    violations = []
    for task in db["tasks"].find({"state": "COMPLETED"}):
        energy = task.get("energy")
        epa = task.get("energy_per_atom")
        structure = task.get("structure")
        if not (_finite(energy) and _finite(epa) and isinstance(structure, dict)):
            continue
        nsites = len(structure.get("sites") or [])
        if not nsites:
            continue
        expected = energy / nsites
        if abs(epa - expected) > 1e-4 * max(1.0, abs(expected)):
            violations.append(Violation(
                "task_energy_arithmetic",
                f"task {task.get('_id')}: energy_per_atom={epa} but "
                f"energy/nsites={expected:.6f}",
            ))
    return violations


def _rule_formation_energy_range(db) -> List[Violation]:
    lo, hi = FORMATION_ENERGY_RANGE
    violations = []
    for material in db["materials"].find({}):
        value = material.get("formation_energy_per_atom")
        if value is None:
            continue
        if not _finite(value) or not lo <= value <= hi:
            violations.append(Violation(
                "material_formation_energy_range",
                f"{material.get('material_id')}: "
                f"formation_energy_per_atom={value} outside [{lo}, {hi}]",
            ))
    return violations


def _rule_band_gap_range(db) -> List[Violation]:
    lo, hi = BAND_GAP_RANGE
    violations = []
    for material in db["materials"].find({}):
        value = material.get("band_gap")
        if value is None:
            continue
        if not _finite(value) or not lo <= value <= hi:
            violations.append(Violation(
                "material_band_gap_range",
                f"{material.get('material_id')}: band_gap={value} "
                f"outside [{lo}, {hi}]",
            ))
    return violations


# -- the runner --------------------------------------------------------------


class VnVRunner:
    """Runs every rule and files the report (paper's pre-release V&V)."""

    def __init__(self, db):
        self.db = db
        self.rules = [
            Rule("mps_schema", _rule_mps_schema),
            Rule("task_energy_arithmetic", _rule_task_energy_arithmetic),
            Rule("material_formation_energy_range",
                 _rule_formation_energy_range),
            Rule("material_band_gap_range", _rule_band_gap_range),
        ]

    def run_rule(self, rule: Rule) -> List[Violation]:
        with span(f"vnv.{rule.name}"):
            return rule(self.db)

    def run_referential_integrity(self) -> List[Violation]:
        """Every material's provenance must point at a live task."""
        with span("vnv.referential_integrity"):
            violations = []
            tasks = self.db["tasks"]
            for material in self.db["materials"].find({}):
                provenance = material.get("provenance")
                if not isinstance(provenance, dict):
                    continue
                task_id = provenance.get("task_id")
                if task_id is None:
                    continue
                if tasks.find_one({"_id": task_id}) is None:
                    violations.append(Violation(
                        "ref:material_task",
                        f"{material.get('material_id')}: provenance task "
                        f"{task_id} not found",
                    ))
            return violations

    def run_known_compounds(self) -> List[Violation]:
        """Regression check against compounds with well-known properties."""
        with span("vnv.known_compounds"):
            violations = []
            for formula, expected in KNOWN_COMPOUNDS.items():
                material = self.db["materials"].find_one(
                    {"reduced_formula": formula}
                )
                if material is None:
                    continue
                rule = f"known:{formula}"
                gap = material.get("band_gap")
                if _finite(gap) and gap < expected["min_band_gap"]:
                    violations.append(Violation(
                        rule,
                        f"band_gap={gap} below known minimum "
                        f"{expected['min_band_gap']}",
                    ))
                formation = material.get("formation_energy_per_atom")
                if _finite(formation) and (
                    formation > expected["max_formation_epa"]
                ):
                    violations.append(Violation(
                        rule,
                        f"formation_energy_per_atom={formation} above known "
                        f"maximum {expected['max_formation_epa']}",
                    ))
            return violations

    def run_mapreduce_rule(self) -> List[Violation]:
        """Duplicate tasks for one MPS must agree on the energy."""
        with span("vnv.energy_spread"):
            def mapper(doc):
                if (doc.get("state") == "COMPLETED" and doc.get("mps_id")
                        and _finite(doc.get("energy_per_atom"))):
                    yield doc["mps_id"], doc["energy_per_atom"]

            def reducer(key, values):
                return {"spread": max(values) - min(values), "n": len(values)}

            violations = []
            for row in self.db["tasks"].map_reduce(mapper, reducer):
                if not isinstance(row["value"], dict):
                    continue  # single task: Mongo passes it through unreduced
                spread = row["value"]["spread"]
                if spread > ENERGY_SPREAD_TOLERANCE:
                    violations.append(Violation(
                        "mr:energy_spread",
                        f"{row['_id']}: {row['value']['n']} tasks disagree by "
                        f"{spread:.3f} eV/atom",
                    ))
            return violations

    def run_all(self) -> dict:
        with span("vnv.run_all", db=self.db.name):
            started = time.perf_counter()
            violations: List[Violation] = []
            for rule in self.rules:
                violations.extend(self.run_rule(rule))
            violations.extend(self.run_referential_integrity())
            violations.extend(self.run_known_compounds())
            violations.extend(self.run_mapreduce_rule())
            report = {
                "clean": not violations,
                "violations": [v.as_dict() for v in violations],
                "n_violations": len(violations),
                "elapsed_s": time.perf_counter() - started,
            }
            self.db["vnv_reports"].insert_one({**report, "ts": time.time()})
            get_registry().counter(
                "repro_vnv_violations_total", "V&V violations found"
            ).inc(len(violations), db=self.db.name)
            return report

    def assert_clean(self) -> dict:
        """Run everything; raise if any rule fired (pre-release gate)."""
        report = self.run_all()
        if not report["clean"]:
            summary = "; ".join(
                f"{v['rule']}: {v['message']}" for v in report["violations"][:5]
            )
            raise ValidationError(
                f"{report['n_violations']} V&V violations: {summary}"
            )
        return report
