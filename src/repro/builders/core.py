"""The materials builder: raw tasks → curated materials collection.

This is the heart of the paper's pipeline: every completed calculation is
a *task*; all tasks computed for the same MPS input are one *material*,
represented by its best (highest-quality, then lowest-energy) task.  The
builder is idempotent and keeps ``material_id`` stable across rebuilds —
published identifiers must never change just because the pipeline reran.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..dft.energy import reference_energy_per_atom
from ..errors import BuilderError
from ..matgen.structure import Structure
from ..obs import current_span, get_registry, span

__all__ = ["MaterialsBuilder", "pick_best_task", "ensure_index"]


def ensure_index(collection, field: str, unique: bool = False) -> None:
    """Create a single-field index if no index on ``field`` exists yet."""
    existing = {info["field"] for info in collection.index_information().values()}
    if field not in existing:
        collection.create_index(field, unique=unique)


def pick_best_task(tasks: List[dict]) -> dict:
    """The canonical task for a material: highest ENCUT, then lowest energy.

    A higher plane-wave cutoff means a better-converged calculation; among
    equals the variational principle prefers the lower energy per atom.
    """
    if not tasks:
        raise BuilderError("cannot pick a best task from an empty group")

    def quality(task: dict) -> tuple:
        parameters = task.get("parameters") or {}
        encut = parameters.get("ENCUT") or 0
        epa = task.get("energy_per_atom")
        epa = float("inf") if epa is None else epa
        return (-encut, epa)

    return min(tasks, key=quality)


class MaterialsBuilder:
    """Groups completed tasks by ``mps_id`` and projects one material each."""

    def __init__(self, db):
        self.db = db
        ensure_index(db["tasks"], "mps_id")
        ensure_index(db["tasks"], "state")
        ensure_index(db["materials"], "mps_id", unique=True)
        ensure_index(db["materials"], "material_id", unique=True)

    # -- identifier allocation -------------------------------------------

    def _next_material_id(self) -> str:
        counter = self.db["counters"].find_one_and_update(
            {"_id": "material_id"},
            {"$inc": {"seq": 1}},
            upsert=True,
            return_document="after",
        )
        return f"mp-{int(counter['seq'])}"

    # -- projection -------------------------------------------------------

    def _completed_tasks(self) -> List[dict]:
        return [
            t for t in self.db["tasks"].find({"state": "COMPLETED"})
            if t.get("mps_id")
        ]

    def _material_doc(self, mps_id: str, tasks: List[dict]) -> dict:
        best = pick_best_task(tasks)
        doc: Dict[str, Any] = {
            "mps_id": mps_id,
            "energy": best.get("energy"),
            "energy_per_atom": best.get("energy_per_atom"),
            "band_gap": best.get("band_gap"),
            "is_metal": best.get("is_metal"),
            "structure": best.get("structure"),
            "provenance": {
                "builder": "materials",
                "task_id": best.get("_id"),
                "source_task_ids": [t["_id"] for t in tasks if "_id" in t],
                "n_tasks": len(tasks),
                "parameters": best.get("parameters") or {},
                "functional": best.get("functional"),
                "code_version": best.get("code_version"),
                "completed_at": best.get("completed_at"),
                "trace_id": getattr(current_span(), "trace_id", None),
            },
            "last_updated": time.time(),
        }
        structure = None
        if best.get("structure"):
            structure = Structure.from_dict(best["structure"])
        if structure is not None:
            composition = structure.composition
            doc.update({
                "formula": structure.formula,
                "reduced_formula": structure.reduced_formula,
                "chemical_system": structure.chemical_system,
                "elements": structure.elements,
                "nelements": len(structure.elements),
                "nsites": structure.num_sites,
            })
            energy = best.get("energy")
            if energy is not None:
                reference = sum(
                    amount * reference_energy_per_atom(element.symbol)
                    for element, amount in composition.items()
                )
                doc["formation_energy_per_atom"] = (
                    (energy - reference) / composition.num_atoms
                )
        else:
            doc.update({
                "formula": best.get("formula"),
                "reduced_formula": best.get("formula"),
                "elements": best.get("elements") or [],
            })
        return doc

    def _upsert_material(self, mps_id: str, tasks: List[dict]) -> str:
        """Build and store one material; returns ``"built"`` or ``"updated"``."""
        materials = self.db["materials"]
        t0 = time.perf_counter()
        doc = self._material_doc(mps_id, tasks)
        doc["provenance"]["built_wall_ms"] = (time.perf_counter() - t0) * 1e3
        existing = materials.find_one({"mps_id": mps_id})
        if existing is not None:
            doc["material_id"] = existing["material_id"]
            materials.update_one({"mps_id": mps_id}, {"$set": doc})
            return "updated"
        doc["material_id"] = self._next_material_id()
        materials.insert_one(doc)
        return "built"

    # -- incremental entry points (used by IncrementalMaterialsBuilder) ---

    def refresh(self, mps_id: str) -> bool:
        """Rebuild one material group; retires it if no tasks remain."""
        tasks = [
            t for t in self.db["tasks"].find(
                {"mps_id": mps_id, "state": "COMPLETED"}
            )
        ]
        if not tasks:
            result = self.db["materials"].delete_many({"mps_id": mps_id})
            return result.deleted_count > 0
        self._upsert_material(mps_id, tasks)
        return True

    def retire_orphans(self) -> int:
        """Drop materials whose mps group has no completed tasks left."""
        live = {t["mps_id"] for t in self._completed_tasks()}
        materials = self.db["materials"]
        retired = 0
        for mat in materials.find({}, {"mps_id": 1}):
            if mat.get("mps_id") not in live:
                materials.delete_many({"_id": mat["_id"]})
                retired += 1
        return retired

    # -- batch rebuild -----------------------------------------------------

    def run(self) -> dict:
        with span("builder.materials", db=self.db.name):
            tasks = self._completed_tasks()
            groups: Dict[str, List[dict]] = {}
            for task in tasks:
                groups.setdefault(task["mps_id"], []).append(task)
            built = updated = 0
            for mps_id in sorted(groups):
                outcome = self._upsert_material(mps_id, groups[mps_id])
                if outcome == "built":
                    built += 1
                else:
                    updated += 1
            retired = self.retire_orphans()
            get_registry().counter(
                "repro_builder_documents_total", "documents built per builder"
            ).inc(built + updated, builder="materials")
            return {
                "tasks_considered": len(tasks),
                "materials_built": built,
                "materials_updated": updated,
                "materials_retired": retired,
            }
