"""``repro.builders`` — the paper's "builder" post-processing pipeline.

The Materials Project datastore is grown in two stages: high-throughput
calculations land as raw *task* documents, and a fleet of builders distills
them into the curated *materials* collection plus derived collections
(phase diagrams, batteries, diffraction patterns, band structures,
symmetry).  A V&V runner continuously audits the result — the paper's
"verification and validation before releasing a database" workflow.

Every builder run is wrapped in a tracing span (``builder.<name>``), so a
trace of a pipeline rebuild shows each builder with its docstore traffic
as timed children — see :mod:`repro.obs`.
"""

from .core import MaterialsBuilder, pick_best_task
from .derived import (
    BandStructureBuilder,
    BatteryBuilder,
    PhaseDiagramBuilder,
    SymmetryBuilder,
    XRDBuilder,
)
from .incremental import IncrementalMaterialsBuilder
from .loader import TaskLoader
from .vnv import Rule, Violation, VnVRunner

__all__ = [
    "TaskLoader",
    "MaterialsBuilder",
    "IncrementalMaterialsBuilder",
    "PhaseDiagramBuilder",
    "BandStructureBuilder",
    "XRDBuilder",
    "SymmetryBuilder",
    "BatteryBuilder",
    "VnVRunner",
    "Rule",
    "Violation",
    "pick_best_task",
]
