"""``repro.datagen`` — synthetic data sources.

:mod:`.icsd` generates the ICSD-like structure population (and battery
candidate pairs for Fig. 1); :mod:`.workload` generates the week-of-portal
query traffic behind Fig. 5.
"""

from .icsd import SyntheticICSD, elemental_references, generate_battery_candidates
from .workload import QueryWorkload, WorkloadQuery

__all__ = [
    "SyntheticICSD",
    "elemental_references",
    "generate_battery_candidates",
    "QueryWorkload",
    "WorkloadQuery",
]
