"""Synthetic ICSD: deterministic generation of diverse crystal structures.

The real project "populated from the crystal structures in the Inorganic
Crystal Structure Data (ICSD) database" (§III-B1); offline we synthesize an
equivalent population: prototype lattices instantiated over chemically
sensible element combinations, with ICSD-like provenance metadata, ready to
serialize as MPS records.

Battery screening (Fig. 1) needs a special sub-population:
:func:`generate_battery_candidates` emits intercalation frameworks (olivine,
layered, spinel) for a working ion over many redox metals, *paired with
their delithiated hosts* so voltage pairs are computable, plus the elemental
reference crystals every phase diagram needs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..errors import MatgenError
from ..matgen.elements import Element
from ..matgen.mps import MPSRecord, mps_from_structure
from ..matgen.prototypes import make_prototype
from ..matgen.structure import Structure

__all__ = ["SyntheticICSD", "generate_battery_candidates", "elemental_references"]

#: Cations that make sensible binary/ternary oxides, halides, sulfides.
_CATIONS = [
    "Li", "Na", "K", "Rb", "Cs", "Mg", "Ca", "Sr", "Ba",
    "Sc", "Ti", "V", "Cr", "Mn", "Fe", "Co", "Ni", "Cu", "Zn",
    "Y", "Zr", "Nb", "Mo", "Al", "Ga", "In", "Sn", "La", "Ce",
]
_ANIONS = ["O", "S", "Se", "F", "Cl", "Br", "N"]
_BINARY_PROTOS = ["rocksalt", "cscl", "fluorite", "zincblende"]
_TERNARY_PROTOS = ["perovskite", "spinel", "layered", "olivine"]

#: Redox-active framework metals for battery candidates.
_REDOX_METALS = ["Ti", "V", "Cr", "Mn", "Fe", "Co", "Ni", "Cu", "Mo", "Nb"]


class SyntheticICSD:
    """Deterministic stream of ICSD-like structures + metadata."""

    def __init__(self, seed: int = 2012):
        self.seed = seed
        self._rng = random.Random(seed)
        self._next_icsd_id = 100000
        self._seen_hashes: set = set()

    def _icsd_id(self) -> int:
        self._next_icsd_id += 1
        return self._next_icsd_id

    def _random_binary(self) -> Structure:
        proto = self._rng.choice(_BINARY_PROTOS)
        cation = self._rng.choice(_CATIONS)
        anion = self._rng.choice(_ANIONS)
        return make_prototype(proto, [cation, anion])

    def _random_ternary(self) -> Structure:
        proto = self._rng.choice(_TERNARY_PROTOS)
        if proto == "perovskite":
            a = self._rng.choice(["Ca", "Sr", "Ba", "La", "K"])
            b = self._rng.choice(["Ti", "Zr", "Nb", "Mn", "Fe"])
            return make_prototype(proto, [a, b])
        if proto == "spinel":
            a = self._rng.choice(["Mg", "Zn", "Mn", "Fe", "Li"])
            b = self._rng.choice(["Al", "Cr", "Fe", "Co", "Mn"])
            return make_prototype(proto, [a, b])
        if proto == "layered":
            a = self._rng.choice(["Li", "Na", "K"])
            m = self._rng.choice(_REDOX_METALS)
            return make_prototype(proto, [a, m])
        # olivine
        a = self._rng.choice(["Li", "Na"])
        m = self._rng.choice(_REDOX_METALS)
        return make_prototype(proto, [a, m])

    def structures(self, n: int, ternary_fraction: float = 0.4) -> List[Structure]:
        """``n`` distinct structures (by fingerprint), deterministic."""
        out: List[Structure] = []
        attempts = 0
        while len(out) < n:
            attempts += 1
            if attempts > 50 * max(1, n):
                raise MatgenError(
                    "element/prototype space exhausted before reaching n"
                )
            if self._rng.random() < ternary_fraction:
                s = self._random_ternary()
            else:
                s = self._random_binary()
            h = s.structure_hash()
            if h in self._seen_hashes:
                continue
            self._seen_hashes.add(h)
            out.append(s)
        return out

    def mps_records(self, n: int, **kwargs) -> List[MPSRecord]:
        """``n`` MPS records with ICSD-like provenance."""
        records = []
        for s in self.structures(n, **kwargs):
            records.append(
                mps_from_structure(
                    s,
                    source="icsd",
                    created_by="mp-core",
                    extra_metadata={"icsd_id": self._icsd_id()},
                )
            )
        return records


def elemental_references(symbols: Sequence[str]) -> List[Structure]:
    """Elemental reference crystals (bcc metals / fcc others)."""
    out = []
    for sym in sorted(set(symbols)):
        proto = "bcc" if Element(sym).is_metal else "fcc"
        out.append(make_prototype(proto, [sym]))
    return out


def generate_battery_candidates(
    working_ion: str = "Li",
    metals: Optional[Sequence[str]] = None,
    frameworks: Sequence[str] = ("olivine", "layered", "spinel"),
) -> List[Dict]:
    """Charged/discharged structure pairs for battery screening (Fig. 1).

    Returns dicts: ``{"framework": ..., "metal": ..., "discharged":
    Structure, "charged": Structure}`` where the charged structure is the
    working-ion-free host with identical geometry (topotactic removal).
    """
    metals = list(metals or _REDOX_METALS)
    out: List[Dict] = []
    for framework in frameworks:
        for metal in metals:
            if framework == "spinel" and metal == working_ion:
                continue
            try:
                if framework == "spinel":
                    discharged = make_prototype("spinel", [working_ion, metal])
                else:
                    discharged = make_prototype(framework, [working_ion, metal])
                charged = discharged.remove_species([working_ion])
            except MatgenError:
                continue
            out.append(
                {
                    "framework": framework,
                    "metal": metal,
                    "working_ion": working_ion,
                    "discharged": discharged,
                    "charged": charged,
                }
            )
    return out
