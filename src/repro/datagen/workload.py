"""Web-query workload generator — the load behind Figure 5.

The paper reports "3315 distinct queries returning a total of 12,951,099
records" in one week (§III) and a latency histogram with "a majority of the
queries on the order of a few hundred milliseconds" with a few outliers
(Fig. 5).  This module synthesizes that workload shape: a mix of query
archetypes drawn from a heavy-tailed popularity distribution, spread over a
simulated time axis with a diurnal cycle.

Archetypes (weights mirror how a materials portal is actually used):

* formula lookup (``{"reduced_formula": X}``) — the dominant cheap query
* chemical-system browse (``{"chemical_system": X}``)
* element containment (``{"elements": {"$all": [...]}}``)
* property range scans (band gap / formation-energy windows)
* paginated full browses with sorts — the rare expensive outliers
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError

__all__ = ["QueryWorkload", "WorkloadQuery"]


class WorkloadQuery:
    """One synthetic web query: collection, filter, options, arrival time."""

    def __init__(self, collection: str, query: Dict[str, Any],
                 sort: Optional[List[Tuple[str, int]]], limit: int,
                 arrival_s: float, user: str, archetype: str):
        self.collection = collection
        self.query = query
        self.sort = sort
        self.limit = limit
        self.arrival_s = arrival_s
        self.user = user
        self.archetype = archetype

    def __repr__(self) -> str:
        return f"WorkloadQuery({self.archetype}, t={self.arrival_s:.0f}s)"


class QueryWorkload:
    """Deterministic generator of a week-of-portal-traffic workload."""

    ARCHETYPE_WEIGHTS = {
        "formula_lookup": 0.40,
        "chemsys_browse": 0.20,
        "element_containment": 0.18,
        "property_range": 0.14,
        "full_browse": 0.05,
        "battery_screen": 0.03,
    }

    def __init__(
        self,
        formulas: Sequence[str],
        chemical_systems: Sequence[str],
        elements: Sequence[str],
        n_users: int = 50,
        seed: int = 824,
        duration_s: float = 7 * 24 * 3600.0,
    ):
        if not formulas or not elements:
            raise ReproError("workload needs formulas and elements to draw from")
        self.formulas = list(formulas)
        self.chemical_systems = list(chemical_systems) or list(formulas)
        self.elements = list(elements)
        self.n_users = int(n_users)
        self.duration_s = float(duration_s)
        self.seed = seed
        self._rng = random.Random(seed)

    # -- popularity & timing ------------------------------------------------

    def _zipf_choice(self, items: Sequence[Any]) -> Any:
        """Heavy-tailed popularity: rank-1/x sampling."""
        n = len(items)
        # Inverse CDF of 1/x on [1, n].
        u = self._rng.random()
        rank = int(math.exp(u * math.log(n))) - 1
        return items[min(rank, n - 1)]

    def _arrival(self) -> float:
        """Uniform day draw + diurnal intra-day profile (peak mid-day)."""
        day = self._rng.randrange(int(self.duration_s // 86400) or 1)
        # Rejection-sample an hour with sinusoidal day/night weighting.
        while True:
            hour = self._rng.random() * 24
            weight = 0.35 + 0.65 * max(0.0, math.sin(math.pi * (hour - 6) / 14))
            if self._rng.random() < weight:
                break
        arrival = day * 86400.0 + hour * 3600.0 + self._rng.random() * 60
        return min(arrival, self.duration_s)

    # -- archetypes -------------------------------------------------------------

    def _make(self, archetype: str, arrival: float, user: str) -> WorkloadQuery:
        rng = self._rng
        if archetype == "formula_lookup":
            return WorkloadQuery(
                "materials",
                {"reduced_formula": self._zipf_choice(self.formulas)},
                None, 10, arrival, user, archetype,
            )
        if archetype == "chemsys_browse":
            return WorkloadQuery(
                "materials",
                {"chemical_system": self._zipf_choice(self.chemical_systems)},
                [("energy_per_atom", 1)], 50, arrival, user, archetype,
            )
        if archetype == "element_containment":
            k = rng.choice([1, 2, 2, 3])
            els = rng.sample(self.elements, min(k, len(self.elements)))
            return WorkloadQuery(
                "materials",
                {"elements": {"$all": sorted(els)}},
                None, 100, arrival, user, archetype,
            )
        if archetype == "property_range":
            if rng.random() < 0.5:
                lo = round(rng.uniform(0.0, 3.0), 2)
                q = {"band_gap": {"$gte": lo, "$lte": lo + rng.choice([0.5, 1.0])}}
            else:
                hi = round(rng.uniform(-3.0, 0.0), 2)
                q = {"formation_energy_per_atom": {"$lte": hi}}
            return WorkloadQuery("materials", q, [("band_gap", -1)], 100,
                                 arrival, user, archetype)
        if archetype == "full_browse":
            return WorkloadQuery(
                "materials", {},
                [("formation_energy_per_atom", 1)],
                rng.choice([200, 500, 1000]),
                arrival, user, archetype,
            )
        if archetype == "battery_screen":
            return WorkloadQuery(
                "batteries",
                {"average_voltage": {"$gte": 2.0},
                 "capacity_grav": {"$gte": 100.0}},
                [("specific_energy", -1)], 100, arrival, user, archetype,
            )
        raise ReproError(f"unknown archetype {archetype!r}")

    # -- generation ---------------------------------------------------------------

    def generate(self, n_queries: int = 3315) -> List[WorkloadQuery]:
        """``n_queries`` queries sorted by arrival time (the paper's 3,315)."""
        names = list(self.ARCHETYPE_WEIGHTS)
        weights = [self.ARCHETYPE_WEIGHTS[a] for a in names]
        out = []
        for _ in range(n_queries):
            archetype = self._rng.choices(names, weights)[0]
            user = f"user{self._rng.randrange(self.n_users):03d}"
            out.append(self._make(archetype, self._arrival(), user))
        out.sort(key=lambda q: q.arrival_s)
        return out

    def archetype_mix(self, queries: Sequence[WorkloadQuery]) -> Dict[str, int]:
        mix: Dict[str, int] = {}
        for q in queries:
            mix[q.archetype] = mix.get(q.archetype, 0) + 1
        return mix
