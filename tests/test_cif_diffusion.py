"""Tests for CIF import/export and the diffusion (rate) estimator."""

import pytest

from repro.errors import MatgenError
from repro.matgen import (
    estimate_diffusion,
    make_prototype,
    rate_class,
    read_cif_file,
    structure_from_cif,
    structure_to_cif,
    write_cif_file,
)


@pytest.fixture
def nacl():
    return make_prototype("rocksalt", ["Na", "Cl"])


class TestCIFExport:
    def test_roundtrip(self, nacl):
        text = structure_to_cif(nacl)
        back = structure_from_cif(text)
        assert back.matches(nacl)
        assert back.reduced_formula == "NaCl"

    def test_roundtrip_low_symmetry(self):
        s = make_prototype("olivine", ["Li", "Fe"])
        back = structure_from_cif(structure_to_cif(s))
        assert back.matches(s)
        assert back.lattice.parameters == pytest.approx(
            s.lattice.parameters, rel=1e-5
        )

    def test_file_roundtrip(self, nacl, tmp_path):
        path = str(tmp_path / "nacl.cif")
        write_cif_file(nacl, path)
        assert read_cif_file(path).matches(nacl)

    def test_header_fields(self, nacl):
        text = structure_to_cif(nacl)
        assert "data_NaCl" in text
        assert "_cell_length_a" in text
        assert "_symmetry_space_group_name_H-M  'P 1'" in text
        assert text.count("\n Na") == 4 and text.count("\n Cl") == 4


class TestCIFImport:
    EXTERNAL_CIF = """
# Fictional external CIF with quirks our reader must survive
data_rutile_like
_cell_length_a     4.5941(2)
_cell_length_b     4.5941(2)
_cell_length_c     2.9589
_cell_angle_alpha  90.0
_cell_angle_beta   90.0
_cell_angle_gamma  90.0
_symmetry_space_group_name_H-M 'P 1'

loop_
 _atom_site_label
 _atom_site_fract_x
 _atom_site_fract_y
 _atom_site_fract_z
 Ti1 0.0 0.0 0.0        # comment after the row
 Ti2 0.5 0.5 0.5
 O1  0.3053 0.3053 0.0
 O2  0.6947 0.6947 0.0
 O3  0.8053 0.1947 0.5
 O4  0.1947 0.8053 0.5
"""

    def test_reads_label_only_loop_with_uncertainties(self):
        s = structure_from_cif(self.EXTERNAL_CIF)
        assert s.reduced_formula == "TiO2"
        assert s.num_sites == 6
        assert s.lattice.a == pytest.approx(4.5941)

    def test_charged_species_labels(self):
        text = self.EXTERNAL_CIF.replace("Ti1", "Ti2+").replace("O1", "O2-")
        s = structure_from_cif(text)
        assert s.reduced_formula == "TiO2"

    def test_missing_cell_rejected(self):
        with pytest.raises(MatgenError):
            structure_from_cif("data_x\nloop_\n _atom_site_fract_x\n 0.0\n")

    def test_missing_atoms_rejected(self):
        text = "\n".join(
            line for line in self.EXTERNAL_CIF.splitlines()
            if not line.strip().startswith(("Ti", "O", "loop_", "_atom"))
        )
        with pytest.raises(MatgenError):
            structure_from_cif(text)


class TestDiffusion:
    def test_estimate_shape(self):
        s = make_prototype("olivine", ["Li", "Fe"])
        est = estimate_diffusion(s, "Li")
        assert est.hop_distance > 1.5
        assert est.bottleneck_radius >= 0.0
        assert 0.1 <= est.barrier_ev <= 2.5
        d = est.as_dict()
        assert d["rate_class"] in ("high-rate", "moderate-rate", "low-rate")

    def test_diffusivity_arrhenius(self):
        s = make_prototype("layered", ["Li", "Co"])
        est = estimate_diffusion(s, "Li")
        assert est.diffusivity(600.0) > est.diffusivity(300.0)
        with pytest.raises(MatgenError):
            est.diffusivity(-5)

    def test_bigger_ion_higher_barrier(self):
        """Na in the same framework must not out-diffuse Li (geometric)."""
        li_host = make_prototype("olivine", ["Li", "Fe"])
        na_host = make_prototype("olivine", ["Na", "Fe"])
        e_li = estimate_diffusion(li_host, "Li").barrier_ev
        e_na = estimate_diffusion(na_host, "Na").barrier_ev
        assert e_na >= e_li

    def test_missing_ion_rejected(self):
        s = make_prototype("rocksalt", ["Na", "Cl"])
        with pytest.raises(MatgenError):
            estimate_diffusion(s, "Li")

    def test_rate_class_thresholds(self):
        assert rate_class(0.2) == "high-rate"
        assert rate_class(0.5) == "moderate-rate"
        assert rate_class(1.0) == "low-rate"

    def test_deterministic(self):
        s = make_prototype("spinel", ["Li", "Mn"])
        a = estimate_diffusion(s, "Li").barrier_ev
        b = estimate_diffusion(s, "Li").barrier_ev
        assert a == b

    def test_followup_screen_over_fig1_candidates(self):
        """The paper's teased second screen: rank survivors by rate."""
        from repro.datagen import generate_battery_candidates

        rows = []
        for pair in generate_battery_candidates("Li", metals=["Fe", "Mn", "Co"]):
            est = estimate_diffusion(pair["discharged"], "Li")
            rows.append((pair["framework"], pair["metal"], est.barrier_ev))
        assert len(rows) >= 6
        barriers = [r[2] for r in rows]
        assert all(0.1 <= b <= 2.5 for b in barriers)
        # The screen must discriminate, not return a constant.
        assert max(barriers) - min(barriers) > 0.05
