"""Tests for the unified observability layer (repro.obs + its consumers)."""

import json
import urllib.request

import pytest

from repro.docstore import DocumentStore
from repro.errors import DocstoreError, ReproError
from repro.obs import (
    MetricsRegistry,
    clear_traces,
    current_span,
    get_registry,
    percentile,
    recent_traces,
    redact,
    set_registry,
    span,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    """Isolate each test behind its own metrics registry."""
    previous = get_registry()
    registry = MetricsRegistry()
    set_registry(registry)
    clear_traces()
    yield registry
    set_registry(previous)


@pytest.fixture
def db():
    return DocumentStore()["mp"]


class TestMetrics:
    def test_percentile_empty_is_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 99) == 0.0

    def test_percentile_single_sample(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_histogram_quantiles(self, fresh_registry):
        h = fresh_registry.histogram("lat", "latencies")
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        # Interpolated percentiles: rank p/100*(n-1) between neighbours.
        assert s["p50"] == pytest.approx(50.5)
        assert s["p95"] == pytest.approx(95.05)
        assert s["p99"] == pytest.approx(99.01)
        assert s["max"] == 100.0

    def test_percentile_interpolates_between_samples(self):
        assert percentile([10.0, 20.0], 50) == pytest.approx(15.0)
        # p99 of two samples must be near (not equal to) the max.
        assert percentile([10.0, 20.0], 99) == pytest.approx(19.9)
        assert percentile([10.0, 20.0], 99) < 20.0
        assert percentile([10.0, 20.0], 0) == 10.0
        assert percentile([10.0, 20.0], 100) == 20.0

    def test_counter_rejects_negative(self, fresh_registry):
        c = fresh_registry.counter("n", "things")
        with pytest.raises(ReproError):
            c.inc(-1)

    def test_type_mismatch_rejected(self, fresh_registry):
        fresh_registry.counter("x", "a counter")
        with pytest.raises(ReproError):
            fresh_registry.histogram("x", "now a histogram?")

    def test_render_text_contains_series(self, fresh_registry):
        fresh_registry.counter("reqs", "requests").inc(3, route="/a")
        text = fresh_registry.render_text()
        assert "# TYPE reqs counter" in text
        assert 'reqs{route="/a"} 3' in text


class TestTracing:
    def test_nesting_and_current_span(self):
        assert current_span() is None
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
                assert inner.parent is outer
                assert inner.trace_id == outer.trace_id
            assert current_span() is outer
        assert current_span() is None
        assert outer.children == [inner]

    def test_exception_marks_error_and_pops(self):
        with pytest.raises(ValueError):
            with span("doomed") as s:
                raise ValueError("boom")
        assert s.status == "error"
        assert "ValueError" in s.error
        assert current_span() is None

    def test_finished_root_spans_buffered(self):
        with span("root-a"):
            with span("child"):
                pass
        traces = recent_traces()
        assert [t.name for t in traces] == ["root-a"]
        assert traces[0].find("child")


class TestOpcounters:
    def test_opcounters_match_op_sequence(self, db):
        coll = db["things"]
        coll.insert_one({"a": 1})
        coll.insert_many([{"a": 2}, {"a": 3}])
        coll.find({"a": {"$gte": 1}}).to_list()
        coll.find_one({"a": 2})
        coll.update_one({"a": 1}, {"$set": {"b": True}})
        coll.delete_one({"a": 3})
        counters = db.server_status()["opcounters"]
        assert counters["insert"] == 3
        assert counters["query"] == 2
        assert counters["update"] == 1
        assert counters["delete"] == 1

    def test_store_aggregates_across_databases(self):
        store = DocumentStore()
        store["a"]["c"].insert_one({})
        store["b"]["c"].insert_one({})
        status = store.server_status()
        assert status["opcounters"]["insert"] == 2
        assert status["databases"] == ["a", "b"]


class TestProfiler:
    def test_level_2_records_everything(self, db):
        db.set_profiling_level(2)
        db["t"].insert_one({"x": 1})
        db["t"].find({"x": 1}).to_list()
        ops = [e["op"] for e in db.profile_log]
        assert "insert" in ops and "find" in ops

    def test_profile_is_a_queryable_collection(self, db):
        db.set_profiling_level(2)
        db["t"].insert_one({"x": 1})
        db["t"].find({"x": 1}).to_list()
        slow = db["system.profile"].find({"op": "find"}).to_list()
        assert len(slow) == 1
        entry = slow[0]
        assert entry["ns"] == "mp.t"
        assert entry["nreturned"] == 1
        assert entry["millis"] >= 0.0

    def test_level_validation(self, db):
        with pytest.raises(DocstoreError):
            db.set_profiling_level(3)

    def test_slowms_threshold_at_level_1(self, db):
        db.set_profiling_level(1, slowms=10_000)
        db["t"].insert_one({"x": 1})      # fast write: not recorded
        db["t"].find({}).to_list()        # read: always recorded
        assert [e["op"] for e in db.profile_log] == ["find"]


class TestExplain:
    def test_collscan_explain(self, db):
        coll = db["t"]
        coll.insert_many([{"x": i} for i in range(5)])
        plan = coll.explain({"x": {"$gte": 3}})
        assert plan["nReturned"] == 2
        assert plan["executionTimeMillis"] >= 0.0
        assert plan["indexUsed"] is None

    def test_indexed_explain(self, db):
        coll = db["t"]
        coll.create_index("x")
        coll.insert_many([{"x": i} for i in range(10)])
        plan = coll.explain({"x": 7})
        assert plan["nReturned"] == 1
        assert plan["indexUsed"] is not None
        assert plan["docsExamined"] <= 1


class TestDocstoreSpans:
    def test_ops_attach_to_current_span(self, db):
        with span("unit.of.work") as s:
            db["t"].insert_one({"x": 1})
            db["t"].find({}).to_list()
        names = [c.name for c in s.children]
        assert "docstore.insert" in names
        assert "docstore.find" in names

    def test_firework_launch_trace_has_docstore_writes(self):
        from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
        from repro.matgen import make_prototype

        db = DocumentStore()["mp"]
        pad = LaunchPad(db)
        structure = make_prototype("rocksalt", ["Na", "Cl"])
        pad.add_workflow(Workflow([vasp_firework(structure, "mps-1")]))
        clear_traces()
        Rocket(pad, write_run_dirs=False).rapidfire()
        roots = [t for t in recent_traces() if t.name == "firework.launch"]
        assert roots, [t.name for t in recent_traces()]
        # At least one launch (possibly after an SCF detour) writes a task
        # document inside its own trace.
        assert any(t.find("docstore.insert") for t in roots)
        assert any(t.find("scf.run") for t in roots)


class TestHTTPEndpoints:
    @pytest.fixture
    def server(self, db):
        from repro.api import MaterialsAPI, MaterialsAPIServer, QueryEngine

        db["materials"].insert_one({"material_id": "mp-1", "band_gap": 1.0})
        api = MaterialsAPI(QueryEngine(db))
        with MaterialsAPIServer(api) as srv:
            yield srv

    def test_metrics_endpoint(self, server):
        urllib.request.urlopen(
            f"{server.base_url}/rest/v1/materials/mp-1/vasp/band_gap"
        ).read()
        text = urllib.request.urlopen(
            f"{server.base_url}/metrics"
        ).read().decode()
        assert "# TYPE repro_api_query_millis histogram" in text
        assert "repro_api_queries_total" in text
        assert 'quantile="0.95"' in text

    def test_status_endpoint(self, server):
        body = urllib.request.urlopen(f"{server.base_url}/status").read()
        status = json.loads(body)
        assert status["server"]["db"] == "mp"
        assert "opcounters" in status["server"]
        assert "metrics" in status


class TestRedaction:
    def test_redacts_credentials(self):
        line = redact("user=alice api_key=SECRET123 token: abc.def")
        assert "SECRET123" not in line
        assert "abc.def" not in line
        assert "user=alice" in line
