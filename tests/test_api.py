"""Tests for the dissemination layer: QueryEngine, REST, HTTP, auth, limits,
sandboxes, query log."""

import pytest

from repro.api import (
    AuthRegistry,
    MaterialsAPI,
    MaterialsAPIServer,
    MPRester,
    QueryEngine,
    QueryLog,
    RateLimiter,
    SandboxManager,
    ThirdPartyProvider,
)
from repro.builders import MaterialsBuilder, PhaseDiagramBuilder
from repro.docstore import DocumentStore
from repro.errors import (
    APIError,
    AuthError,
    NotFoundError,
    RateLimitExceeded,
)
from repro.matgen import make_prototype


@pytest.fixture
def db():
    """A small populated materials database."""
    from tests.test_builders import _insert_task

    database = DocumentStore()["mp"]
    structures = {
        "mps-nacl": make_prototype("rocksalt", ["Na", "Cl"]),
        "mps-fe2o3"[:8]: make_prototype("rocksalt", ["Fe", "O"]),
        "mps-licoo2": make_prototype("layered", ["Li", "Co"]),
        "mps-fe": make_prototype("bcc", ["Fe"]),
    }
    for mid, s in structures.items():
        _insert_task(database, s, mid)
    MaterialsBuilder(database).run()
    PhaseDiagramBuilder(database).run()
    return database


@pytest.fixture
def qe(db):
    return QueryEngine(
        db,
        aliases={"e_hull": "e_above_hull", "gap": "band_gap",
                 "encut": "provenance.parameters.ENCUT"},
    )


class TestQueryEngine:
    def test_basic_query(self, qe):
        docs = qe.query({"reduced_formula": "NaCl"})
        assert len(docs) == 1
        assert docs[0]["chemical_system"] == "Cl-Na"

    def test_alias_in_criteria(self, qe):
        docs = qe.query({"e_hull": {"$lte": 0.0}})
        assert docs  # stable materials exist
        assert all(d["e_above_hull"] <= 0 for d in docs)

    def test_deep_alias(self, qe):
        docs = qe.query({"encut": 520})
        assert len(docs) == 4

    def test_alias_in_projection_and_sort(self, qe):
        docs = qe.query({}, properties=["gap"], sort=[("gap", -1)])
        gaps = [d.get("band_gap") for d in docs]
        assert gaps == sorted(gaps, reverse=True)

    def test_alias_prefix_path(self, qe):
        qe.add_alias("params", "provenance.parameters")
        docs = qe.query({"params.ENCUT": 520})
        assert len(docs) == 4

    def test_where_rejected(self, qe):
        with pytest.raises(APIError):
            qe.query({"$where": lambda d: True})

    def test_callable_values_rejected(self, qe):
        with pytest.raises(APIError):
            qe.query({"band_gap": {"$gt": lambda: 0}})

    def test_result_cap(self, db):
        engine = QueryEngine(db, max_results=2)
        assert len(engine.query({})) == 2

    def test_collection_alias(self, db):
        engine = QueryEngine(db, collection_aliases={"mats": "materials"})
        assert engine.query({}, collection="mats")

    def test_query_logged(self, qe):
        qe.query({"reduced_formula": "NaCl"}, user="u1")
        qe.count({}, user="u1")
        assert len(qe.query_log) == 2
        entry = qe.query_log.entries[0]
        assert entry["collection"] == "materials"
        assert entry["millis"] >= 0

    def test_count_and_distinct(self, qe):
        assert qe.count({}) == 4
        assert "NaCl" in qe.distinct("reduced_formula")

    def test_update_translates_aliases(self, qe):
        n = qe.update({"reduced_formula": "NaCl"}, {"$set": {"gap": 9.0}})
        assert n == 1
        assert qe.query_one({"reduced_formula": "NaCl"})["band_gap"] == 9.0

    def test_update_requires_operators(self, qe):
        with pytest.raises(APIError):
            qe.update({}, {"band_gap": 1.0})


class TestMaterialsAPIRouting:
    def test_figure4_uri(self, qe):
        """The paper's exact example: energy of Fe2O3... we use FeO."""
        api = MaterialsAPI(qe)
        envelope = api.handle("/rest/v1/materials/FeO/vasp/energy")
        assert envelope["valid_response"]
        assert envelope["response"][0]["energy"] < 0

    def test_material_id_lookup(self, qe):
        api = MaterialsAPI(qe)
        doc = api.handle("/rest/v1/materials/NaCl/vasp")["response"][0]
        by_id = api.handle(
            f"/rest/v1/materials/{doc['material_id']}/vasp"
        )["response"][0]
        assert by_id["reduced_formula"] == "NaCl"

    def test_chemical_system_lookup(self, qe):
        api = MaterialsAPI(qe)
        rows = api.handle("/rest/v1/materials/Na-Cl/vasp")["response"]
        assert len(rows) == 1

    def test_formula_normalization(self, qe):
        """Fe2O2 normalizes to FeO."""
        api = MaterialsAPI(qe)
        rows = api.handle("/rest/v1/materials/Fe2O2/vasp")["response"]
        assert rows[0]["reduced_formula"] == "FeO"

    def test_unknown_material_404(self, qe):
        envelope = MaterialsAPI(qe).handle("/rest/v1/materials/UO2/vasp/energy")
        assert not envelope["valid_response"]
        assert envelope["status"] == 404

    def test_bad_property_400(self, qe):
        envelope = MaterialsAPI(qe).handle("/rest/v1/materials/NaCl/vasp/frobnitz")
        assert envelope["status"] == 400

    def test_bad_formula_400(self, qe):
        envelope = MaterialsAPI(qe).handle("/rest/v1/materials/NotAFormula123/vasp")
        assert envelope["status"] == 400

    def test_unknown_datatype_404(self, qe):
        envelope = MaterialsAPI(qe).handle("/rest/v1/materials/NaCl/exp/energy")
        assert envelope["status"] == 404

    def test_bad_version_400(self, qe):
        envelope = MaterialsAPI(qe).handle("/rest/v9/materials/NaCl/vasp")
        assert envelope["status"] == 400

    def test_tasks_route(self, qe):
        envelope = MaterialsAPI(qe).handle("/rest/v1/tasks/mps-nacl")
        assert envelope["valid_response"]
        assert envelope["response"][0]["formula"] == "NaCl"


class TestAuthAndRateLimit:
    def make_authed_api(self, qe):
        auth = AuthRegistry()
        google = ThirdPartyProvider("google")
        auth.register_provider(google)
        token = auth.sign_in(google.assert_identity("alice@example.com"))
        key = auth.issue_api_key(token)
        api = MaterialsAPI(qe, auth=auth, require_auth=True)
        return api, auth, google, key

    def test_delegated_sign_in(self, qe):
        _api, auth, google, _key = self.make_authed_api(qe)
        assert auth.n_users == 1
        # Same email signs in again: same account.
        auth.sign_in(google.assert_identity("alice@example.com"))
        assert auth.n_users == 1

    def test_untrusted_provider_rejected(self):
        auth = AuthRegistry()
        rogue = ThirdPartyProvider("rogue")
        with pytest.raises(AuthError):
            auth.sign_in(rogue.assert_identity("mallory@example.com"))

    def test_tampered_assertion_rejected(self, qe):
        _api, auth, google, _key = self.make_authed_api(qe)
        assertion = google.assert_identity("bob@example.com")
        assertion["email"] = "admin@example.com"
        with pytest.raises(AuthError):
            auth.sign_in(assertion)

    def test_api_requires_key(self, qe):
        api, _auth, _google, key = self.make_authed_api(qe)
        denied = api.handle("/rest/v1/materials/NaCl/vasp")
        assert denied["status"] == 401
        allowed = api.handle("/rest/v1/materials/NaCl/vasp", api_key=key)
        assert allowed["valid_response"]

    def test_revoked_key(self, qe):
        api, auth, _google, key = self.make_authed_api(qe)
        auth.revoke_api_key(key)
        assert api.handle("/rest/v1/materials/NaCl/vasp", api_key=key)["status"] == 401

    def test_rate_limiting(self, qe):
        fake_time = [0.0]
        limiter = RateLimiter(max_requests=3, window_s=10,
                              clock=lambda: fake_time[0])
        api = MaterialsAPI(qe, rate_limiter=limiter)
        for _ in range(3):
            assert api.handle("/rest/v1/materials/NaCl/vasp")["valid_response"]
        denied = api.handle("/rest/v1/materials/NaCl/vasp")
        assert denied["status"] == 429
        # The window slides: 10s later the user may query again.
        fake_time[0] = 10.5
        assert api.handle("/rest/v1/materials/NaCl/vasp")["valid_response"]

    def test_rate_limiter_isolates_users(self):
        limiter = RateLimiter(max_requests=2, window_s=60, clock=lambda: 0.0)
        limiter.check("a")
        limiter.check("a")
        with pytest.raises(RateLimitExceeded):
            limiter.check("a")
        limiter.check("b")  # unaffected
        assert limiter.remaining("b") == 1


class TestHTTPAndClient:
    def test_real_http_roundtrip(self, qe):
        with MaterialsAPIServer(MaterialsAPI(qe)) as server:
            client = MPRester(base_url=server.base_url)
            energy = client.get_energy("NaCl")
            assert energy < 0
            with pytest.raises(NotFoundError):
                client.get_energy("UO2")

    def test_in_process_client(self, qe):
        client = MPRester(router=MaterialsAPI(qe))
        material = client.get_material("NaCl")
        assert material["reduced_formula"] == "NaCl"

    def test_structure_roundtrip_through_api(self, qe):
        client = MPRester(router=MaterialsAPI(qe))
        structure = client.get_structure_by_formula("NaCl")
        assert structure.reduced_formula == "NaCl"
        assert structure.num_sites == 8

    def test_entries_for_phase_diagram(self, qe):
        """Remote data → local hull analysis, the pymatgen workflow."""
        from repro.matgen import PDEntry, PhaseDiagram
        from repro.dft.energy import reference_energy_per_atom

        client = MPRester(router=MaterialsAPI(qe))
        entries = client.get_entries_in_chemsys(["Na", "Cl"])
        assert any(e.composition.reduced_formula == "NaCl" for e in entries)
        refs = [PDEntry(el, reference_energy_per_atom(el)) for el in ("Na", "Cl")]
        pd = PhaseDiagram(entries + refs)
        assert "NaCl" in {e.composition.reduced_formula for e in pd.stable_entries}

    def test_client_config_validation(self):
        with pytest.raises(APIError):
            MPRester()
        with pytest.raises(APIError):
            MPRester(base_url="http://x", router=object())  # type: ignore[arg-type]


class TestSandboxes:
    def test_private_until_published(self, db):
        sm = SandboxManager(db)
        sbx = sm.create_sandbox("alice", "battery-ideas")
        sm.submit(sbx, "alice", "materials",
                  {"reduced_formula": "Xx2O", "secret": True})
        # Alice sees it; Bob and anonymous don't.
        assert any(
            d.get("secret") for d in sm.visible_query("alice", "materials")
        )
        assert not any(
            d.get("secret") for d in sm.visible_query("bob", "materials")
        )
        assert not any(
            d.get("secret") for d in sm.visible_query(None, "materials")
        )

    def test_collaborator_access(self, db):
        sm = SandboxManager(db)
        sbx = sm.create_sandbox("alice", "shared")
        sm.submit(sbx, "alice", "materials", {"tag": "collab-data"})
        sm.add_collaborator(sbx, "alice", "bob")
        assert any(
            d.get("tag") == "collab-data"
            for d in sm.visible_query("bob", "materials")
        )

    def test_only_owner_adds_collaborators(self, db):
        sm = SandboxManager(db)
        sbx = sm.create_sandbox("alice", "s")
        with pytest.raises(AuthError):
            sm.add_collaborator(sbx, "mallory", "mallory")

    def test_non_member_cannot_submit(self, db):
        sm = SandboxManager(db)
        sbx = sm.create_sandbox("alice", "s")
        with pytest.raises(AuthError):
            sm.submit(sbx, "mallory", "materials", {})

    def test_publish_flow(self, db):
        """The paper's (f) step: sandbox data released to the community."""
        sm = SandboxManager(db)
        sbx = sm.create_sandbox("alice", "to-publish")
        sm.submit(sbx, "alice", "materials", {"tag": "novel-material"})
        n = sm.publish(sbx, "alice", "materials")
        assert n == 1
        assert any(
            d.get("tag") == "novel-material"
            for d in sm.visible_query(None, "materials")
        )

    def test_only_owner_publishes(self, db):
        sm = SandboxManager(db)
        sbx = sm.create_sandbox("alice", "s")
        with pytest.raises(AuthError):
            sm.publish(sbx, "bob", "materials")

    def test_core_data_always_visible(self, db):
        sm = SandboxManager(db)
        docs = sm.visible_query(None, "materials")
        assert len(docs) == 4  # the fixture's core materials


class TestQueryLog:
    def test_histogram_and_summary(self):
        log = QueryLog()
        for ms in (0.5, 0.7, 2.0, 150.0, 800.0):
            log.record("materials", ms, nreturned=10, user="u1")
        hist = dict(log.histogram([1, 100, 1000]))
        assert hist["[0, 1) ms"] == 2
        assert hist["[1, 100) ms"] == 1
        assert hist["[100, 1000) ms"] == 2
        summary = log.summary()
        assert summary["queries"] == 5
        assert summary["records_returned"] == 50
        assert summary["max_ms"] == 800.0

    def test_percentiles(self):
        log = QueryLog()
        for i in range(100):
            log.record("m", float(i + 1), 0)
        assert log.percentile(50) == pytest.approx(50.5)
        assert log.percentile(99) == pytest.approx(99.01)

    def test_time_series_sorted(self):
        log = QueryLog()
        log.record("m", 1.0, 0, ts=20.0)
        log.record("m", 2.0, 0, ts=10.0)
        series = log.time_series()
        assert [t for t, _ in series] == [10.0, 20.0]

    def test_by_collection(self):
        log = QueryLog()
        log.record("materials", 5.0, 1)
        log.record("batteries", 15.0, 1)
        stats = log.by_collection()
        assert stats["materials"]["queries"] == 1
        assert stats["batteries"]["mean_ms"] == 15.0


class TestFunctionEndpoints:
    """The paper's API maps URIs to 'data objects and functions'."""

    def test_phasediagram_computed_on_demand(self, qe):
        from repro.api import MaterialsAPI

        api = MaterialsAPI(qe)
        envelope = api.handle("/rest/v1/phasediagram/Na-Cl")
        assert envelope["valid_response"]
        summary = envelope["response"][0]
        assert summary["chemical_system"] == "Cl-Na"
        assert "NaCl" in summary["stable_formulas"]
        # Hull distances resolved per member material.
        assert all(v >= -1e-9 for v in summary["e_above_hull"].values())

    def test_phasediagram_reflects_live_data(self, qe, db):
        """A function endpoint recomputes: new material shows up at once."""
        from tests.test_builders import _insert_task
        from repro.api import MaterialsAPI
        from repro.builders import MaterialsBuilder
        from repro.matgen import make_prototype

        api = MaterialsAPI(qe)
        before = api.handle("/rest/v1/phasediagram/Cl-K")["response"][0]
        assert "KCl" not in before["stable_formulas"]
        _insert_task(db, make_prototype("rocksalt", ["K", "Cl"]), "mps-kcl")
        MaterialsBuilder(db).run()
        after = api.handle("/rest/v1/phasediagram/Cl-K")["response"][0]
        assert "KCl" in after["stable_formulas"]

    def test_phasediagram_bad_system(self, qe):
        from repro.api import MaterialsAPI

        assert MaterialsAPI(qe).handle(
            "/rest/v1/phasediagram/not-elements"
        )["status"] == 400

    def test_xrd_on_demand_then_cached(self, qe, db):
        from repro.api import MaterialsAPI
        from repro.builders import XRDBuilder

        api = MaterialsAPI(qe)
        fresh = api.handle("/rest/v1/xrd/NaCl")["response"][0]
        assert fresh.get("computed_on_demand") is True
        assert len(fresh["peaks"]) > 3
        XRDBuilder(db).run()
        cached = api.handle("/rest/v1/xrd/NaCl")["response"][0]
        assert "computed_on_demand" not in cached
        # Same physics either way.
        assert len(cached["peaks"]) == len(fresh["peaks"])

    def test_xrd_unknown_material(self, qe):
        from repro.api import MaterialsAPI

        assert MaterialsAPI(qe).handle("/rest/v1/xrd/UO2")["status"] == 404
