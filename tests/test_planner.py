"""Tests for the cost-based query planner: compound indexes, plan racing,
the shape-keyed plan cache, covered queries, hint(), and sort push-down."""

import pytest

from repro.docstore import (
    Collection,
    DocumentStore,
    canonical_shape,
    normalize_index_spec,
)
from repro.errors import DocstoreError


@pytest.fixture
def materials():
    c = Collection("materials")
    c.insert_many([
        {
            "formula": f"F{i % 20}",
            "e_above_hull": (i * 7 % 100) / 100.0,
            "band_gap": (i * 13 % 80) / 10.0,
            "nsites": i % 11,
        }
        for i in range(500)
    ])
    return c


class TestNormalizeIndexSpec:
    def test_string_is_single_ascending(self):
        assert normalize_index_spec("formula") == [("formula", 1)]

    def test_pairs_keep_order_and_direction(self):
        spec = [("formula", 1), ("e_above_hull", -1)]
        assert normalize_index_spec(spec) == spec

    def test_bad_direction_rejected(self):
        with pytest.raises(DocstoreError):
            normalize_index_spec([("formula", 2)])

    def test_duplicate_field_rejected(self):
        with pytest.raises(DocstoreError):
            normalize_index_spec([("a", 1), ("a", -1)])


class TestCompoundSelection:
    def test_full_key_equality_uses_index(self, materials):
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        docs = materials.find(
            {"formula": "F3", "e_above_hull": 0.21}
        ).to_list()
        plan = materials.last_plan
        assert plan.kind == "IXSCAN"
        assert plan.index_name == "formula_1_e_above_hull_-1"
        for d in docs:
            assert d["formula"] == "F3" and d["e_above_hull"] == 0.21

    def test_prefix_only_query_uses_compound(self, materials):
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        docs = materials.find({"formula": "F3"}).to_list()
        plan = materials.last_plan
        assert plan.kind == "IXSCAN"
        assert docs and all(d["formula"] == "F3" for d in docs)
        # Prefix scan examines only the formula=F3 block, not the table.
        assert plan.keys_examined < 500

    def test_suffix_only_query_cannot_use_prefix(self, materials):
        """A predicate on the second key alone has no usable prefix."""
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        explain = materials.explain({"e_above_hull": 0.21})
        assert explain["stage"] == "COLLSCAN"

    def test_full_key_beats_prefix_when_both_exist(self, materials):
        materials.create_index("formula")
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        explain = materials.explain(
            {"formula": "F3", "e_above_hull": 0.21}
        )
        assert explain["index"] == "formula_1_e_above_hull_-1"
        assert any(r["planSummary"] == "IXSCAN { formula: 1 }"
                   for r in explain["rejectedPlans"])

    def test_equality_plus_range_on_trailing_key(self, materials):
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        docs = materials.find(
            {"formula": "F3", "e_above_hull": {"$lt": 0.5}}
        ).to_list()
        plan = materials.last_plan
        assert plan.kind == "IXSCAN"
        assert docs and all(
            d["formula"] == "F3" and d["e_above_hull"] < 0.5 for d in docs
        )

    def test_results_match_collscan(self, materials):
        query = {"formula": "F7", "e_above_hull": {"$gte": 0.2}}
        expected = sorted(
            d["nsites"] for d in materials.find(query).to_list()
        )
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        got = sorted(d["nsites"] for d in materials.find(query).to_list())
        assert got == expected


class TestSortPushDown:
    def test_index_provides_sort_order(self, materials):
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        explain = materials.explain(
            {"formula": "F3"}, sort=[("e_above_hull", -1)]
        )
        assert explain["stage"] == "IXSCAN"
        assert explain["providesSort"] is True
        assert explain["blockingSort"] is False

    def test_reverse_scan_serves_opposite_direction(self, materials):
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        docs = materials.find({"formula": "F3"}).sort(
            [("e_above_hull", 1)]
        ).to_list()
        hulls = [d["e_above_hull"] for d in docs]
        assert hulls == sorted(hulls)
        assert materials.last_plan.provides_sort

    def test_mixed_direction_mismatch_needs_blocking_sort(self, materials):
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        explain = materials.explain(
            {"formula": "F3"},
            sort=[("e_above_hull", -1), ("band_gap", 1)],
        )
        assert explain["blockingSort"] is True

    def test_sorted_results_match_blocking_sort(self, materials):
        spec = [("e_above_hull", -1)]
        expected = [d["nsites"] for d in
                    materials.find({"formula": "F3"}).sort(spec).to_list()]
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        got = [d["nsites"] for d in
               materials.find({"formula": "F3"}).sort(spec).to_list()]
        assert got == expected


class TestCoveredQueries:
    def test_covered_with_id_suppressed(self, materials):
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        docs = materials.find(
            {"formula": "F3"}, {"formula": 1, "e_above_hull": 1, "_id": 0}
        ).to_list()
        plan = materials.last_plan
        assert plan.covered is True
        assert plan.candidates_examined == 0  # no document fetches
        assert docs
        for d in docs:
            assert set(d) == {"formula", "e_above_hull"}
            assert d["formula"] == "F3"

    def test_not_covered_when_id_included(self, materials):
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        materials.find({"formula": "F3"},
                       {"formula": 1, "e_above_hull": 1}).to_list()
        assert materials.last_plan.covered is False

    def test_covered_results_match_fetched(self, materials):
        query = {"formula": "F9"}
        projection = {"formula": 1, "e_above_hull": 1, "_id": 0}
        expected = sorted(
            (d["e_above_hull"] for d in
             materials.find(query, projection).to_list())
        )
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        got = sorted(
            d["e_above_hull"] for d in
            materials.find(query, projection).to_list()
        )
        assert got == expected

    def test_multikey_index_never_covers(self):
        c = Collection("arrays")
        c.insert_many([{"tags": ["a", "b"], "n": i} for i in range(10)])
        c.create_index("tags")
        c.find({"tags": "a"}, {"tags": 1, "_id": 0}).to_list()
        assert c.last_plan.covered is False


class TestPlanCache:
    def test_second_identical_shape_hits(self, materials):
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        materials.find({"formula": "F1"}).to_list()
        materials.find({"formula": "F2"}).to_list()  # same shape, new value
        stats = materials.plan_cache_stats()
        assert stats["hits"] >= 1
        assert materials.last_plan.cache == "hit"

    def test_shape_distinguishes_operators(self, materials):
        materials.create_index("formula")
        assert canonical_shape({"formula": "F1"}, None, None) != \
            canonical_shape({"formula": {"$gt": "F1"}}, None, None)
        assert canonical_shape({"formula": "F1"}, None, None) == \
            canonical_shape({"formula": "F2"}, None, None)

    def test_create_index_invalidates(self, materials):
        materials.create_index("formula")
        materials.find({"formula": "F1"}).to_list()
        before = materials.plan_cache_stats()
        assert before["size"] == 1
        materials.create_index([("formula", 1), ("band_gap", 1)])
        after = materials.plan_cache_stats()
        assert after["size"] == 0
        assert after["invalidations"] > before["invalidations"]
        # Replanning after the invalidation picks the better new index.
        materials.find({"formula": "F1", "band_gap": 2.0}).to_list()
        assert materials.last_plan.index_name == "formula_1_band_gap_1"

    def test_drop_index_invalidates_and_replans(self, materials):
        materials.create_index("formula")
        materials.find({"formula": "F1"}).to_list()
        assert materials.last_plan.kind == "IXSCAN"
        materials.drop_index("formula_1")
        materials.find({"formula": "F1"}).to_list()
        assert materials.last_plan.kind == "COLLSCAN"

    def test_replan_after_distribution_shift(self):
        """A cached plan that turns unproductive is evicted and replanned."""
        c = Collection("shift")
        c.insert_many([{"grp": i % 5, "flag": 0} for i in range(200)])
        c.create_index("grp")
        c.create_index("flag")
        # Cache a winner for the {grp, flag} shape while 'flag' is
        # perfectly selective for flag=1 (zero entries).
        c.find({"grp": 1, "flag": 1}).to_list()
        cached_index = c.last_plan.index_name
        assert cached_index == "flag_1"
        # Distribution shift: flag=1 becomes universal, so the cached
        # flag index now examines every document for the same shape.
        c.update_many({}, {"$set": {"flag": 1}})
        for _ in range(4):
            c.find({"grp": 1, "flag": 1}).to_list()
        assert c.plan_cache_stats()["replans"] >= 1
        c.find({"grp": 1, "flag": 1}).to_list()
        assert c.last_plan.index_name == "grp_1"

    def test_stats_shape(self, materials):
        stats = materials.plan_cache_stats()
        assert set(stats) >= {"size", "capacity", "hits", "misses",
                              "evictions", "invalidations", "replans"}


class TestHint:
    def test_hint_forces_named_index(self, materials):
        materials.create_index("formula")
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        docs = materials.find(
            {"formula": "F3"}, hint="formula_1"
        ).to_list()
        assert materials.last_plan.index_name == "formula_1"
        assert all(d["formula"] == "F3" for d in docs)

    def test_natural_hint_forces_collscan(self, materials):
        materials.create_index("formula")
        materials.find({"formula": "F3"}, hint="$natural").to_list()
        assert materials.last_plan.kind == "COLLSCAN"

    def test_unknown_hint_raises(self, materials):
        with pytest.raises(DocstoreError):
            materials.find({}, hint="no_such_index").to_list()

    def test_cursor_hint_chains(self, materials):
        materials.create_index("formula")
        cur = materials.find({"formula": "F3"}).hint("formula_1")
        assert cur.to_list()
        assert materials.last_plan.index_name == "formula_1"

    def test_hinted_unusable_index_still_correct(self, materials):
        """Hinting an index the predicate can't seek falls back to a full
        index scan but must return the same rows."""
        materials.create_index("band_gap")
        expected = sorted(
            d["nsites"] for d in materials.find({"formula": "F3"}).to_list()
        )
        got = sorted(
            d["nsites"] for d in
            materials.find({"formula": "F3"}, hint="band_gap_1").to_list()
        )
        assert got == expected


class TestTieBreakDeterminism:
    def test_equal_candidates_break_by_name(self):
        """Two indistinguishable single-field plans: winner is stable
        across repeated planning, picked by specificity then name."""
        c = Collection("ties")
        c.insert_many([{"a": i % 10, "b": i % 10} for i in range(100)])
        c.create_index("a")
        c.create_index("b")
        winners = set()
        for _ in range(5):
            explain = c.explain({"a": 3, "b": 3})
            winners.add(explain["index"])
        assert winners == {"a_1"}


class TestExplain:
    def test_explain_always_runs_planner(self, materials):
        """explain() reports the given query, not a stale last_plan."""
        materials.create_index("formula")
        materials.find({"nsites": 3}).to_list()  # leaves a COLLSCAN plan
        explain = materials.explain({"formula": "F3"})
        assert explain["stage"] == "IXSCAN"
        assert explain["nReturned"] == 25

    def test_all_plans_execution_verbosity(self, materials):
        materials.create_index("formula")
        materials.create_index([("formula", 1), ("e_above_hull", -1)])
        explain = materials.explain({"formula": "F3"},
                                    verbosity="allPlansExecution")
        plans = explain["allPlansExecution"]
        assert len(plans) >= 2
        assert plans[0]["winner"] is True
        assert all("trial" in p for p in plans[1:])

    def test_rejected_plans_nonempty_with_alternatives(self, materials):
        materials.create_index("formula")
        explain = materials.explain({"formula": "F3"})
        assert explain["rejectedPlans"]

    def test_idhack_for_id_equality(self, materials):
        doc = materials.find_one({})
        explain = materials.explain({"_id": doc["_id"]})
        assert explain["stage"] == "IDHACK"
        assert explain["docsExamined"] == 1


class TestIndexUsageAccounting:
    def test_sort_only_consultation_counts(self, materials):
        materials.create_index([("e_above_hull", -1)])
        materials.find({}).sort([("e_above_hull", -1)]).to_list()
        stats = {s["name"]: s for s in materials.index_stats()}
        assert stats["e_above_hull_-1"]["accesses"]["ops"] >= 1

    def test_covered_consultation_counts(self, materials):
        materials.create_index("formula")
        materials.find({"formula": "F1"},
                       {"formula": 1, "_id": 0}).to_list()
        stats = {s["name"]: s for s in materials.index_stats()}
        assert stats["formula_1"]["accesses"]["ops"] >= 1


class TestWireAndStatus:
    def test_plan_cache_status_rollup(self):
        store = DocumentStore()
        coll = store["mp"]["materials"]
        coll.insert_many([{"x": i} for i in range(50)])
        coll.create_index("x")
        coll.find({"x": 3}).to_list()
        coll.find({"x": 4}).to_list()
        status = store["mp"].plan_cache_status()
        assert status["totals"]["hits"] >= 1
        assert "materials" in status["collections"]
        assert store.server_status()["planCache"]["hits"] >= 1
