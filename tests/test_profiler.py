"""Tests for continuous profiling: the sampling profiler, lock-contention
attribution, per-stage aggregation executionStats, and the surfacing layer
(wire ops, /debug endpoints, CLI, warehouse persistence)."""

import json
import random
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import MaterialsAPI, MaterialsAPIServer, QueryEngine
from repro.docstore import (
    DatastoreServer,
    DocumentStore,
    RemoteClient,
)
from repro.docstore.aggregation import (
    MAX_SHAPE_STAGES,
    pipeline_stage_names,
    run_pipeline,
)
from repro.docstore.locks import (
    MAX_CONTENTION_SITES,
    OVERFLOW_SITE,
    RWLock,
)
from repro.errors import DocstoreError
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.obs.profiler import (
    OVERFLOW_STACK,
    SamplingProfiler,
    fold_stack,
    get_profiler,
    start_profiler,
    stop_profiler,
)
from repro.obs.warehouse import TelemetryWarehouse


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = get_registry()
    set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture(autouse=True)
def no_global_profiler():
    """Each test starts and ends with no process-global profiler at all."""
    from repro.obs import profiler as profiler_module

    stop_profiler()
    profiler_module._global_profiler = None
    yield
    stop_profiler()
    profiler_module._global_profiler = None


@pytest.fixture
def store():
    s = DocumentStore()
    yield s
    s.close()


def _get(url):
    try:
        with urllib.request.urlopen(url) as resp:
            body = resp.read()
            if resp.headers.get_content_type() == "text/plain":
                return resp.status, body.decode()
            return resp.status, json.loads(body)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _busy_thread(stop):
    """A thread with a recognizable frame for the sampler to catch."""
    def profiled_hot_loop():
        while not stop.is_set():
            sum(range(50))
    t = threading.Thread(target=profiled_hot_loop, daemon=True)
    t.start()
    return t


# -- the sampling profiler ------------------------------------------------


class TestSamplingProfiler:
    def test_fold_stack_shape(self):
        def inner():
            return fold_stack(sys._getframe())

        folded = inner()
        parts = folded.split(";")
        assert parts[-1] == "test_profiler:inner"
        assert all(":" in p for p in parts)

    def test_sample_once_counts_other_threads(self):
        profiler = SamplingProfiler(hz=50)
        stop = threading.Event()
        t = _busy_thread(stop)
        try:
            sampled = profiler.sample_once()
        finally:
            stop.set()
            t.join()
        assert sampled >= 1
        snap = profiler.snapshot()
        assert snap["samples"] == sampled
        assert snap["passes"] == 1
        assert any("profiled_hot_loop" in line for line in profiler.folded())

    def test_sampler_skips_itself(self):
        profiler = SamplingProfiler()
        profiler.sample_once()
        assert not any("sample_once" in line for line in profiler.folded())

    def test_folded_format_and_order(self):
        profiler = SamplingProfiler()
        profiler._ingest("a;b;c", 3)
        profiler._ingest("a;b;d", 7)
        assert profiler.folded() == ["a;b;d 7", "a;b;c 3"]
        assert profiler.folded(limit=1) == ["a;b;d 7"]
        assert profiler.top_functions() == [("d", 7), ("c", 3)]

    def test_top_k_overflow_mirrors_metrics_cap(self):
        profiler = SamplingProfiler(max_stacks=4)
        for i in range(10):
            profiler._ingest(f"stack_{i}")
        snap = profiler.snapshot()
        assert snap["distinct_stacks"] == 5  # 4 kept + __other__
        assert snap["truncated"] == 6
        assert snap["samples"] == 10
        counts = dict(
            line.rsplit(" ", 1) for line in profiler.folded()
        )
        assert counts[OVERFLOW_STACK] == "6"
        # known stacks keep counting after the cap
        profiler._ingest("stack_0", 5)
        assert profiler.snapshot()["truncated"] == 6

    def test_lifecycle_start_stop_reset(self):
        profiler = SamplingProfiler(hz=200)
        assert not profiler.running
        profiler.start()
        assert profiler.running
        assert profiler.start() is profiler  # idempotent
        stop = threading.Event()
        t = _busy_thread(stop)
        try:
            deadline = time.time() + 5
            while profiler.snapshot()["samples"] == 0 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            stop.set()
            t.join()
        snap = profiler.stop()
        assert not profiler.running
        assert snap["samples"] > 0
        assert snap["duration_s"] > 0
        assert snap["achieved_hz"] > 0
        # aggregates survive the stop until reset
        assert profiler.snapshot()["samples"] == snap["samples"]
        profiler.reset()
        assert profiler.snapshot()["samples"] == 0

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_max_depth_bounds_folded_lines(self):
        profiler = SamplingProfiler(max_depth=3)

        def recurse(n):
            if n == 0:
                stop = threading.Event()
                caught = []

                def sample():
                    caught.append(profiler.sample_once())
                t = threading.Thread(target=sample)
                t.start()
                t.join()
                return
            recurse(n - 1)

        recurse(20)
        for line in profiler.folded():
            stack = line.rsplit(" ", 1)[0]
            assert len(stack.split(";")) <= 3

    def test_global_profiler_shared_and_idempotent(self):
        assert get_profiler() is None or not get_profiler().running
        p1 = start_profiler(hz=120)
        p2 = start_profiler(hz=999)  # running: returns p1 unchanged
        assert p1 is p2
        assert p2.hz == 120
        assert get_profiler() is p1
        snap = stop_profiler()
        assert snap is not None and not p1.running


# -- lock-contention attribution ------------------------------------------


def _hold_write(lock, held, release):
    def writer_hold_site():
        with lock.write():
            held.set()
            release.wait(timeout=5)
    t = threading.Thread(target=writer_hold_site, daemon=True)
    t.start()
    held.wait(timeout=5)
    return t


class TestLockContention:
    def test_reader_blocked_by_writer_attributed(self):
        lock = RWLock(name="m")
        held, release = threading.Event(), threading.Event()
        t = _hold_write(lock, held, release)
        results = []

        def reader_wait_site():
            with lock.read():
                results.append(True)

        r = threading.Thread(target=reader_wait_site)
        r.start()
        time.sleep(0.05)  # comfortably above the contention floor
        release.set()
        r.join(timeout=5)
        t.join(timeout=5)
        assert results == [True]
        report = lock.contention_report()
        assert report, "wait above the floor must produce attribution"
        row = report[0]
        assert row["mode"] == "read"
        assert "reader_wait_site" in row["waiter"]
        assert "writer_hold_site" in row["holder"]
        assert row["count"] == 1
        assert row["wait_ms"] >= 40
        assert row["max_wait_ms"] >= 40
        assert lock.stats()["contention_sites"] == 1

    def test_writer_blocked_by_reader_attributed(self):
        lock = RWLock(name="m")
        held, release = threading.Event(), threading.Event()

        def reader_hold_site():
            with lock.read():
                held.set()
                release.wait(timeout=5)

        t = threading.Thread(target=reader_hold_site, daemon=True)
        t.start()
        held.wait(timeout=5)

        def writer_wait_site():
            with lock.write():
                pass

        w = threading.Thread(target=writer_wait_site)
        w.start()
        time.sleep(0.05)
        release.set()
        w.join(timeout=5)
        t.join(timeout=5)
        report = lock.contention_report()
        assert report[0]["mode"] == "write"
        assert "writer_wait_site" in report[0]["waiter"]
        assert "reader_hold_site" in report[0]["holder"]

    def test_reentrant_read_under_write_not_attributed(self):
        """find_one_and_update's read-under-own-write must neither block
        nor pollute the contention report."""
        lock = RWLock(name="m")
        with lock.write():
            with lock.read():
                pass
        stats = lock.stats()
        assert stats["read_acquires"] == 1
        assert stats["write_acquires"] == 1
        assert stats["read_contended"] == 0
        assert stats["contention_sites"] == 0
        assert lock.contention_report() == []

    def test_writer_preference_wait_accounting(self):
        """A reader arriving behind a *waiting* writer waits too, and its
        holder is attributed as the waiting writer placeholder."""
        lock = RWLock(name="m")
        held, release = threading.Event(), threading.Event()

        def first_reader():
            with lock.read():
                held.set()
                release.wait(timeout=5)

        t1 = threading.Thread(target=first_reader, daemon=True)
        t1.start()
        held.wait(timeout=5)

        writer_in = threading.Event()

        def queued_writer():
            with lock.write():
                writer_in.set()
                time.sleep(0.05)

        w = threading.Thread(target=queued_writer)
        w.start()
        deadline = time.time() + 5
        while not lock.stats()["waiting_writers"] and time.time() < deadline:
            time.sleep(0.005)

        def late_reader():
            with lock.read():
                pass

        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.05)
        release.set()
        r.join(timeout=5)
        w.join(timeout=5)
        t1.join(timeout=5)
        assert writer_in.is_set()
        stats = lock.stats()
        assert stats["write_contended"] == 1
        assert stats["read_contended"] >= 1
        assert stats["read_wait_ms"] > 0 and stats["write_wait_ms"] > 0
        modes = {row["mode"] for row in lock.contention_report()}
        assert modes == {"read", "write"}
        read_row = [r_ for r_ in lock.contention_report()
                    if r_["mode"] == "read"][0]
        # the late reader queued behind the writer: holder is either the
        # reader the writer waits on or the waiting-writer placeholder
        assert ("first_reader" in read_row["holder"]
                or read_row["holder"] == "<waiting-writer>")

    def test_contention_rollup_bounded(self):
        lock = RWLock(name="m")
        with lock._cond:
            for i in range(MAX_CONTENTION_SITES + 20):
                lock._note_contention("read", f"site_{i}:f:1", "h:g:2",
                                      0.001)
        assert len(lock._contention) == MAX_CONTENTION_SITES + 1
        overflow = lock._contention[("read", OVERFLOW_SITE, OVERFLOW_SITE)]
        assert overflow["count"] == 20
        report = lock.contention_report(limit=MAX_CONTENTION_SITES + 10)
        assert len(report) == MAX_CONTENTION_SITES + 1

    def test_lock_stats_stable_under_churn(self):
        """Concurrent readers/writers with attribution on: counters stay
        consistent and stats() never raises mid-flight."""
        lock = RWLock(name="m")
        n_threads, n_iters = 8, 60
        errors = []

        def churn(i):
            try:
                for j in range(n_iters):
                    if (i + j) % 4 == 0:
                        with lock.write():
                            time.sleep(0.0002)
                    else:
                        with lock.read():
                            time.sleep(0.0001)
                    lock.stats()  # must be safe mid-churn
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = lock.stats()
        total = stats["read_acquires"] + stats["write_acquires"]
        assert total == n_threads * n_iters
        assert stats["active_readers"] == 0
        assert not stats["writer_held"]
        assert stats["waiting_writers"] == 0
        assert stats["contention_sites"] <= MAX_CONTENTION_SITES + 1
        assert stats["read_wait_ms"] >= 0 and stats["write_wait_ms"] >= 0

    def test_upgrade_still_refused(self):
        lock = RWLock(name="m")
        with lock.read():
            with pytest.raises(DocstoreError):
                lock.acquire_write()

    def test_store_lock_report_rolls_up(self, store):
        coll = store["mp"]["materials"]
        coll.insert_one({"x": 1})
        held, release = threading.Event(), threading.Event()
        t = _hold_write(coll._lock, held, release)
        reader = threading.Thread(target=lambda: coll.find_one({"x": 1}))
        reader.start()
        time.sleep(0.05)
        release.set()
        reader.join(timeout=5)
        t.join(timeout=5)
        report = store.lock_report()
        assert report["totals"]["read_contended"] >= 1
        top = report["top_contended"]
        assert top and top[0]["db"] == "mp" and top[0]["coll"] == "materials"
        assert "find_one" in top[0]["waiter"]
        # server_status carries the same rows
        status_top = store.server_status()["locks"]["top_contended"]
        assert status_top and status_top[0]["waiter"] == top[0]["waiter"]


# -- per-stage aggregation executionStats ---------------------------------


class TestAggregationStats:
    def _coll(self, store, n=300):
        coll = store["mp"]["materials"]
        coll.insert_many([
            {"material_id": f"mp-{i}", "nelements": i % 5,
             "e_above_hull": (i % 50) / 100.0}
            for i in range(n)
        ])
        return coll

    def test_explain_true_returns_stage_stats(self, store):
        coll = self._coll(store)
        pipeline = [
            {"$match": {"nelements": {"$gte": 1}}},
            {"$group": {"_id": "$nelements", "n": {"$sum": 1}}},
            {"$sort": {"n": -1}},
        ]
        report = coll.aggregate(pipeline, explain=True)
        assert report["ns"] == "mp.materials"
        assert report["pipeline"] == ["$match", "$group", "$sort"]
        stages = report["stages"]
        assert [s["stage"] for s in stages] == [
            "$cursor", "$match", "$group", "$sort"
        ]
        cursor, match, group, sort = stages
        assert cursor["docs_in"] == 300 and cursor["docs_out"] == 300
        assert match["docs_in"] == 300 and match["docs_out"] == 240
        assert group["docs_in"] == 240 and group["docs_out"] == 4
        assert group["state_size"] == 4
        assert sort["docs_in"] == 4 and sort["docs_out"] == 4
        assert sort["state_size"] == 4
        assert report["nReturned"] == 4
        assert all(s["elapsed_ms"] >= 0 for s in stages)

    def test_stage_elapsed_sums_close_to_total(self, store):
        """Acceptance: per-stage elapsed sums to within 20% of the
        reported executionTimeMillis."""
        coll = self._coll(store, n=2000)
        pipeline = [
            {"$match": {"e_above_hull": {"$lt": 0.4}}},
            {"$group": {"_id": "$nelements",
                        "hull": {"$avg": "$e_above_hull"}}},
            {"$sort": {"hull": 1}},
        ]
        report = coll.aggregate(pipeline, explain=True)
        total = report["executionTimeMillis"]
        stage_sum = sum(s["elapsed_ms"] for s in report["stages"])
        assert total > 0
        assert abs(stage_sum - total) <= 0.2 * total

    def test_explain_pipeline_kwarg(self, store):
        coll = self._coll(store)
        report = coll.explain(pipeline=[{"$count": "n"}])
        assert report["pipeline"] == ["$count"]
        assert report["nReturned"] == 1

    def test_aggregate_profile_shape_is_stage_list(self, store):
        """Satellite: the profiled query shape is a bounded ordered list
        of stage names, not a pipeline length."""
        db = store["mp"]
        coll = self._coll(store)
        db.set_profiling_level(2)
        coll.aggregate([
            {"$match": {"nelements": 2}},
            {"$group": {"_id": "$nelements"}},
        ])
        entry = [e for e in db.profile_log if e["op"] == "aggregate"][-1]
        assert entry["query"] == {"pipeline": ["$match", "$group"]}
        assert entry["nreturned"] == 1
        assert "stages" in entry  # level 2: stats ride along
        assert [s["stage"] for s in entry["stages"]] == [
            "$cursor", "$match", "$group"
        ]

    def test_profile_stage_stats_gated_when_fast(self, store):
        db = store["mp"]
        coll = self._coll(store, n=10)
        db.set_profiling_level(1, slowms=10_000)
        coll.aggregate([{"$match": {"nelements": 1}}])
        entry = [e for e in db.profile_log if e["op"] == "aggregate"][-1]
        # level 1 records the read, but fast ops don't carry bulky stats
        assert "stages" not in entry
        db.set_profiling_level(2, slowms=10_000)
        coll.aggregate([{"$match": {"nelements": 1}}])
        entry = [e for e in db.profile_log if e["op"] == "aggregate"][-1]
        assert "stages" in entry  # level 2 always carries stats

    def test_pipeline_stage_names_bounded(self):
        pipeline = [{"$match": {}}] * (MAX_SHAPE_STAGES + 3)
        names = pipeline_stage_names(pipeline)
        assert len(names) == MAX_SHAPE_STAGES + 1
        assert names[-1] == "+3 more"
        assert pipeline_stage_names([{"$match": {}, "$sort": {}}]) == [
            "<invalid>"
        ]
        assert pipeline_stage_names([]) == []

    def test_run_pipeline_stage_stats_optional(self):
        docs = [{"x": i} for i in range(10)]
        out = run_pipeline(docs, [{"$match": {"x": {"$lt": 5}}}])
        assert len(out) == 5  # default path unchanged
        stats = []
        run_pipeline(docs, [{"$match": {"x": {"$lt": 5}}}],
                     stage_stats=stats)
        assert stats[0]["docs_in"] == 10 and stats[0]["docs_out"] == 5

    def test_sample_uses_module_local_rng(self):
        """Satellite: $sample must not perturb the global random state."""
        docs = [{"x": i} for i in range(100)]
        random.seed(1234)
        before = random.getstate()
        run_pipeline(docs, [{"$sample": {"size": 5}}])
        assert random.getstate() == before
        # seeded draws stay deterministic and isolated
        a = run_pipeline(docs, [{"$sample": {"size": 5, "seed": 7}}])
        b = run_pipeline(docs, [{"$sample": {"size": 5, "seed": 7}}])
        assert a == b
        assert random.getstate() == before

    def test_advisor_match_first_recommendation(self, store):
        from repro.obs.advisor import IndexAdvisor

        db = store["mp"]
        coll = self._coll(store)
        db.set_profiling_level(2)
        for _ in range(3):
            coll.aggregate([
                {"$group": {"_id": "$nelements", "n": {"$sum": 1}}},
                {"$match": {"n": {"$gte": 1}}},
            ])
        recs = IndexAdvisor(db).pipeline_recommendations()
        assert recs
        rec = recs[0]
        assert rec["ns"] == "mp.materials"
        assert "$match" in rec["suggestion"]
        assert "$group" in rec["suggestion"]
        assert rec["occurrences"] == 3

    def test_advisor_no_match_recommendation(self, store):
        from repro.obs.advisor import IndexAdvisor

        db = store["mp"]
        coll = self._coll(store)
        db.set_profiling_level(2)
        coll.aggregate([{"$group": {"_id": "$nelements"}}])
        recs = IndexAdvisor(db).pipeline_recommendations()
        assert any("no $match" in r["suggestion"] for r in recs)


# -- the surfacing layer: wire, HTTP, CLI, warehouse ----------------------


class TestWireSurface:
    def test_profile_ops_over_the_wire(self, store):
        store["mp"]["m"].insert_many([{"i": i} for i in range(50)])
        with DatastoreServer(store, port=0).start() as server:
            with RemoteClient(*server.address) as client:
                started = client.profile("start", hz=200)
                assert started["running"] and started["hz"] == 200
                assert started["already_running"] is False
                # generate server-side work so stacks accumulate
                deadline = time.time() + 5
                while (client.profile("snapshot")["samples"] == 0
                       and time.time() < deadline):
                    client["mp"]["m"].find({"i": {"$gte": 0}})
                flame = client.profile("flame")
                assert flame and all(
                    line.rsplit(" ", 1)[1].isdigit() for line in flame
                )
                snap = client.profile("snapshot", limit=3)
                assert snap["samples"] > 0 and len(snap["stacks"]) <= 3
                final = client.profile("stop")
                assert final["samples"] >= snap["samples"]
                assert client.profile("snapshot")["running"] is False
                with pytest.raises(DocstoreError):
                    client.profile("florp")

    def test_profile_snapshot_without_profiler(self, store):
        with DatastoreServer(store, port=0).start() as server:
            with RemoteClient(*server.address) as client:
                snap = client.profile("snapshot")
                assert snap == {"running": False, "samples": 0,
                                "stacks": []}
                assert client.profile("flame") == []

    def test_lock_report_over_the_wire(self, store):
        coll = store["mp"]["m"]
        coll.insert_one({"x": 1})
        held, release = threading.Event(), threading.Event()
        t = _hold_write(coll._lock, held, release)
        reader = threading.Thread(target=lambda: coll.find_one({}))
        reader.start()
        time.sleep(0.05)
        release.set()
        reader.join(timeout=5)
        t.join(timeout=5)
        with DatastoreServer(store, port=0).start() as server:
            with RemoteClient(*server.address) as client:
                report = client.lock_report(limit=5)
                assert report["totals"]["read_contended"] >= 1
                assert report["top_contended"]
        assert not get_profiler() or not get_profiler().running

    def test_aggregate_explain_over_the_wire(self, store):
        store["mp"]["m"].insert_many([{"i": i % 3} for i in range(30)])
        with DatastoreServer(store, port=0).start() as server:
            with RemoteClient(*server.address) as client:
                coll = client["mp"]["m"]
                report = coll.aggregate(
                    [{"$group": {"_id": "$i"}}], explain=True
                )
                assert report["pipeline"] == ["$group"]
                assert report["stages"][0]["stage"] == "$cursor"
                report2 = coll.explain(pipeline=[{"$count": "n"}])
                assert report2["pipeline"] == ["$count"]


class TestDebugEndpoints:
    @pytest.fixture
    def served(self, store):
        store["mp"]["materials"].insert_many([
            {"material_id": f"mp-{i}", "band_gap": 1.0} for i in range(3)
        ])
        api = MaterialsAPI(QueryEngine(store["mp"]))
        server = MaterialsAPIServer(api).start()
        yield server, store
        server.stop()

    def test_debug_profile_lifecycle(self, served):
        server, _ = served
        code, doc = _get(server.base_url + "/debug/profile")
        assert code == 200 and doc["running"] is False
        code, doc = _get(
            server.base_url + "/debug/profile?action=start&hz=150"
        )
        assert code == 200 and doc["running"] and doc["hz"] == 150
        stop = threading.Event()
        t = _busy_thread(stop)
        try:
            deadline = time.time() + 5
            samples = 0
            while not samples and time.time() < deadline:
                code, doc = _get(server.base_url + "/debug/profile?limit=5")
                samples = doc["samples"]
        finally:
            stop.set()
            t.join()
        assert samples > 0 and len(doc["stacks"]) <= 5
        code, text = _get(server.base_url + "/debug/flamegraph")
        assert code == 200 and "profiled_hot_loop" in text
        code, doc = _get(server.base_url + "/debug/profile?action=reset")
        assert code == 200 and doc["samples"] == 0
        code, doc = _get(server.base_url + "/debug/profile?action=stop")
        assert code == 200
        assert get_profiler() is None or not get_profiler().running

    def test_debug_locks(self, served):
        server, store = served
        coll = store["mp"]["materials"]
        held, release = threading.Event(), threading.Event()
        t = _hold_write(coll._lock, held, release)
        reader = threading.Thread(target=lambda: coll.find_one({}))
        reader.start()
        time.sleep(0.05)
        release.set()
        reader.join(timeout=5)
        t.join(timeout=5)
        code, doc = _get(server.base_url + "/debug/locks?limit=3")
        assert code == 200
        assert doc["totals"]["read_contended"] >= 1
        assert doc["top_contended"]

    def test_debug_unknown_404(self, served):
        server, _ = served
        code, _doc = _get(server.base_url + "/debug/nope")
        assert code == 404


class TestProfileCLI:
    def _run(self, capsys, *argv):
        from repro.cli import main

        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_local_snapshot_and_flame(self, capsys):
        out = self._run(capsys, "profile", "--duration", "0.2",
                        "--hz", "200")
        assert "profiler:" in out and "samples" in out
        out = self._run(capsys, "profile", "--duration", "0.2", "--flame")
        lines = [l for l in out.splitlines() if l.strip()]
        assert lines and all(
            l.rsplit(" ", 1)[1].isdigit() for l in lines
        )

    def test_local_json(self, capsys):
        out = self._run(capsys, "profile", "--duration", "0.2", "--json")
        snap = json.loads(out)
        assert snap["samples"] >= 0 and "stacks" in snap

    def test_flame_over_the_wire(self, capsys, store):
        """Acceptance: `repro profile --flame` emits non-empty folded
        stacks over the wire against a live server."""
        coll = store["mp"]["m"]
        coll.insert_many([{"i": i} for i in range(100)])
        with DatastoreServer(store, port=0).start() as server:
            stop = threading.Event()

            def load():
                with RemoteClient(*server.address) as client:
                    while not stop.is_set():
                        client["mp"]["m"].find({"i": {"$gte": 0}})

            t = threading.Thread(target=load, daemon=True)
            t.start()
            try:
                out = self._run(
                    capsys, "profile", "--flame", "--duration", "0.5",
                    "--host", server.address[0],
                    "--port", str(server.port),
                )
            finally:
                stop.set()
                t.join()
        lines = [l for l in out.splitlines() if l.strip()]
        assert lines, "flame output must be non-empty"
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack or ":" in stack
            assert int(count) > 0
        # the CLI stopped the profiler it started on the server
        assert get_profiler() is None or not get_profiler().running

    def test_locks_over_the_wire(self, capsys, store):
        coll = store["mp"]["m"]
        coll.insert_one({"x": 1})
        held, release = threading.Event(), threading.Event()
        t = _hold_write(coll._lock, held, release)
        reader = threading.Thread(target=lambda: coll.find_one({}))
        reader.start()
        time.sleep(0.05)
        release.set()
        reader.join(timeout=5)
        t.join(timeout=5)
        with DatastoreServer(store, port=0).start() as server:
            out = self._run(
                capsys, "profile", "--locks", "--json",
                "--host", server.address[0], "--port", str(server.port),
            )
        report = json.loads(out)
        assert report["top_contended"]

    def test_cli_leaves_running_profiler_alone(self, capsys, store):
        with DatastoreServer(store, port=0).start() as server:
            with RemoteClient(*server.address) as client:
                client.profile("start", hz=50)
                self._run(capsys, "profile", "--duration", "0.1",
                          "--host", server.address[0],
                          "--port", str(server.port))
                assert client.profile("snapshot")["running"] is True
                client.profile("stop")


class TestWarehousePersistence:
    def test_profiles_collection_has_ttl(self, store):
        wh = TelemetryWarehouse(store, profiles_ttl_s=120.0)
        info = wh.db["profiles"].index_information()["ts_ttl"]
        assert info["expireAfterSeconds"] == 120.0

    def test_tick_persists_running_profiler(self, store):
        wh = TelemetryWarehouse(store)
        assert wh.tick()["profiler_snapshots"] == 0  # no profiler yet
        profiler = start_profiler(hz=200)
        stop = threading.Event()
        t = _busy_thread(stop)
        try:
            deadline = time.time() + 5
            while (profiler.snapshot()["samples"] == 0
                   and time.time() < deadline):
                time.sleep(0.01)
            assert wh.tick()["profiler_snapshots"] == 1
        finally:
            stop.set()
            t.join()
        rows = wh.profiler_snapshots()
        assert len(rows) == 1
        assert rows[0]["samples"] > 0 and rows[0]["stacks"]
        assert wh.stats()["profiles"] == 1
        stop_profiler()
        # stopped profiler: ticks stop recording
        assert wh.tick()["profiler_snapshots"] == 0

    def test_snapshot_stack_count_bounded(self, store):
        wh = TelemetryWarehouse(store)
        profiler = start_profiler(hz=50)
        for i in range(100):
            profiler._ingest(f"s{i};leaf_{i}")
        assert wh.record_profiler_snapshot(stacks=10) == 1
        row = wh.profiler_snapshots()[0]
        assert len(row["stacks"]) == 10
        assert row["distinct_stacks"] == 100
