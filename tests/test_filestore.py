"""Tests for the content-addressed file store and loader archiving."""

import os

import pytest

from repro.docstore import DocumentStore, FileStore
from repro.errors import DocstoreError


@pytest.fixture
def store(tmp_path):
    return FileStore(str(tmp_path / "blobs"))


class TestFileStore:
    def test_put_get_roundtrip(self, store):
        ref = store.put_bytes(b"hello raw output", filename="OUTCAR")
        assert ref["length"] == 16
        assert ref["filename"] == "OUTCAR"
        assert store.get(ref) == b"hello raw output"
        assert store.get(ref["blob_id"]) == b"hello raw output"

    def test_content_addressing_dedups(self, store):
        a = store.put_bytes(b"same bytes")
        b = store.put_bytes(b"same bytes", filename="other-name")
        assert a["blob_id"] == b["blob_id"]
        assert store.stats()["blobs"] == 1

    def test_different_content_different_ids(self, store):
        a = store.put_bytes(b"one")
        b = store.put_bytes(b"two")
        assert a["blob_id"] != b["blob_id"]

    def test_put_file_streams(self, store, tmp_path):
        path = str(tmp_path / "big.txt")
        with open(path, "w") as fh:
            fh.write("x" * 200_000)
        ref = store.put_file(path)
        assert ref["length"] == 200_000
        assert store.get(ref) == b"x" * 200_000

    def test_missing_blob_raises(self, store):
        with pytest.raises(DocstoreError):
            store.get("0" * 40)

    def test_integrity_check(self, store):
        ref = store.put_bytes(b"pristine")
        path = store._path_for(ref["blob_id"])
        with open(path, "wb") as fh:
            fh.write(b"tampered")
        with pytest.raises(DocstoreError):
            store.get(ref)

    def test_delete(self, store):
        ref = store.put_bytes(b"temp")
        assert store.exists(ref)
        assert store.delete(ref)
        assert not store.exists(ref)
        assert not store.delete(ref)

    def test_archive_directory_with_patterns(self, store, tmp_path):
        d = tmp_path / "run"
        d.mkdir()
        (d / "OUTCAR").write_text("raw " * 100)
        (d / "OSZICAR").write_text("iterations")
        (d / "WAVECAR").write_text("enormous and useless")
        refs = store.archive_directory(str(d), ["OUTCAR", "OSZICAR"])
        assert set(refs) == {"OUTCAR", "OSZICAR"}
        assert store.get(refs["OUTCAR"]).startswith(b"raw ")


class TestLoaderArchiving:
    def test_tasks_reference_raw_blobs(self, tmp_path):
        from repro.builders import TaskLoader
        from repro.dft import FakeVASP, Resources, SCFParameters
        from repro.matgen import make_prototype

        run_dir = str(tmp_path / "run")
        FakeVASP().run(
            make_prototype("rocksalt", ["Na", "Cl"]),
            SCFParameters(amix=0.15, algo="All", nelm=500),
            Resources(walltime_s=1e9, memory_mb=1e6), run_dir=run_dir,
        )
        db = DocumentStore()["mp"]
        blobs = FileStore(str(tmp_path / "blobs"))
        loader = TaskLoader(db, file_store=blobs)
        doc = loader.load_run_directory(run_dir, mps_id="mps-1")

        refs = doc["raw_files"]
        assert {"OUTCAR", "OSZICAR", "EIGENVAL"} <= set(refs)
        # The reference resolves to the actual raw bytes...
        outcar = blobs.get(refs["OUTCAR"])
        assert b"CHARGE DENSITY GRID" in outcar
        # ...while the stored task document stays small.
        from repro.docstore.documents import doc_size_bytes

        stored = db["tasks"].find_one({"mps_id": "mps-1"})
        assert doc_size_bytes(stored) < refs["OUTCAR"]["length"] / 10

    def test_duplicate_runs_share_blobs(self, tmp_path):
        """Identical raw files across runs are stored once."""
        from repro.builders import TaskLoader
        from repro.dft import FakeVASP, Resources, SCFParameters
        from repro.matgen import make_prototype

        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        for i in range(2):
            FakeVASP().run(
                nacl, SCFParameters(amix=0.15, algo="All", nelm=500),
                Resources(walltime_s=1e9, memory_mb=1e6),
                run_dir=str(tmp_path / f"run{i}"),
            )
        db = DocumentStore()["mp"]
        blobs = FileStore(str(tmp_path / "blobs"))
        loader = TaskLoader(db, file_store=blobs)
        loader.load_tree(str(tmp_path))
        # Two runs of the same structure produce identical OUTCARs: the
        # content-addressed store holds one copy per distinct file.
        stats = blobs.stats()
        assert db["tasks"].count_documents() == 2
        assert stats["blobs"] == 3  # OUTCAR + OSZICAR + EIGENVAL, shared
