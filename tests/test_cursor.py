"""Tests for cursors: sort/skip/limit/projection and laziness."""

import pytest

from repro.docstore import Collection
from repro.errors import DocstoreError


@pytest.fixture
def coll():
    c = Collection("materials")
    c.insert_many(
        [
            {"formula": "LiFePO4", "energy": -6.2, "nsites": 28, "meta": {"src": "icsd"}},
            {"formula": "LiCoO2", "energy": -5.9, "nsites": 4, "meta": {"src": "user"}},
            {"formula": "Fe2O3", "energy": -7.1, "nsites": 10, "meta": {"src": "icsd"}},
            {"formula": "NaCl", "energy": -3.2, "nsites": 2, "meta": {"src": "icsd"}},
            {"formula": "Si", "energy": -5.4, "nsites": 2, "meta": {"src": "user"}},
        ]
    )
    return c


class TestSort:
    def test_ascending(self, coll):
        names = [d["formula"] for d in coll.find().sort("energy", 1)]
        assert names[0] == "Fe2O3"
        assert names[-1] == "NaCl"

    def test_descending(self, coll):
        names = [d["formula"] for d in coll.find().sort("energy", -1)]
        assert names[0] == "NaCl"

    def test_compound_sort(self, coll):
        docs = coll.find().sort([("nsites", 1), ("energy", 1)]).to_list()
        assert [d["formula"] for d in docs[:2]] == ["Si", "NaCl"]

    def test_sort_on_nested_field(self, coll):
        docs = coll.find().sort("meta.src", 1).to_list()
        assert docs[0]["meta"]["src"] == "icsd"

    def test_sort_missing_fields_first(self, coll):
        coll.insert_one({"formula": "X"})
        docs = coll.find().sort("energy", 1).to_list()
        assert docs[0]["formula"] == "X"

    def test_invalid_direction(self, coll):
        with pytest.raises(DocstoreError):
            coll.find().sort("energy", 2)


class TestSkipLimit:
    def test_skip(self, coll):
        assert len(coll.find().skip(2).to_list()) == 3

    def test_limit(self, coll):
        assert len(coll.find().limit(2).to_list()) == 2

    def test_skip_limit_paging(self, coll):
        all_names = [d["formula"] for d in coll.find().sort("formula", 1)]
        page1 = [d["formula"] for d in coll.find().sort("formula", 1).limit(2)]
        page2 = [d["formula"] for d in coll.find().sort("formula", 1).skip(2).limit(2)]
        assert page1 + page2 == all_names[:4]

    def test_negative_skip_rejected(self, coll):
        with pytest.raises(DocstoreError):
            coll.find().skip(-1)

    def test_zero_limit_means_unlimited(self, coll):
        assert len(coll.find().limit(0).to_list()) == 5


class TestProjection:
    def test_include(self, coll):
        doc = coll.find({"formula": "Si"}, {"energy": 1}).to_list()[0]
        assert set(doc) == {"_id", "energy"}

    def test_nested_include(self, coll):
        doc = coll.find({"formula": "Si"}, {"meta.src": 1, "_id": 0}).to_list()[0]
        assert doc == {"meta": {"src": "user"}}

    def test_exclude(self, coll):
        doc = coll.find({"formula": "Si"}, {"meta": 0, "_id": 0}).to_list()[0]
        assert "meta" not in doc and "energy" in doc

    def test_mixing_rejected(self, coll):
        with pytest.raises(DocstoreError):
            coll.find({}, {"a": 1, "b": 0}).to_list()


class TestCursorBehaviour:
    def test_lazy_reexecution_sees_new_docs(self, coll):
        cursor = coll.find({"meta.src": "icsd"})
        assert cursor.count() == 3
        coll.insert_one({"formula": "MgO", "meta": {"src": "icsd"}})
        assert cursor.count() == 4

    def test_first(self, coll):
        assert coll.find().sort("energy", 1).first()["formula"] == "Fe2O3"
        assert coll.find({"formula": "Zz"}).first() is None

    def test_getitem(self, coll):
        cursor = coll.find().sort("formula", 1)
        assert cursor[0]["formula"] == "Fe2O3"

    def test_distinct_via_cursor(self, coll):
        assert sorted(coll.find().distinct("meta.src")) == ["icsd", "user"]

    def test_iteration(self, coll):
        count = sum(1 for _ in coll.find())
        assert count == 5
