"""Tests for dotted-path document utilities and extended JSON."""

import pytest

from repro.docstore import MISSING, ObjectId, document_from_json, document_to_json
from repro.docstore.documents import (
    deep_copy_doc,
    doc_size_bytes,
    get_path,
    get_path_multi,
    set_path,
    unset_path,
    validate_document,
    walk,
)
from repro.errors import DocstoreError


@pytest.fixture
def task_doc():
    """A miniature version of a Materials Project task document."""
    return {
        "task_id": "mp-1234",
        "spec": {
            "vasp": {"incar": {"ENCUT": 520, "ISPIN": 2}, "kpoints": [4, 4, 4]},
            "structure": {"formula": "Fe2O3", "nsites": 10},
        },
        "runs": [
            {"walltime": 3600, "converged": False},
            {"walltime": 7200, "converged": True},
        ],
        "elements": ["Fe", "O"],
    }


class TestGetPath:
    def test_top_level(self, task_doc):
        assert get_path(task_doc, "task_id") == "mp-1234"

    def test_nested(self, task_doc):
        assert get_path(task_doc, "spec.vasp.incar.ENCUT") == 520

    def test_array_index(self, task_doc):
        assert get_path(task_doc, "runs.1.converged") is True
        assert get_path(task_doc, "spec.vasp.kpoints.0") == 4

    def test_missing_returns_sentinel(self, task_doc):
        assert get_path(task_doc, "spec.vasp.incar.NSW") is MISSING
        assert get_path(task_doc, "nope.deeper") is MISSING

    def test_out_of_range_index(self, task_doc):
        assert get_path(task_doc, "runs.5.walltime") is MISSING

    def test_scalar_traversal_stops(self, task_doc):
        assert get_path(task_doc, "task_id.sub") is MISSING

    def test_empty_path_component_rejected(self, task_doc):
        with pytest.raises(DocstoreError):
            get_path(task_doc, "a..b")
        with pytest.raises(DocstoreError):
            get_path(task_doc, "")


class TestGetPathMulti:
    def test_scalar(self, task_doc):
        assert get_path_multi(task_doc, "task_id") == ["mp-1234"]

    def test_fans_out_over_arrays(self, task_doc):
        values = get_path_multi(task_doc, "runs.walltime")
        assert sorted(values) == [3600, 7200]

    def test_includes_array_itself(self, task_doc):
        values = get_path_multi(task_doc, "elements")
        assert ["Fe", "O"] in values

    def test_missing_is_empty(self, task_doc):
        assert get_path_multi(task_doc, "does.not.exist") == []


class TestSetUnset:
    def test_set_creates_intermediates(self):
        doc = {}
        set_path(doc, "a.b.c", 1)
        assert doc == {"a": {"b": {"c": 1}}}

    def test_set_creates_lists_for_numeric(self):
        doc = {}
        set_path(doc, "a.2", "x")
        assert doc == {"a": [None, None, "x"]}

    def test_set_overwrites(self, task_doc):
        set_path(task_doc, "spec.vasp.incar.ENCUT", 600)
        assert get_path(task_doc, "spec.vasp.incar.ENCUT") == 600

    def test_set_into_existing_array(self, task_doc):
        set_path(task_doc, "runs.0.walltime", 1800)
        assert task_doc["runs"][0]["walltime"] == 1800

    def test_set_on_scalar_raises(self, task_doc):
        with pytest.raises(DocstoreError):
            set_path(task_doc, "task_id.x", 1)

    def test_unset_removes_field(self, task_doc):
        assert unset_path(task_doc, "spec.vasp.incar.ISPIN")
        assert get_path(task_doc, "spec.vasp.incar.ISPIN") is MISSING

    def test_unset_missing_returns_false(self, task_doc):
        assert not unset_path(task_doc, "spec.vasp.incar.NSW")

    def test_unset_array_element_nulls_in_place(self, task_doc):
        assert unset_path(task_doc, "elements.0")
        assert task_doc["elements"] == [None, "O"]


class TestWalk:
    def test_leaf_count(self):
        doc = {"a": 1, "b": {"c": [2, 3]}}
        leaves = dict(walk(doc))
        assert leaves == {"a": 1, "b.c.0": 2, "b.c.1": 3}

    def test_empty_containers_are_leaves(self):
        doc = {"a": {}, "b": []}
        leaves = dict(walk(doc))
        assert leaves == {"a": {}, "b": []}


class TestDeepCopy:
    def test_mutating_copy_leaves_original(self, task_doc):
        copy = deep_copy_doc(task_doc)
        copy["spec"]["vasp"]["incar"]["ENCUT"] = 999
        copy["runs"].append({})
        assert task_doc["spec"]["vasp"]["incar"]["ENCUT"] == 520
        assert len(task_doc["runs"]) == 2

    def test_objectids_shared_not_copied(self):
        oid = ObjectId()
        copy = deep_copy_doc({"_id": oid})
        assert copy["_id"] is oid

    def test_tuples_become_lists(self):
        assert deep_copy_doc({"a": (1, 2)}) == {"a": [1, 2]}


class TestValidation:
    def test_accepts_json_like(self, task_doc):
        validate_document(task_doc)

    def test_rejects_non_string_keys(self):
        with pytest.raises(DocstoreError):
            validate_document({1: "x"})

    def test_rejects_exotic_values(self):
        with pytest.raises(DocstoreError):
            validate_document({"f": object()})

    def test_rejects_absurd_nesting(self):
        doc = {}
        cur = doc
        for _ in range(150):
            cur["n"] = {}
            cur = cur["n"]
        with pytest.raises(DocstoreError):
            validate_document(doc)


class TestExtendedJSON:
    def test_objectid_roundtrip(self):
        oid = ObjectId()
        text = document_to_json({"_id": oid, "v": 1})
        back = document_from_json(text)
        assert back == {"_id": oid, "v": 1}

    def test_bytes_roundtrip(self):
        text = document_to_json({"blob": b"\x00\x01"})
        assert document_from_json(text) == {"blob": b"\x00\x01"}

    def test_plain_json_passthrough(self):
        assert document_from_json('{"a": [1, 2.5, null, true]}') == {
            "a": [1, 2.5, None, True]
        }

    def test_doc_size_positive(self, task_doc):
        assert doc_size_bytes(task_doc) > 50
