"""Tests for the Web UI, annotations, and user-submitted workflows."""

import pytest

from repro.api import (
    AnnotationStore,
    MaterialsAPI,
    MaterialsAPIServer,
    QueryEngine,
    SandboxManager,
    UserWorkflowManager,
    WebUI,
)
from repro.builders import (
    BandStructureBuilder,
    MaterialsBuilder,
    PhaseDiagramBuilder,
    XRDBuilder,
)
from repro.docstore import DocumentStore
from repro.errors import AuthError, BadRequestError, NotFoundError
from repro.fireworks import LaunchPad, Rocket
from repro.matgen import make_prototype


@pytest.fixture
def db():
    from tests.test_builders import _insert_task

    database = DocumentStore()["mp"]
    for mid, s in {
        "mps-nacl": make_prototype("rocksalt", ["Na", "Cl"]),
        "mps-mgo": make_prototype("rocksalt", ["Mg", "O"]),
        "mps-fe": make_prototype("bcc", ["Fe"]),
    }.items():
        _insert_task(database, s, mid)
    MaterialsBuilder(database).run()
    PhaseDiagramBuilder(database).run()
    XRDBuilder(database).run()
    BandStructureBuilder(database).run()
    return database


class TestAnnotations:
    def test_annotate_and_read(self, db):
        store = AnnotationStore(db)
        store.annotate("alice", "materials", "mp-1",
                       "Synthesized this last week; XRD matches.")
        notes = store.for_target("materials", "mp-1")
        assert len(notes) == 1
        assert notes[0]["author"] == "alice"

    def test_threaded_replies(self, db):
        store = AnnotationStore(db)
        root = store.annotate("alice", "materials", "mp-1", "Stable in air?")
        store.annotate("bob", "materials", "mp-1", "Yes, for weeks.",
                       reply_to=root)
        notes = store.for_target("materials", "mp-1")
        assert [n["depth"] for n in notes] == [0, 1]
        assert notes[1]["author"] == "bob"

    def test_reply_must_match_target(self, db):
        store = AnnotationStore(db)
        root = store.annotate("alice", "materials", "mp-1", "note")
        with pytest.raises(BadRequestError):
            store.annotate("bob", "materials", "mp-2", "reply", reply_to=root)

    def test_retract_own_note_only(self, db):
        store = AnnotationStore(db)
        note = store.annotate("alice", "materials", "mp-1", "oops")
        with pytest.raises(AuthError):
            store.retract(note, "bob")
        store.retract(note, "alice")
        notes = store.for_target("materials", "mp-1")
        assert notes[0]["retracted"] is True
        assert "retracted" in notes[0]["text"]

    def test_flagging_and_moderation_queue(self, db):
        store = AnnotationStore(db)
        note = store.annotate("spammer", "materials", "mp-1", "buy crystals")
        store.flag(note, "alice", "spam")
        store.flag(note, "bob", "spam")
        flagged = store.flagged(min_flags=2)
        assert len(flagged) == 1
        # Duplicate flags from one user collapse ($addToSet).
        store.flag(note, "alice", "spam")
        assert len(store.flagged(min_flags=3)) == 0

    def test_validation(self, db):
        store = AnnotationStore(db)
        with pytest.raises(BadRequestError):
            store.annotate("alice", "materials", "mp-1", "   ")
        with pytest.raises(AuthError):
            store.annotate("", "materials", "mp-1", "anon")
        with pytest.raises(BadRequestError):
            store.annotate("alice", "materials", "mp-1", "x" * 5000)
        with pytest.raises(NotFoundError):
            from repro.docstore import ObjectId

            store.annotate("a", "materials", "mp-1", "r", reply_to=ObjectId())

    def test_stats(self, db):
        store = AnnotationStore(db)
        store.annotate("a", "materials", "mp-1", "x")
        store.annotate("a", "batteries", "bat-1", "y")
        assert store.stats() == {"materials": 1, "batteries": 1}


class TestWebUI:
    def test_index_page_lists_materials(self, db):
        ui = WebUI(QueryEngine(db))
        page = ui.index_page()
        assert "NaCl" in page and "MgO" in page
        assert "<table>" in page

    def test_search_filters(self, db):
        ui = WebUI(QueryEngine(db))
        page = ui.index_page(search="NaCl")
        assert "NaCl" in page
        assert "MgO" not in page

    def test_material_page_has_svg_visualizations(self, db):
        ui = WebUI(QueryEngine(db))
        mid = db["materials"].find_one({"reduced_formula": "NaCl"})["material_id"]
        page = ui.material_page(mid)
        assert page.count("<svg") == 2  # XRD + bands
        assert "E_F" in page  # Fermi level marker
        assert "2θ" in page

    def test_material_page_shows_annotations(self, db):
        annotations = AnnotationStore(db)
        mid = db["materials"].find_one({"reduced_formula": "NaCl"})["material_id"]
        annotations.annotate("alice", "materials", mid, "lovely rocksalt")
        ui = WebUI(QueryEngine(db), annotations)
        page = ui.material_page(mid)
        assert "lovely rocksalt" in page

    def test_unknown_material_404(self, db):
        ui = WebUI(QueryEngine(db))
        with pytest.raises(NotFoundError):
            ui.material_page("mp-99999")

    def test_html_escaping(self, db):
        annotations = AnnotationStore(db)
        mid = db["materials"].find_one({})["material_id"]
        annotations.annotate("mallory", "materials", mid,
                             "<script>alert(1)</script>")
        ui = WebUI(QueryEngine(db), annotations)
        page = ui.material_page(mid)
        assert "<script>" not in page
        assert "&lt;script&gt;" in page

    def test_served_over_http(self, db):
        from urllib.request import urlopen

        qe = QueryEngine(db)
        ui = WebUI(qe)
        with MaterialsAPIServer(MaterialsAPI(qe), webui=ui) as server:
            with urlopen(server.base_url + "/ui", timeout=10) as response:
                body = response.read().decode()
            assert response.status == 200
            assert "Materials Browser" in body
            mid = db["materials"].find_one({})["material_id"]
            with urlopen(server.base_url + f"/ui/material/{mid}",
                         timeout=10) as response:
                assert "<svg" in response.read().decode()

    def test_webui_queries_hit_the_query_log(self, db):
        """Web UI and API share one back end + one observability path."""
        qe = QueryEngine(db)
        WebUI(qe).index_page()
        assert any(e["user"] == "webui" for e in qe.query_log.entries)


class TestUserWorkflows:
    def make_manager(self, db, quota=10):
        launchpad = LaunchPad(db)
        sandboxes = SandboxManager(db)
        return UserWorkflowManager(
            launchpad, sandboxes, max_structures_per_user=quota,
            core_team=["kristin"],
        ), launchpad, sandboxes

    def submit_two(self, manager):
        structures = [
            make_prototype("rocksalt", ["K", "Br"]),
            make_prototype("rocksalt", ["Rb", "I"]),
        ]
        return manager.submit("alice", structures, description="halides")

    def test_submission_is_gated(self, db):
        manager, launchpad, _ = self.make_manager(db)
        submission = self.submit_two(manager)
        assert submission["state"] == "PENDING_APPROVAL"
        # Nothing runs before approval.
        assert Rocket(launchpad).rapidfire() == 0

    def test_approval_releases_jobs(self, db):
        manager, launchpad, _ = self.make_manager(db)
        submission = self.submit_two(manager)
        manager.approve(submission["submission_id"], "kristin")
        assert Rocket(launchpad).rapidfire() == 2

    def test_only_core_team_approves(self, db):
        manager, _, _ = self.make_manager(db)
        submission = self.submit_two(manager)
        with pytest.raises(AuthError):
            manager.approve(submission["submission_id"], "alice")

    def test_results_route_to_private_sandbox(self, db):
        manager, launchpad, sandboxes = self.make_manager(db)
        submission = self.submit_two(manager)
        manager.approve(submission["submission_id"], "kristin")
        Rocket(launchpad).rapidfire()
        result = manager.collect_results(submission["submission_id"])
        assert result == {"routed": 2, "terminal": 2, "total": 2}
        # Alice sees her results; others don't.
        mine = sandboxes.visible_query("alice", "sandbox_results")
        assert len(mine) == 2
        assert not sandboxes.visible_query("bob", "sandbox_results")
        # Submission is now COMPLETED; collect is idempotent.
        again = manager.collect_results(submission["submission_id"])
        assert again["routed"] == 0
        record = manager.submissions_for("alice")[0]
        assert record["state"] == "COMPLETED"

    def test_quota_enforced(self, db):
        manager, _, _ = self.make_manager(db, quota=3)
        self.submit_two(manager)
        assert manager.remaining_quota("alice") == 1
        with pytest.raises(BadRequestError):
            self.submit_two(manager)

    def test_rejection_defuses(self, db):
        manager, launchpad, _ = self.make_manager(db)
        submission = self.submit_two(manager)
        manager.reject(submission["submission_id"], "kristin", "out of scope")
        assert Rocket(launchpad).rapidfire() == 0
        record = manager.submissions_for("alice")[0]
        assert record["state"] == "REJECTED"

    def test_pending_queue(self, db):
        manager, _, _ = self.make_manager(db)
        self.submit_two(manager)
        pending = manager.pending_approvals()
        assert len(pending) == 1
        assert pending[0]["user"] == "alice"

    def test_empty_submission_rejected(self, db):
        manager, _, _ = self.make_manager(db)
        with pytest.raises(BadRequestError):
            manager.submit("alice", [])

    def test_cannot_use_foreign_sandbox(self, db):
        manager, _, sandboxes = self.make_manager(db)
        bobs = sandboxes.create_sandbox("bob", "private")
        with pytest.raises(AuthError):
            manager.submit("alice",
                           [make_prototype("rocksalt", ["K", "Br"])],
                           sandbox_id=bobs)


class TestBatteryScreenPage:
    @pytest.fixture
    def battery_db(self):
        from tests.test_builders import _insert_task
        from repro.builders import BatteryBuilder

        db = DocumentStore()["mp"]
        lifepo4 = make_prototype("olivine", ["Li", "Fe"])
        licoo2 = make_prototype("layered", ["Li", "Co"])
        for mid, s in {
            "mps-lifepo4": lifepo4,
            "mps-fepo4": lifepo4.remove_species(["Li"]),
            "mps-licoo2": licoo2,
            "mps-coo2": licoo2.remove_species(["Li"]),
        }.items():
            _insert_task(db, s, mid)
        MaterialsBuilder(db).run()
        BatteryBuilder(db, "Li").run_intercalation()
        return db

    def test_fig1_page_renders_scatter(self, battery_db):
        from repro.api import QueryEngine, WebUI

        page = WebUI(QueryEngine(battery_db)).battery_screen_page()
        assert "Figure 1" in page
        assert page.count("<circle") == 2  # one dot per electrode
        assert "known materials" in page
        assert "FePO4" in page and "CoO2" in page

    def test_fig1_page_over_http(self, battery_db):
        from urllib.request import urlopen

        from repro.api import MaterialsAPI, MaterialsAPIServer, QueryEngine, WebUI

        qe = QueryEngine(battery_db)
        with MaterialsAPIServer(MaterialsAPI(qe), webui=WebUI(qe)) as server:
            with urlopen(server.base_url + "/ui/batteries", timeout=10) as r:
                body = r.read().decode()
        assert "<svg" in body and "known materials" in body

    def test_empty_screen_page(self):
        from repro.api import QueryEngine, WebUI

        page = WebUI(QueryEngine(DocumentStore()["mp"])).battery_screen_page()
        assert "No electrodes" in page
