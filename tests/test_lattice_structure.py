"""Tests for lattices, structures, prototypes, and MPS records."""

import math

import numpy as np
import pytest

from repro.errors import MatgenError, StructureError
from repro.matgen import (
    Lattice,
    Structure,
    make_prototype,
    mps_from_structure,
    prototype_names,
    structure_from_mps,
    validate_mps,
)


class TestLattice:
    def test_cubic(self):
        lat = Lattice.cubic(4.0)
        assert lat.volume == pytest.approx(64.0)
        assert lat.lengths == pytest.approx((4.0, 4.0, 4.0))
        assert lat.angles == pytest.approx((90.0, 90.0, 90.0))

    def test_from_parameters_roundtrip(self):
        lat = Lattice.from_parameters(3.0, 4.0, 5.0, 80.0, 95.0, 110.0)
        a, b, c, al, be, ga = lat.parameters
        assert (a, b, c) == pytest.approx((3.0, 4.0, 5.0))
        assert (al, be, ga) == pytest.approx((80.0, 95.0, 110.0))

    def test_hexagonal(self):
        lat = Lattice.hexagonal(3.0, 5.0)
        assert lat.angles[2] == pytest.approx(120.0)

    def test_singular_rejected(self):
        with pytest.raises(StructureError):
            Lattice([[1, 0, 0], [2, 0, 0], [0, 0, 1]])

    def test_coordinate_roundtrip(self):
        lat = Lattice.from_parameters(3, 4, 5, 85, 92, 105)
        frac = [0.1, 0.7, 0.3]
        assert lat.fractional(lat.cartesian(frac)) == pytest.approx(frac)

    def test_minimum_image_distance(self):
        lat = Lattice.cubic(10.0)
        # 0.95 and 0.05 are 0.1 apart through the boundary, i.e. 1 Å.
        assert lat.distance([0.95, 0, 0], [0.05, 0, 0]) == pytest.approx(1.0)

    def test_distance_symmetric(self):
        lat = Lattice.from_parameters(3, 4, 5, 85, 92, 105)
        a, b = [0.1, 0.2, 0.3], [0.8, 0.9, 0.1]
        assert lat.distance(a, b) == pytest.approx(lat.distance(b, a))

    def test_d_hkl_cubic(self):
        lat = Lattice.cubic(4.0)
        assert lat.d_hkl((1, 0, 0)) == pytest.approx(4.0)
        assert lat.d_hkl((1, 1, 0)) == pytest.approx(4.0 / math.sqrt(2))
        assert lat.d_hkl((1, 1, 1)) == pytest.approx(4.0 / math.sqrt(3))

    def test_d_hkl_zero_rejected(self):
        with pytest.raises(StructureError):
            Lattice.cubic(4.0).d_hkl((0, 0, 0))

    def test_reciprocal(self):
        lat = Lattice.cubic(2.0)
        recip = lat.reciprocal_lattice()
        assert recip.a == pytest.approx(math.pi)

    def test_scale_volume(self):
        lat = Lattice.cubic(2.0).scale(64.0)
        assert lat.volume == pytest.approx(64.0)
        assert lat.angles == pytest.approx((90, 90, 90))


@pytest.fixture
def nacl():
    return make_prototype("rocksalt", ["Na", "Cl"])


class TestStructure:
    def test_composition(self, nacl):
        assert nacl.reduced_formula == "NaCl"
        assert nacl.num_sites == 8
        assert nacl.elements == ["Cl", "Na"]

    def test_density_physical(self, nacl):
        # Real NaCl is 2.16 g/cm3; radius-scaled prototype should be within 2x.
        assert 1.0 < nacl.density < 4.5

    def test_min_bond_length_positive(self, nacl):
        assert 2.0 < nacl.min_bond_length() < 3.5

    def test_distance_pbc(self, nacl):
        d = nacl.distance(0, 5)  # Na corner to nearest Cl at (0, 0, 1/2)
        assert d == pytest.approx(nacl.lattice.a / 2, rel=1e-6)

    def test_supercell(self, nacl):
        sc = nacl.make_supercell((2, 2, 2))
        assert sc.num_sites == 64
        assert sc.volume == pytest.approx(8 * nacl.volume)
        assert sc.density == pytest.approx(nacl.density)
        assert sc.reduced_formula == "NaCl"

    def test_supercell_invalid(self, nacl):
        with pytest.raises(StructureError):
            nacl.make_supercell((0, 1, 1))

    def test_substitute(self, nacl):
        licl = nacl.substitute({"Na": "Li"})
        assert licl.reduced_formula == "LiCl"
        assert licl.num_sites == 8

    def test_remove_species(self, nacl):
        na_only = nacl.remove_species(["Cl"])
        assert na_only.reduced_formula == "Na"
        with pytest.raises(StructureError):
            nacl.remove_species(["Na", "Cl"])

    def test_perturb_deterministic(self, nacl):
        p1 = nacl.perturb(0.05, seed=1)
        p2 = nacl.perturb(0.05, seed=1)
        assert p1.structure_hash() == p2.structure_hash()
        assert p1.structure_hash() != nacl.perturb(0.05, seed=2).structure_hash()

    def test_overlapping_sites_rejected(self):
        with pytest.raises(StructureError):
            Structure(
                Lattice.cubic(4.0), ["Fe", "Fe"],
                [[0, 0, 0], [0.01, 0, 0]],
            )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(StructureError):
            Structure(Lattice.cubic(4.0), ["Fe"], [[0, 0, 0], [0.5, 0.5, 0.5]])

    def test_structure_hash_ignores_noise(self, nacl):
        noisy = nacl.perturb(1e-5, seed=3)
        assert noisy.structure_hash() == nacl.structure_hash()

    def test_structure_hash_detects_substitution(self, nacl):
        assert nacl.substitute({"Na": "Li"}).structure_hash() != nacl.structure_hash()

    def test_dict_roundtrip(self, nacl):
        back = Structure.from_dict(nacl.as_dict())
        assert back.matches(nacl)
        assert back.reduced_formula == nacl.reduced_formula

    def test_neighbors(self, nacl):
        # Na in rocksalt has 6 Cl nearest neighbours.
        neigh = nacl.neighbors(0, nacl.lattice.a / 2 + 0.05)
        nearest_d = neigh[0][1]
        shell = [n for n in neigh if abs(n[1] - nearest_d) < 1e-6]
        assert len(shell) == 6


class TestPrototypes:
    @pytest.mark.parametrize("name", prototype_names())
    def test_all_prototypes_build_valid_structures(self, name):
        from repro.matgen.prototypes import PROTOTYPES

        _, arity = PROTOTYPES[name]
        # Cation(s) only: oxide prototypes supply their own O sublattice.
        elements = ["Mg", "Ti"][:arity]
        if name in ("rocksalt", "cscl", "zincblende", "fluorite") and arity == 2:
            elements = ["Mg", "O"]
        s = make_prototype(name, elements)
        assert s.num_sites >= 1
        assert s.volume > 0
        assert s.min_bond_length() > 1.0  # no colliding atoms
        assert 0.5 < s.density < 25  # physically plausible

    def test_stoichiometries(self):
        assert make_prototype("rocksalt", ["Na", "Cl"]).reduced_formula == "NaCl"
        assert make_prototype("fluorite", ["Ca", "F"]).reduced_formula == "CaF2"
        assert make_prototype("perovskite", ["Ca", "Ti"]).reduced_formula == "CaTiO3"
        assert make_prototype("spinel", ["Mg", "Al"]).reduced_formula == "MgAl2O4"
        assert make_prototype("olivine", ["Li", "Fe"]).reduced_formula == "LiFePO4"
        assert make_prototype("layered", ["Li", "Co"]).reduced_formula == "LiCoO2"

    def test_unknown_prototype(self):
        with pytest.raises(StructureError):
            make_prototype("quasicrystal", ["Al"])

    def test_wrong_arity(self):
        with pytest.raises(StructureError):
            make_prototype("rocksalt", ["Na"])


class TestMPS:
    def test_roundtrip(self, nacl):
        record = mps_from_structure(nacl)
        back = structure_from_mps(record)
        assert back.matches(nacl)

    def test_derived_fields(self, nacl):
        record = mps_from_structure(nacl)
        assert record["elements"] == ["Cl", "Na"]
        assert record["reduced_formula"] == "NaCl"
        assert record["nsites"] == 8
        assert record["nelectrons"] == nacl.nelectrons
        assert record["mps_id"].startswith("mps-")

    def test_validation_passes(self, nacl):
        validate_mps(mps_from_structure(nacl))

    def test_validation_catches_tampering(self, nacl):
        record = mps_from_structure(nacl)
        record["nsites"] = 99
        with pytest.raises(MatgenError):
            validate_mps(record)

    def test_validation_catches_missing_fields(self):
        with pytest.raises(MatgenError):
            validate_mps({"mps_id": "mps-x"})

    def test_validation_catches_element_mismatch(self, nacl):
        record = mps_from_structure(nacl)
        record["elements"] = ["Fe"]
        with pytest.raises(MatgenError):
            validate_mps(record)

    def test_stable_id_from_structure(self, nacl):
        assert (
            mps_from_structure(nacl)["mps_id"] == mps_from_structure(nacl)["mps_id"]
        )

    def test_json_storable(self, nacl):
        """MPS records must drop into the document store unchanged."""
        from repro.docstore import Collection

        coll = Collection("mps")
        record = mps_from_structure(nacl)
        coll.insert_one(record)
        stored = coll.find_one({"mps_id": record["mps_id"]})
        assert structure_from_mps(stored).matches(nacl)
