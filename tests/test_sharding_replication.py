"""Tests for the sharding router and the oplog-driven replica set (§IV-D2)."""

import pytest

from repro.docstore import Collection, ReplicaSet, ShardedCollection, hash_shard_key
from repro.errors import ReplicationError, ShardingError


def make_sharded(n=3, strategy="hashed", **kw):
    shards = [Collection(f"s{i}") for i in range(n)]
    return ShardedCollection("materials", "mps_id", shards, strategy=strategy, **kw)


class TestHashedSharding:
    def test_all_docs_reachable(self):
        sc = make_sharded()
        sc.insert_many([{"mps_id": f"mps-{i}", "v": i} for i in range(60)])
        assert len(sc) == 60
        assert len(sc.find({})) == 60

    def test_distribution_roughly_balanced(self):
        sc = make_sharded()
        sc.insert_many([{"mps_id": f"mps-{i}"} for i in range(300)])
        assert sc.balance_factor() < 1.5

    def test_equality_query_routes_to_single_shard(self):
        sc = make_sharded()
        sc.insert_many([{"mps_id": f"mps-{i}", "v": i} for i in range(30)])
        docs = sc.find({"mps_id": "mps-7"})
        assert len(docs) == 1 and docs[0]["v"] == 7
        assert len(sc.last_targets) == 1

    def test_in_query_routes_to_owning_shards(self):
        sc = make_sharded()
        sc.insert_many([{"mps_id": f"mps-{i}"} for i in range(30)])
        sc.find({"mps_id": {"$in": ["mps-1", "mps-2"]}})
        assert 1 <= len(sc.last_targets) <= 2

    def test_non_key_query_scatter_gathers(self):
        sc = make_sharded()
        sc.insert_many([{"mps_id": f"mps-{i}", "v": i % 2} for i in range(30)])
        docs = sc.find({"v": 1})
        assert len(docs) == 15
        assert len(sc.last_targets) == 3

    def test_missing_shard_key_rejected(self):
        sc = make_sharded()
        with pytest.raises(ShardingError):
            sc.insert_one({"no_key": True})

    def test_hash_stability(self):
        assert hash_shard_key("mps-1") == hash_shard_key("mps-1")
        assert hash_shard_key("mps-1") != hash_shard_key("mps-2")

    def test_update_and_delete_route(self):
        sc = make_sharded()
        sc.insert_many([{"mps_id": f"m{i}", "state": "old"} for i in range(20)])
        sc.update_many({"mps_id": "m3"}, {"$set": {"state": "new"}})
        assert sc.find_one({"mps_id": "m3"})["state"] == "new"
        sc.delete_many({"mps_id": "m3"})
        assert sc.find_one({"mps_id": "m3"}) is None

    def test_aggregate_across_shards(self):
        sc = make_sharded()
        sc.insert_many([{"mps_id": f"m{i}", "v": 1} for i in range(10)])
        rows = sc.aggregate([{"$group": {"_id": None, "total": {"$sum": "$v"}}}])
        assert rows[0]["total"] == 10


class TestRangeSharding:
    def test_range_placement(self):
        sc = make_sharded(3, strategy="range", boundaries=["g", "p"])
        sc.insert_many([{"mps_id": k} for k in ["apple", "grape", "zebra"]])
        dist = sc.shard_distribution()
        assert dist == {"shard0": 1, "shard1": 1, "shard2": 1}

    def test_range_query_prunes_shards(self):
        sc = make_sharded(3, strategy="range", boundaries=["g", "p"])
        sc.insert_many([{"mps_id": k} for k in ["a", "b", "h", "i", "q", "r"]])
        docs = sc.find({"mps_id": {"$gte": "a", "$lt": "c"}})
        assert {d["mps_id"] for d in docs} == {"a", "b"}
        assert sc.last_targets == [0]

    def test_bad_boundaries_rejected(self):
        with pytest.raises(ShardingError):
            make_sharded(3, strategy="range", boundaries=["only-one-but-need-two..."[:1]])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ShardingError):
            make_sharded(2, strategy="mystery")


class TestReplicaSet:
    def test_writes_replicate_to_secondaries(self):
        rs = ReplicaSet("rs0", n_secondaries=2)
        rs.primary["materials"].insert_one({"formula": "Fe2O3"})
        rs.replicate()
        for node in rs.secondaries:
            assert node.database["materials"].count_documents() == 1

    def test_secondary_reads_stale_until_replicated(self):
        rs = ReplicaSet("rs0", n_secondaries=1)
        rs.primary["m"].insert_one({"x": 1})
        secondary_db = rs.read_database("secondary")
        assert secondary_db["m"].count_documents() == 0
        rs.replicate()
        assert secondary_db["m"].count_documents() == 1

    def test_updates_and_deletes_replicate(self):
        rs = ReplicaSet("rs0", n_secondaries=1)
        coll = rs.primary["m"]
        coll.insert_many([{"_id": i, "v": 0} for i in range(3)])
        coll.update_one({"_id": 1}, {"$set": {"v": 9}})
        coll.delete_one({"_id": 2})
        rs.replicate()
        sec = rs.secondaries[0].database["m"]
        assert sec.find_one({"_id": 1})["v"] == 9
        assert sec.find_one({"_id": 2}) is None

    def test_lag_reporting(self):
        rs = ReplicaSet("rs0", n_secondaries=1)
        rs.primary["m"].insert_many([{} for _ in range(5)])
        assert rs.secondaries[0].lag(rs.oplog) == 5
        rs.replicate()
        assert rs.secondaries[0].lag(rs.oplog) == 0

    def test_step_down_promotes_up_to_date_secondary(self):
        rs = ReplicaSet("rs0", n_secondaries=2)
        rs.primary["m"].insert_many([{"_id": i} for i in range(4)])
        rs.replicate()
        old_primary = rs.primary_node
        new_primary = rs.step_down()
        assert new_primary is not old_primary
        assert rs.primary_node is new_primary
        # New primary has all the data and accepts writes.
        assert rs.primary["m"].count_documents() == 4
        rs.primary["m"].insert_one({"_id": 99})
        assert rs.primary["m"].count_documents() == 5

    def test_step_down_without_secondaries_fails(self):
        rs = ReplicaSet("rs0", n_secondaries=0)
        with pytest.raises(ReplicationError):
            rs.step_down()

    def test_status(self):
        rs = ReplicaSet("rs0", n_secondaries=2)
        rs.primary["m"].insert_one({})
        status = rs.status()
        states = [m["state"] for m in status["members"]]
        assert states.count("PRIMARY") == 1
        assert states.count("SECONDARY") == 2

    def test_replication_is_idempotent(self):
        rs = ReplicaSet("rs0", n_secondaries=1)
        rs.primary["m"].insert_one({"_id": "a"})
        rs.replicate()
        rs.replicate()
        assert rs.secondaries[0].database["m"].count_documents() == 1

    def test_read_preferences(self):
        rs = ReplicaSet("rs0", n_secondaries=2)
        assert rs.read_database("primary") is rs.primary
        assert rs.read_database("secondary") is not rs.primary
        with pytest.raises(ReplicationError):
            rs.read_database("bogus")

    def test_background_replication(self):
        import time

        rs = ReplicaSet("rs0", n_secondaries=1)
        rs.start_background_replication(interval_s=0.005)
        rs.primary["m"].insert_many([{} for _ in range(10)])
        deadline = time.time() + 2.0
        while time.time() < deadline:
            if rs.secondaries[0].database["m"].count_documents() == 10:
                break
            time.sleep(0.01)
        rs.stop_background_replication()
        assert rs.secondaries[0].database["m"].count_documents() == 10


class TestSortLimitPushdown:
    def test_sorted_limited_find_merges_lazily(self):
        sc = make_sharded(n=4)
        for i in range(120):
            sc.insert_one({"mps_id": f"m{i}", "n": i})
        top = sc.find({}, sort=[("n", -1)], limit=5)
        assert [d["n"] for d in top] == [119, 118, 117, 116, 115]
        bottom = sc.find({}, sort=[("n", 1)], limit=3)
        assert [d["n"] for d in bottom] == [0, 1, 2]

    def test_global_sort_without_limit(self):
        sc = make_sharded(n=3)
        for i in range(50):
            sc.insert_one({"mps_id": f"m{i}", "n": 49 - i})
        out = sc.find({}, sort=[("n", 1)])
        assert [d["n"] for d in out] == list(range(50))

    def test_limit_without_sort_stops_early(self):
        sc = make_sharded(n=3)
        for i in range(60):
            sc.insert_one({"mps_id": f"m{i}"})
        assert len(sc.find({}, limit=7)) == 7

    def test_multi_key_sort_with_descending_component(self):
        sc = make_sharded(n=3)
        for i in range(30):
            sc.insert_one({"mps_id": f"m{i}", "g": i % 3, "n": i})
        out = sc.find({}, sort=[("g", 1), ("n", -1)])
        keys = [(d["g"], -d["n"]) for d in out]
        assert keys == sorted(keys)

    def test_unsorted_find_unchanged(self):
        sc = make_sharded(n=3)
        for i in range(20):
            sc.insert_one({"mps_id": f"m{i}"})
        assert len(sc.find({})) == 20


class TestImmutableShardKey:
    def test_set_on_shard_key_rejected(self):
        sc = make_sharded()
        sc.insert_one({"mps_id": "m1", "state": "old"})
        for bad in ({"$set": {"mps_id": "m2"}},
                    {"$inc": {"mps_id": 1}},
                    {"$set": {"mps_id.sub": 1}},
                    {"$unset": {"mps_id": ""}}):
            with pytest.raises(ShardingError):
                sc.update_many({"state": "old"}, bad)

    def test_replacement_update_rejected(self):
        sc = make_sharded()
        sc.insert_one({"mps_id": "m1"})
        with pytest.raises(ShardingError):
            sc.update_many({"mps_id": "m1"}, {"mps_id": "m2", "x": 1})

    def test_prefix_path_rejected_for_nested_key(self):
        shards = [Collection(f"s{i}") for i in range(2)]
        sc = ShardedCollection("m", "meta.id", shards)
        sc.insert_one({"meta": {"id": "a"}})
        with pytest.raises(ShardingError):
            sc.update_many({}, {"$set": {"meta": {"id": "b"}}})

    def test_non_key_updates_still_apply(self):
        sc = make_sharded()
        sc.insert_one({"mps_id": "m1", "state": "old"})
        r = sc.update_many({"mps_id": "m1"}, {"$set": {"state": "new"}})
        assert r.modified_count == 1
        assert sc.find_one({"mps_id": "m1"})["state"] == "new"


class TestElectionTerms:
    def test_step_down_bumps_term_and_records_ballot(self):
        rs = ReplicaSet("rs0", n_secondaries=2)
        rs.primary["m"].insert_many([{} for _ in range(5)])
        rs.replicate()
        winner = rs.step_down()
        assert rs.term == 1
        assert len(rs.elections) == 1
        ballot = rs.elections[0]
        assert ballot["candidate"] == winner.name
        assert ballot["granted"] == 3  # unanimous: winner is up to date
        assert rs.status()["term"] == 1

    def test_successive_elections_accumulate_terms(self):
        rs = ReplicaSet("rs0", n_secondaries=2)
        rs.step_down()
        rs.step_down()
        assert rs.term == 2
        assert [b["term"] for b in rs.elections] == [1, 2]
