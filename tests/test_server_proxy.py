"""Tests for the TCP wire protocol server, remote client, and the HPC proxy."""

import pytest

from repro.docstore import (
    DatastoreProxy,
    DatastoreServer,
    DocumentStore,
    ObjectId,
    RemoteClient,
)
from repro.errors import DocstoreError


@pytest.fixture
def server():
    srv = DatastoreServer(DocumentStore())
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    c = RemoteClient("127.0.0.1", server.port)
    yield c
    c.close()


class TestWireProtocol:
    def test_ping(self, client):
        assert client.ping()

    def test_insert_and_find(self, client):
        coll = client["mp"]["tasks"]
        coll.insert_one({"task_id": "t1", "energy": -5.0})
        docs = coll.find({"task_id": "t1"})
        assert docs[0]["energy"] == -5.0

    def test_objectid_roundtrip_over_wire(self, client):
        coll = client["mp"]["tasks"]
        result = coll.insert_one({"x": 1})
        oid = result["inserted_id"]
        assert isinstance(oid, ObjectId)
        doc = coll.find_one({"_id": oid})
        assert doc["x"] == 1

    def test_find_with_sort_skip_limit(self, client):
        coll = client["mp"]["m"]
        coll.insert_many([{"n": i} for i in range(10)])
        docs = coll.find({}, sort=[("n", -1)], skip=2, limit=3)
        assert [d["n"] for d in docs] == [7, 6, 5]

    def test_update_and_count(self, client):
        coll = client["mp"]["q"]
        coll.insert_many([{"state": "W"} for _ in range(3)])
        r = coll.update_many({"state": "W"}, {"$set": {"state": "R"}})
        assert r["modified_count"] == 3
        assert coll.count_documents({"state": "R"}) == 3

    def test_find_one_and_update_over_wire(self, client):
        coll = client["mp"]["queue"]
        coll.insert_many([{"job": i, "state": "WAITING"} for i in range(3)])
        claimed = coll.find_one_and_update(
            {"state": "WAITING"},
            {"$set": {"state": "RUNNING"}},
            sort=[("job", -1)],
            return_document="after",
        )
        assert claimed["job"] == 2 and claimed["state"] == "RUNNING"

    def test_aggregate_over_wire(self, client):
        coll = client["mp"]["t"]
        coll.insert_many([{"g": "a", "v": 1}, {"g": "a", "v": 3}, {"g": "b", "v": 5}])
        rows = coll.aggregate(
            [{"$group": {"_id": "$g", "s": {"$sum": "$v"}}}, {"$sort": {"_id": 1}}]
        )
        assert rows == [{"_id": "a", "s": 4}, {"_id": "b", "s": 5}]

    def test_delete_and_distinct(self, client):
        coll = client["mp"]["d"]
        coll.insert_many([{"k": 1}, {"k": 1}, {"k": 2}])
        assert sorted(coll.distinct("k")) == [1, 2]
        assert coll.delete_many({"k": 1})["deleted_count"] == 2

    def test_remote_error_propagates(self, client):
        coll = client["mp"]["e"]
        with pytest.raises(DocstoreError):
            coll.find({"a": {"$bogus": 1}})

    def test_server_counts_requests(self, server, client):
        before = server.requests_served
        client.ping()
        client.ping()
        assert server.requests_served == before + 2

    def test_create_index_over_wire(self, client):
        coll = client["mp"]["ix"]
        name = coll.create_index("field")
        assert name == "field_1"

    def test_list_collections(self, client):
        client["mp"]["c1"].insert_one({})
        assert "c1" in client["mp"].list_collection_names()


class TestProxy:
    def test_requests_forwarded_through_proxy(self, server):
        with DatastoreProxy("127.0.0.1", server.port) as proxy:
            with proxy.client() as client:
                coll = client["mp"]["via_proxy"]
                coll.insert_one({"hop": 2})
                assert coll.find_one({"hop": 2}) is not None
            stats = proxy.stats()
            assert stats["requests_forwarded"] >= 2
            assert stats["bytes_up"] > 0

    def test_proxy_latency_slows_requests(self, server):
        import time

        with DatastoreProxy("127.0.0.1", server.port, forward_latency_s=0.02) as proxy:
            with proxy.client() as client:
                t0 = time.perf_counter()
                client.ping()
                elapsed = time.perf_counter() - t0
        assert elapsed >= 0.02

    def test_data_written_via_proxy_visible_directly(self, server):
        with DatastoreProxy("127.0.0.1", server.port) as proxy:
            with proxy.client() as client:
                client["mp"]["shared"].insert_one({"v": 42})
        assert server.store["mp"]["shared"].find_one({"v": 42}) is not None
