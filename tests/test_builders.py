"""Tests for loaders, the materials builder, derived builders, and V&V."""

import pytest

from repro.builders import (
    BandStructureBuilder,
    BatteryBuilder,
    MaterialsBuilder,
    PhaseDiagramBuilder,
    TaskLoader,
    VnVRunner,
    XRDBuilder,
    pick_best_task,
)
from repro.dft import FakeVASP, Resources, SCFParameters
from repro.docstore import DocumentStore
from repro.matgen import make_prototype, mps_from_structure


@pytest.fixture
def db():
    return DocumentStore()["mp"]


def _insert_task(db, structure, mps_id, encut=520, epa_shift=0.0,
                 extra=None):
    """A synthetic completed task document matching the Rocket's shape."""
    from repro.dft import total_energy

    energy = total_energy(structure) + epa_shift * structure.num_sites
    doc = {
        "state": "COMPLETED",
        "status": "COMPLETED",
        "mps_id": mps_id,
        "formula": structure.reduced_formula,
        "elements": structure.elements,
        "energy": energy,
        "energy_per_atom": energy / structure.num_sites,
        "structure": structure.as_dict(),
        "parameters": {"ENCUT": encut, "AMIX": 0.3, "ALGO": "Normal"},
        "band_gap": 2.0,
        "is_metal": False,
        "functional": "GGA",
        "code_version": "5.2.12-fake",
        "completed_at": 1000.0,
    }
    if extra:
        doc.update(extra)
    db["tasks"].insert_one(doc)
    return doc


class TestTaskLoader:
    def _run(self, structure, run_dir):
        FakeVASP().run(
            structure,
            SCFParameters(amix=0.2, algo="All", nelm=400),
            Resources(walltime_s=1e9, memory_mb=1e6),
            run_dir=run_dir,
        )

    def test_load_single_run(self, db, tmp_path):
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        run_dir = str(tmp_path / "r1")
        self._run(nacl, run_dir)
        loader = TaskLoader(db)
        doc = loader.load_run_directory(run_dir, mps_id="mps-1")
        assert doc["state"] == "COMPLETED"
        assert db["tasks"].count_documents() == 1

    def test_incremental_loading_skips_existing(self, db, tmp_path):
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        for i in range(2):
            self._run(nacl.substitute({"Na": ["Na", "K"][i]}),
                      str(tmp_path / f"r{i}"))
        loader = TaskLoader(db)
        first = loader.load_tree(str(tmp_path))
        assert first == {"loaded": 2, "skipped_existing": 0, "unparseable": 0}
        # New run lands; re-walk only loads the new one.
        self._run(make_prototype("rocksalt", ["Li", "Cl"]),
                  str(tmp_path / "r2"))
        second = loader.load_tree(str(tmp_path))
        assert second["loaded"] == 1
        assert second["skipped_existing"] == 2

    def test_failed_runs_loaded_as_fizzled(self, db, tmp_path):
        from repro.errors import WalltimeExceeded

        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        run_dir = str(tmp_path / "killed")
        with pytest.raises(WalltimeExceeded):
            FakeVASP().run(nacl, SCFParameters(),
                           Resources(walltime_s=0.001, memory_mb=1e6),
                           run_dir=run_dir)
        doc = TaskLoader(db).load_run_directory(run_dir)
        assert doc["state"] == "FIZZLED"
        assert doc["error_kind"] == "WALLTIME"


class TestPickBestTask:
    def test_prefers_higher_encut(self):
        best = pick_best_task([
            {"parameters": {"ENCUT": 400}, "energy_per_atom": -6.0},
            {"parameters": {"ENCUT": 600}, "energy_per_atom": -5.9},
        ])
        assert best["parameters"]["ENCUT"] == 600

    def test_ties_break_to_lower_energy(self):
        best = pick_best_task([
            {"parameters": {"ENCUT": 520}, "energy_per_atom": -5.9},
            {"parameters": {"ENCUT": 520}, "energy_per_atom": -6.1},
        ])
        assert best["energy_per_atom"] == -6.1

    def test_empty_rejected(self):
        from repro.errors import BuilderError

        with pytest.raises(BuilderError):
            pick_best_task([])


class TestMaterialsBuilder:
    def test_groups_by_mps_and_picks_best(self, db):
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        licl = make_prototype("rocksalt", ["Li", "Cl"])
        # Two tasks for mps-1 (different cutoffs), one for mps-2.
        _insert_task(db, nacl, "mps-1", encut=400, epa_shift=0.05)
        _insert_task(db, nacl, "mps-1", encut=600)
        _insert_task(db, licl, "mps-2")
        result = MaterialsBuilder(db).run()
        assert result["materials_built"] == 2
        mat = db["materials"].find_one({"mps_id": "mps-1"})
        assert mat["provenance"]["parameters"]["ENCUT"] == 600
        assert mat["material_id"].startswith("mp-")

    def test_rebuild_is_idempotent(self, db):
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        _insert_task(db, nacl, "mps-1")
        builder = MaterialsBuilder(db)
        builder.run()
        first = db["materials"].find_one({"mps_id": "mps-1"})
        result2 = builder.run()
        assert result2 == {"tasks_considered": 1, "materials_built": 0,
                           "materials_updated": 1, "materials_retired": 0}
        second = db["materials"].find_one({"mps_id": "mps-1"})
        assert second["material_id"] == first["material_id"]
        assert db["materials"].count_documents() == 1

    def test_new_task_improves_material(self, db):
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        _insert_task(db, nacl, "mps-1", encut=400, epa_shift=0.1)
        builder = MaterialsBuilder(db)
        builder.run()
        before = db["materials"].find_one({"mps_id": "mps-1"})["energy_per_atom"]
        _insert_task(db, nacl, "mps-1", encut=700)
        builder.run()
        after = db["materials"].find_one({"mps_id": "mps-1"})["energy_per_atom"]
        assert after < before

    def test_formation_energy_projected(self, db):
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        _insert_task(db, nacl, "mps-1")
        MaterialsBuilder(db).run()
        mat = db["materials"].find_one({"mps_id": "mps-1"})
        assert mat["formation_energy_per_atom"] < -0.5  # ionic compound

    def test_fizzled_tasks_ignored(self, db):
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        doc = _insert_task(db, nacl, "mps-1")
        db["tasks"].update_many({}, {"$set": {"state": "FIZZLED"}})
        result = MaterialsBuilder(db).run()
        assert result["materials_built"] == 0


@pytest.fixture
def populated_db(db):
    """Tasks + materials for a small Li-Fe-O + Na-Cl world."""
    structures = {
        "mps-nacl": make_prototype("rocksalt", ["Na", "Cl"]),
        "mps-licoo2": make_prototype("layered", ["Li", "Co"]),
        "mps-coo2": make_prototype("layered", ["Li", "Co"]).remove_species(["Li"]),
        "mps-lifepo4": make_prototype("olivine", ["Li", "Fe"]),
        "mps-fepo4": make_prototype("olivine", ["Li", "Fe"]).remove_species(["Li"]),
        "mps-fe": make_prototype("bcc", ["Fe"]),
    }
    for mps_id, s in structures.items():
        _insert_task(db, s, mps_id)
    MaterialsBuilder(db).run()
    return db


class TestDerivedBuilders:
    def test_phase_diagram_builder(self, populated_db):
        db = populated_db
        result = PhaseDiagramBuilder(db).run()
        assert result["systems_built"] >= 3
        pd_doc = db["phase_diagrams"].find_one({"chemical_system": "Cl-Na"})
        assert pd_doc is not None
        assert "NaCl" in pd_doc["stable_formulas"]
        # Materials got hull annotations.
        nacl = db["materials"].find_one({"reduced_formula": "NaCl"})
        assert nacl["e_above_hull"] == pytest.approx(0.0, abs=1e-6)
        assert nacl["is_stable"] is True

    def test_battery_builder_pairs_host_and_discharged(self, populated_db):
        db = populated_db
        result = BatteryBuilder(db, "Li").run_intercalation()
        assert result["intercalation_built"] == 2  # LiCoO2 and LiFePO4
        bat = db["batteries"].find_one({"framework": "FePO4"})
        assert bat is not None
        assert bat["battery_type"] == "intercalation"
        assert bat["capacity_grav"] == pytest.approx(170, rel=0.05)
        assert -2.0 < bat["average_voltage"] < 8.0

    def test_conversion_builder(self, populated_db):
        db = populated_db
        result = BatteryBuilder(db, "Li").run_conversion(max_hosts=3)
        assert result["conversion_built"] >= 1
        doc = db["batteries"].find_one({"battery_type": "conversion"})
        assert doc["capacity_grav"] > 0

    def test_xrd_builder(self, populated_db):
        db = populated_db
        result = XRDBuilder(db).run()
        assert result["xrd_built"] == db["materials"].count_documents()
        doc = db["xrd"].find_one({"reduced_formula": "NaCl"})
        assert doc["n_peaks"] > 3
        # Idempotent.
        again = XRDBuilder(db).run()
        assert again["xrd_built"] == 0

    def test_bandstructure_builder(self, populated_db):
        db = populated_db
        result = BandStructureBuilder(db).run()
        assert result["bandstructures_built"] > 0
        doc = db["bandstructures"].find_one({"reduced_formula": "NaCl"})
        assert doc["band_gap"] > 1.0
        fe = db["bandstructures"].find_one({"reduced_formula": "Fe"})
        assert fe["band_gap"] < 0.5


class TestVnV:
    def test_clean_database_passes(self, populated_db):
        db = populated_db
        PhaseDiagramBuilder(db).run()
        BandStructureBuilder(db).run()
        report = VnVRunner(db).run_all()
        assert report["clean"], report["violations"]
        assert db["vnv_reports"].count_documents() == 1

    def test_detects_energy_arithmetic_corruption(self, populated_db):
        db = populated_db
        db["tasks"].update_one({}, {"$set": {"energy_per_atom": 123.0}})
        report = VnVRunner(db).run_all()
        assert not report["clean"]
        rules = {v["rule"] for v in report["violations"]}
        assert "task_energy_arithmetic" in rules

    def test_detects_unphysical_formation_energy(self, populated_db):
        db = populated_db
        db["materials"].update_one(
            {}, {"$set": {"formation_energy_per_atom": -50.0}}
        )
        report = VnVRunner(db).run_all()
        assert any(
            v["rule"] == "material_formation_energy_range"
            for v in report["violations"]
        )

    def test_detects_broken_reference(self, populated_db):
        db = populated_db
        from repro.docstore import ObjectId

        db["materials"].update_one(
            {}, {"$set": {"provenance.task_id": ObjectId()}}
        )
        violations = VnVRunner(db).run_referential_integrity()
        assert any(v.rule == "ref:material_task" for v in violations)

    def test_detects_known_compound_regression(self, populated_db):
        """The 'calculation bug before releasing a database' scenario."""
        db = populated_db
        db["materials"].update_one(
            {"reduced_formula": "NaCl"},
            {"$set": {"band_gap": 0.0, "formation_energy_per_atom": -0.01}},
        )
        violations = VnVRunner(db).run_known_compounds()
        assert any(v.rule == "known:NaCl" for v in violations)

    def test_detects_inconsistent_duplicate_tasks(self, populated_db):
        """MapReduce rule: same MPS input, wildly different energies."""
        db = populated_db
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        _insert_task(db, nacl, "mps-nacl", encut=300, epa_shift=5.0)
        violations = VnVRunner(db).run_mapreduce_rule()
        assert any(v.rule == "mr:energy_spread" for v in violations)

    def test_assert_clean_raises(self, populated_db):
        from repro.errors import ValidationError

        db = populated_db
        db["materials"].update_one({}, {"$set": {"band_gap": -3.0}})
        with pytest.raises(ValidationError):
            VnVRunner(db).assert_clean()

    def test_mps_schema_rule(self, db):
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        record = mps_from_structure(nacl)
        db["mps"].insert_one(record)
        db["mps"].insert_one({**record, "mps_id": "mps-other", "nsites": 99})
        runner = VnVRunner(db)
        violations = runner.run_rule(runner.rules[0])
        assert len(violations) == 1


class TestSymmetryBuilder:
    def test_builds_and_annotates(self, populated_db):
        from repro.builders import SymmetryBuilder

        db = populated_db
        result = SymmetryBuilder(db).run()
        assert result["symmetry_built"] == db["materials"].count_documents()
        nacl = db["symmetry"].find_one({"reduced_formula": "NaCl"})
        assert nacl["lattice_system"] == "cubic"
        assert nacl["n_operations"] == 192  # Fm-3m conventional cell
        mat = db["materials"].find_one({"reduced_formula": "NaCl"})
        assert mat["lattice_system"] == "cubic"
        assert mat["n_symmetry_ops"] == 192

    def test_idempotent(self, populated_db):
        from repro.builders import SymmetryBuilder

        db = populated_db
        SymmetryBuilder(db).run()
        again = SymmetryBuilder(db).run()
        assert again["symmetry_built"] == 0
