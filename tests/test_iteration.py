"""Tests for iteration strategies: linear scan, bisection, genetic search."""


import pytest

from repro.errors import WorkflowError
from repro.fireworks import BisectionSearch, GeneticSearch, LinearScan, run_iteration


class TestLinearScan:
    def test_encut_convergence_study(self):
        """The canonical use: raise ENCUT until the energy stops moving.

        Uses the real pseudo-DFT cutoff bias, which decays exponentially.
        """
        from repro.dft import SCFParameters, run_scf
        from repro.matgen import make_prototype

        nacl = make_prototype("rocksalt", ["Na", "Cl"])

        def evaluate(params):
            scf = run_scf(
                nacl,
                SCFParameters(encut=params["ENCUT"], amix=0.2, algo="All",
                              nelm=500),
            )
            return scf.energy_per_atom

        scan = LinearScan("ENCUT", start=200, step=100, tolerance=5e-3)
        result = scan.run(evaluate)
        assert result.converged
        assert result.best_params["ENCUT"] >= 400
        # The accepted energy is close to the infinite-cutoff value.
        from repro.dft import total_energy

        exact = total_energy(nacl) / nacl.num_sites
        assert result.best_value == pytest.approx(exact, abs=0.05)

    def test_unconverged_within_budget(self):
        scan = LinearScan("x", start=0, step=1, tolerance=1e-9, max_iterations=5)
        result = scan.run(lambda p: p["x"])  # never converges
        assert not result.converged
        assert result.n_evaluations == 5

    def test_base_params_passed_through(self):
        scan = LinearScan("x", start=0, step=1, tolerance=10)
        result = scan.run(lambda p: p["x"] + p["offset"], {"offset": 100})
        assert result.best_params["offset"] == 100

    def test_validation(self):
        with pytest.raises(WorkflowError):
            LinearScan("x", 0, -1, 1e-3)
        with pytest.raises(WorkflowError):
            LinearScan("x", 0, 1, 0)


class TestBisection:
    def test_finds_threshold(self):
        """Find the smallest x in [0, 10] with x^2 >= 25 (i.e. 5)."""
        search = BisectionSearch(
            "x", lo=0, hi=10, predicate=lambda v: v >= 25, resolution=1e-3
        )
        result = search.run(lambda p: p["x"] ** 2)
        assert result.converged
        assert result.best_params["x"] == pytest.approx(5.0, abs=1e-2)

    def test_unreachable_threshold(self):
        search = BisectionSearch(
            "x", lo=0, hi=10, predicate=lambda v: v >= 1e9, resolution=0.1
        )
        result = search.run(lambda p: p["x"] ** 2)
        assert not result.converged

    def test_logarithmic_evaluations(self):
        search = BisectionSearch(
            "x", lo=0, hi=1024, predicate=lambda v: v >= 512, resolution=1.0
        )
        result = search.run(lambda p: p["x"])
        assert result.n_evaluations < 20  # vs. 1024 for a linear scan

    def test_validation(self):
        with pytest.raises(WorkflowError):
            BisectionSearch("x", 10, 0, lambda v: True, 0.1)


class TestGeneticSearch:
    def quadratic(self, p):
        return (p["a"] - 0.3) ** 2 + (p["b"] + 0.7) ** 2

    def test_finds_minimum(self):
        ga = GeneticSearch(
            {"a": (-2, 2), "b": (-2, 2)}, population=16, generations=25, seed=7
        )
        result = ga.run(self.quadratic)
        assert result.best_value < 0.05
        assert result.best_params["a"] == pytest.approx(0.3, abs=0.3)
        assert result.best_params["b"] == pytest.approx(-0.7, abs=0.3)

    def test_deterministic_given_seed(self):
        ga1 = GeneticSearch({"a": (-1, 1)}, seed=3)
        ga2 = GeneticSearch({"a": (-1, 1)}, seed=3)
        r1 = ga1.run(lambda p: p["a"] ** 2)
        r2 = ga2.run(lambda p: p["a"] ** 2)
        assert r1.best_value == r2.best_value
        assert r1.n_evaluations == r2.n_evaluations

    def test_respects_bounds(self):
        ga = GeneticSearch({"a": (2, 3)}, population=8, generations=5)
        result = ga.run(lambda p: p["a"])
        for params, _ in result.history:
            assert 2 <= params["a"] <= 3

    def test_early_stop_on_target(self):
        ga_full = GeneticSearch({"a": (-1, 1)}, population=8, generations=50, seed=1)
        ga_stop = GeneticSearch({"a": (-1, 1)}, population=8, generations=50,
                                seed=1, target=0.5)
        full = ga_full.run(lambda p: p["a"] ** 2)
        stopped = ga_stop.run(lambda p: p["a"] ** 2)
        assert stopped.n_evaluations <= full.n_evaluations
        assert stopped.converged

    def test_ga_beats_linear_scan_on_2d_problem(self):
        """The paper's motivation for GA over 'simple linear increments':
        multi-dimensional parameter spaces."""
        evaluations = {"ga": 0, "scan": 0}

        def f(p):
            return (p["a"] - 0.5) ** 2 + 3 * (p.get("b", 0) - 0.25) ** 2

        ga = GeneticSearch({"a": (0, 1), "b": (0, 1)}, population=12,
                           generations=15, seed=5)
        ga_result = ga.run(f)
        # Dense 2D grid at the same resolution would need ~400+ points.
        assert ga_result.best_value < 0.02
        assert ga_result.n_evaluations < 250

    def test_validation(self):
        with pytest.raises(WorkflowError):
            GeneticSearch({})
        with pytest.raises(WorkflowError):
            GeneticSearch({"a": (1, 0)})
        with pytest.raises(WorkflowError):
            GeneticSearch({"a": (0, 1)}, population=2)


class TestRunIteration:
    def test_uniform_entry_point(self):
        result = run_iteration(
            LinearScan("x", 0, 1, tolerance=100), lambda p: p["x"]
        )
        assert result.converged
