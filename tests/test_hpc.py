"""Tests for the HPC simulator: clock, cluster, batch queue, farm, network, NUMA."""

import pytest

from repro.errors import HPCError, NetworkPolicyError, QueueLimitExceeded
from repro.hpc import (
    BatchJob,
    BatchQueue,
    Cluster,
    FarmTask,
    NetworkPolicy,
    Node,
    NUMAModel,
    Reservation,
    SimClock,
    TaskFarm,
)


class TestSimClock:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        seen = []
        clock.schedule_in(5, lambda: seen.append("b"))
        clock.schedule_in(1, lambda: seen.append("a"))
        clock.schedule_in(9, lambda: seen.append("c"))
        clock.run_all()
        assert seen == ["a", "b", "c"]
        assert clock.now == 9

    def test_ties_break_by_insertion(self):
        clock = SimClock()
        seen = []
        clock.schedule_at(3, lambda: seen.append(1))
        clock.schedule_at(3, lambda: seen.append(2))
        clock.run_all()
        assert seen == [1, 2]

    def test_run_until(self):
        clock = SimClock()
        seen = []
        clock.schedule_in(2, lambda: seen.append("x"))
        clock.schedule_in(10, lambda: seen.append("y"))
        clock.run_until(5)
        assert seen == ["x"]
        assert clock.now == 5

    def test_cascading_events(self):
        clock = SimClock()
        seen = []

        def fire(n):
            seen.append(n)
            if n < 3:
                clock.schedule_in(1, lambda: fire(n + 1))

        clock.schedule_in(1, lambda: fire(1))
        clock.run_all()
        assert seen == [1, 2, 3]

    def test_past_scheduling_rejected(self):
        clock = SimClock(start=10)
        with pytest.raises(HPCError):
            clock.schedule_at(5, lambda: None)
        with pytest.raises(HPCError):
            clock.schedule_in(-1, lambda: None)


class TestCluster:
    def test_build(self):
        cluster = Cluster.build(n_compute=4, cores_per_node=24)
        assert cluster.total_compute_cores == 96
        assert len([n for n in cluster.nodes if n.node_class == "login"]) == 1

    def test_allocation_and_release(self):
        cluster = Cluster.build(n_compute=2, cores_per_node=8)
        plan = cluster.try_allocate(12)  # spans two nodes
        assert plan is not None
        assert cluster.free_compute_cores == 4
        cluster.release(plan)
        assert cluster.free_compute_cores == 16

    def test_over_allocation_returns_none(self):
        cluster = Cluster.build(n_compute=1, cores_per_node=8)
        assert cluster.try_allocate(9) is None
        assert cluster.free_compute_cores == 8  # nothing leaked

    def test_numa_geometry_validation(self):
        with pytest.raises(HPCError):
            Node("bad", cores=10, numa_domains=4)

    def test_utilization(self):
        cluster = Cluster.build(n_compute=2, cores_per_node=8)
        cluster.try_allocate(8)
        assert cluster.utilization() == pytest.approx(0.5)


class TestBatchQueue:
    def make_queue(self, **kw):
        cluster = Cluster.build(n_compute=2, cores_per_node=24)
        return BatchQueue(cluster, max_queued_per_user=kw.pop("limit", 8), **kw)

    def test_job_runs_to_completion(self):
        q = self.make_queue()
        job = q.submit(BatchJob("alice", cores=24, walltime_request_s=100, work=50))
        q.run_until_idle()
        assert job.state == "COMPLETED"
        assert job.end_time == pytest.approx(50)

    def test_walltime_kill(self):
        q = self.make_queue()
        job = q.submit(BatchJob("alice", cores=24, walltime_request_s=30, work=100))
        q.run_until_idle()
        assert job.state == "KILLED_WALLTIME"
        assert job.end_time == pytest.approx(30)

    def test_per_user_queue_limit(self):
        q = self.make_queue(limit=3)
        # Saturate the cluster so jobs stay queued.
        for _ in range(3):
            q.submit(BatchJob("alice", cores=24, walltime_request_s=100, work=90))
        with pytest.raises(QueueLimitExceeded):
            q.submit(BatchJob("alice", cores=24, walltime_request_s=100, work=90))
        # Another user is unaffected.
        q.submit(BatchJob("bob", cores=24, walltime_request_s=100, work=10))
        assert q.rejections == 1

    def test_reservation_lifts_queue_limit(self):
        q = self.make_queue(limit=2)
        q.add_reservation(Reservation("alice", start=0, end=1000, cores=24))
        for _ in range(10):  # far beyond the limit
            q.submit(BatchJob("alice", cores=24, walltime_request_s=50, work=10))
        q.run_until_idle()
        assert sum(1 for j in q.history if j.state == "COMPLETED") == 10

    def test_reservation_holds_cores_from_others(self):
        q = self.make_queue()
        q.add_reservation(Reservation("alice", start=0, end=500, cores=24))
        bob = q.submit(BatchJob("bob", cores=48, walltime_request_s=50, work=10))
        # Only 24 of 48 cores are open to bob while the reservation is active.
        assert bob.state == "QUEUED"
        alice = q.submit(BatchJob("alice", cores=48, walltime_request_s=50, work=10))
        assert alice.state == "RUNNING"

    def test_fifo_with_priority(self):
        q = self.make_queue()
        blocker = q.submit(BatchJob("x", cores=48, walltime_request_s=100, work=10))
        low = q.submit(BatchJob("x", cores=48, walltime_request_s=50, work=5))
        high = q.submit(
            BatchJob("y", cores=48, walltime_request_s=50, work=5, priority=10)
        )
        q.run_until_idle()
        assert high.start_time < low.start_time

    def test_queue_wait_accounting(self):
        q = self.make_queue()
        a = q.submit(BatchJob("u", cores=48, walltime_request_s=100, work=60))
        b = q.submit(BatchJob("u", cores=48, walltime_request_s=100, work=10))
        q.run_until_idle()
        assert a.queue_wait_s == 0
        assert b.queue_wait_s == pytest.approx(60)

    def test_callable_work(self):
        q = self.make_queue()
        job = q.submit(
            BatchJob("u", cores=24, walltime_request_s=100, work=lambda j: 42.0)
        )
        q.run_until_idle()
        assert job.actual_runtime_s == 42.0

    def test_stats(self):
        q = self.make_queue()
        q.submit(BatchJob("u", cores=24, walltime_request_s=100, work=10))
        q.submit(BatchJob("u", cores=24, walltime_request_s=5, work=10))
        q.run_until_idle()
        s = q.stats()
        assert s["completed"] == 1
        assert s["killed_walltime"] == 1

    def test_impossible_job_detected(self):
        q = self.make_queue()
        q.submit(BatchJob("u", cores=9999, walltime_request_s=10, work=1))
        with pytest.raises(HPCError):
            q.run_until_idle()


class TestTaskFarm:
    def make_tasks(self, n=20):
        # Runtime spread of ~10x, like the paper's VASP population.
        return [
            FarmTask(f"t{i}", estimated_runtime_s=300 + (i * 137) % 2700)
            for i in range(n)
        ]

    def test_all_tasks_assigned(self):
        farm = TaskFarm(self.make_tasks(), n_slots=4)
        assert sum(len(s) for s in farm.slots) == 20
        assert all(t.slot is not None for t in farm.tasks)

    def test_makespan_bounds(self):
        farm = TaskFarm(self.make_tasks(), n_slots=4)
        lower = farm.total_work_s / 4
        upper = farm.total_work_s
        assert lower <= farm.makespan_s < upper

    def test_lpt_packing_efficiency(self):
        farm = TaskFarm(self.make_tasks(40), n_slots=4)
        assert farm.packing_efficiency > 0.85

    def test_smoothing(self):
        """Farm slot loads vary far less than individual task runtimes."""
        farm = TaskFarm(self.make_tasks(40), n_slots=4)
        assert farm.smoothing_ratio() > 3.0

    def test_farm_uses_one_queue_slot(self):
        farm = TaskFarm(self.make_tasks(30), n_slots=2, cores_per_slot=24)
        job = farm.as_batch_job()
        assert job.cores == 48
        jobs = farm.individual_batch_jobs()
        assert len(jobs) == 30

    def test_farm_beats_queue_limit(self):
        """30 tasks, limit 8 queued jobs/user: individually impossible to
        submit at once; as a farm it is a single submission."""
        cluster = Cluster.build(n_compute=2, cores_per_node=24)
        q = BatchQueue(cluster, max_queued_per_user=8)
        farm = TaskFarm(self.make_tasks(30), n_slots=2, cores_per_slot=24)
        job = q.submit(farm.as_batch_job())
        q.run_until_idle()
        assert job.state == "COMPLETED"
        # Individual submission hits the limit almost immediately.
        q2 = BatchQueue(Cluster.build(n_compute=2, cores_per_node=24),
                        max_queued_per_user=8)
        submitted = 0
        for j in farm.individual_batch_jobs():
            try:
                q2.submit(j)
                submitted += 1
            except QueueLimitExceeded:
                break
        assert submitted < 30

    def test_empty_farm_rejected(self):
        with pytest.raises(HPCError):
            TaskFarm([], n_slots=2)


class TestNetworkPolicy:
    def make_policy(self):
        policy = NetworkPolicy()
        policy.register("c001", "compute")
        policy.register("login01", "login")
        policy.register("mid00", "midrange")
        policy.register("db.lbl.gov", "external")
        return policy

    def test_compute_cannot_reach_external(self):
        policy = self.make_policy()
        assert not policy.allowed("c001", "db.lbl.gov")
        with pytest.raises(NetworkPolicyError):
            policy.check("c001", "db.lbl.gov")
        assert policy.denied_attempts == 1

    def test_compute_can_reach_proxy_hosts(self):
        policy = self.make_policy()
        assert policy.allowed("c001", "login01")
        assert policy.allowed("c001", "mid00")

    def test_midrange_reaches_external(self):
        policy = self.make_policy()
        assert policy.allowed("mid00", "db.lbl.gov")

    def test_external_cannot_reach_compute(self):
        policy = self.make_policy()
        assert not policy.allowed("db.lbl.gov", "c001")

    def test_unknown_host(self):
        with pytest.raises(NetworkPolicyError):
            self.make_policy().check("ghost", "login01")

    def test_register_cluster(self):
        policy = NetworkPolicy()
        policy.register_cluster(Cluster.build(n_compute=2))
        assert policy.host_class("c000") == "compute"
        assert policy.host_class("login01") == "login"

    def test_policy_enforced_on_real_connection(self):
        """End-to-end: compute node must go through the proxy host."""
        from repro.docstore import DatastoreServer, DocumentStore

        policy = self.make_policy()
        with DatastoreServer(DocumentStore()) as server:
            with pytest.raises(NetworkPolicyError):
                policy.connect("c001", "db.lbl.gov", server.address)
            client = policy.connect("mid00", "db.lbl.gov", server.address)
            assert client.ping()
            client.close()


class TestNUMA:
    def test_interleave_spreads_evenly(self):
        numa = NUMAModel(n_domains=4, domain_capacity_mb=1000)
        assert numa.placement(2000, "interleave") == [500.0] * 4

    def test_first_touch_spills(self):
        numa = NUMAModel(n_domains=4, domain_capacity_mb=1000)
        assert numa.placement(2500, "first_touch") == [1000, 1000, 500, 0]

    def test_interleave_latency_independent_of_size(self):
        numa = NUMAModel(n_domains=4, domain_capacity_mb=8192)
        small = numa.effective_latency_ns(100, "interleave")
        large = numa.effective_latency_ns(30000, "interleave")
        assert small == pytest.approx(large)

    def test_first_touch_degrades_for_large_working_sets(self):
        """A small DB fits one domain (fast for local threads, slow for
        others); a big one spills and behaves more like interleave."""
        numa = NUMAModel(n_domains=4, domain_capacity_mb=1000)
        # Expected latency for threads spread over domains:
        small_ft = numa.effective_latency_ns(500, "first_touch")
        inter = numa.effective_latency_ns(500, "interleave")
        # With uniform threads, one-domain placement gives 1/4 local + 3/4
        # remote — identical to interleave's expectation, but interleave is
        # *predictable*; the paper's "minimal impact" claim:
        assert numa.interleave_penalty(500) <= 1.5

    def test_scan_time_positive_and_monotonic(self):
        numa = NUMAModel()
        assert numa.scan_time_s(1000, "interleave") > numa.scan_time_s(
            100, "interleave"
        )

    def test_capacity_enforced(self):
        numa = NUMAModel(n_domains=2, domain_capacity_mb=100)
        with pytest.raises(HPCError):
            numa.placement(500, "first_touch")

    def test_validation(self):
        with pytest.raises(HPCError):
            NUMAModel(local_latency_ns=200, remote_latency_ns=100)
        with pytest.raises(HPCError):
            NUMAModel().placement(100, "random")


class TestBackfill:
    def make_queue(self, backfill):
        cluster = Cluster.build(n_compute=2, cores_per_node=24)
        return BatchQueue(cluster, max_queued_per_user=100, backfill=backfill)

    def submit_blocked_head_pattern(self, q):
        """A wide head job blocks; small jobs could run around it."""
        q.submit(BatchJob("u", cores=48, walltime_request_s=100, work=50))
        head = q.submit(BatchJob("u", cores=48, walltime_request_s=100, work=10))
        smalls = [
            q.submit(BatchJob("u", cores=0 + 12, walltime_request_s=100, work=20))
            for _ in range(2)
        ]
        return head, smalls

    def test_backfill_runs_small_jobs_around_blocked_head(self):
        q = self.make_queue(backfill=True)
        # Occupy 36 of 48 cores so a 48-core head job cannot start, but
        # 12-core jobs can.
        q.submit(BatchJob("u", cores=36, walltime_request_s=200, work=100))
        head = q.submit(BatchJob("u", cores=48, walltime_request_s=100, work=10))
        small = q.submit(BatchJob("u", cores=12, walltime_request_s=50, work=5))
        assert head.state == "QUEUED"
        assert small.state == "RUNNING"  # backfilled past the head
        q.run_until_idle()

    def test_strict_fifo_blocks_behind_head(self):
        q = self.make_queue(backfill=False)
        q.submit(BatchJob("u", cores=36, walltime_request_s=200, work=100))
        head = q.submit(BatchJob("u", cores=48, walltime_request_s=100, work=10))
        small = q.submit(BatchJob("u", cores=12, walltime_request_s=50, work=5))
        assert head.state == "QUEUED"
        assert small.state == "QUEUED"  # must wait behind the head
        q.run_until_idle()
        assert small.state == "COMPLETED"

    def test_backfill_improves_queue_waits(self):
        """Backfill's win is utilization/wait time, not fixed-set makespan:
        small jobs stop idling behind a wide blocked head."""

        def run(backfill):
            q = self.make_queue(backfill)
            q.submit(BatchJob("u", cores=36, walltime_request_s=400, work=300))
            q.submit(BatchJob("u", cores=48, walltime_request_s=400, work=50))
            for _ in range(4):
                q.submit(BatchJob("u", cores=12, walltime_request_s=300, work=200))
            q.run_until_idle()
            return q.stats()["mean_queue_wait_s"]

        assert run(True) < run(False)
