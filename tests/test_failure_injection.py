"""Failure-injection tests: crashes, failovers, races, poisoned inputs."""

import os
import threading

import pytest

from repro.docstore import Collection, DocumentStore, ReplicaSet
from repro.errors import DuplicateKeyError, RateLimitExceeded


class TestCrashRecovery:
    def test_recovery_preserves_unique_constraints(self, tmp_path):
        """Index metadata survives a snapshot; recovered stores still
        reject duplicates."""
        d = str(tmp_path / "s")
        store = DocumentStore(persistence_dir=d)
        coll = store["mp"]["tasks"]
        coll.create_index("task_id", unique=True)
        coll.insert_one({"task_id": "t1"})
        store.snapshot()
        del store

        recovered = DocumentStore(persistence_dir=d)
        with pytest.raises(DuplicateKeyError):
            recovered["mp"]["tasks"].insert_one({"task_id": "t1"})

    def test_repeated_crash_recover_cycles(self, tmp_path):
        """Ten crash/recover cycles with interleaved writes lose nothing."""
        d = str(tmp_path / "s")
        for cycle in range(10):
            store = DocumentStore(persistence_dir=d)
            coll = store["mp"]["log"]
            assert coll.count_documents() == cycle
            coll.insert_one({"cycle": cycle})
            if cycle % 3 == 0:
                store.snapshot()
            del store  # crash (journal holds the rest)
        final = DocumentStore(persistence_dir=d)
        assert final["mp"]["log"].count_documents() == 10

    def test_garbage_journal_lines_skipped_at_tail_only(self, tmp_path):
        d = str(tmp_path / "s")
        store = DocumentStore(persistence_dir=d)
        store["mp"]["c"].insert_many([{"k": i} for i in range(3)])
        del store
        journal = os.path.join(d, "journal.jsonl")
        with open(journal, "a") as fh:
            fh.write("NOT JSON AT ALL {{{\n")
        recovered = DocumentStore(persistence_dir=d)
        assert recovered["mp"]["c"].count_documents() == 3


class TestReplicaFailover:
    def test_writes_during_failover_not_lost(self):
        """Write, fail over, keep writing; full history on the new primary."""
        rs = ReplicaSet("rs", n_secondaries=2)
        rs.primary["m"].insert_many([{"_id": i} for i in range(5)])
        rs.replicate()
        rs.step_down()
        rs.primary["m"].insert_many([{"_id": i} for i in range(5, 10)])
        assert rs.primary["m"].count_documents() == 10

    def test_laggy_secondary_not_elected(self):
        rs = ReplicaSet("rs", n_secondaries=2)
        rs.primary["m"].insert_many([{} for _ in range(8)])
        fresh, stale = rs.secondaries
        rs.replicate(fresh)  # only one secondary catches up
        promoted = rs.step_down()
        assert promoted is fresh

    def test_concurrent_writes_with_background_replication(self):
        import time

        rs = ReplicaSet("rs", n_secondaries=1)
        rs.start_background_replication(interval_s=0.002)

        def writer(base):
            for i in range(25):
                rs.primary["m"].insert_one({"_id": base + i})

        threads = [threading.Thread(target=writer, args=(k * 100,))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        deadline = time.time() + 3
        while time.time() < deadline:
            if rs.secondaries[0].database["m"].count_documents() == 100:
                break
            time.sleep(0.01)
        rs.stop_background_replication()
        assert rs.secondaries[0].database["m"].count_documents() == 100


class TestConcurrencyRaces:
    def test_unique_index_under_concurrent_inserts(self):
        """N threads race to claim the same natural key: exactly one wins."""
        coll = Collection("locks")
        coll.create_index("name", unique=True)
        wins = []
        losses = []

        def claim(tid):
            try:
                coll.insert_one({"name": "the-lock", "tid": tid})
                wins.append(tid)
            except DuplicateKeyError:
                losses.append(tid)

        threads = [threading.Thread(target=claim, args=(i,)) for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert len(losses) == 11
        assert len(coll) == 1

    def test_upsert_race_single_document(self):
        """Concurrent counting upserts on one key never lose increments."""
        coll = Collection("counters")

        def bump():
            for _ in range(50):
                coll.update_one({"k": "hits"}, {"$inc": {"n": 1}}, upsert=True)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        docs = coll.find({"k": "hits"}).to_list()
        # Upsert itself can race to create two docs only if find+insert were
        # not atomic — our collection lock prevents that.
        assert len(docs) == 1
        assert docs[0]["n"] == 200

    def test_rate_limiter_thread_safety(self):
        from repro.api import RateLimiter

        limiter = RateLimiter(max_requests=100, window_s=60,
                              clock=lambda: 0.0)
        admitted = []
        denied = []

        def hammer():
            for _ in range(50):
                try:
                    limiter.check("user")
                    admitted.append(1)
                except RateLimitExceeded:
                    denied.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 100
        assert len(denied) == 100


class TestPoisonedInputs:
    def test_unparseable_run_directory_counted_not_fatal(self, tmp_path):
        """A corrupt run dir must not abort the loading sweep (§IV-C1)."""
        from repro.builders import TaskLoader
        from repro.dft import FakeVASP, Resources, SCFParameters
        from repro.matgen import make_prototype

        good = str(tmp_path / "good")
        FakeVASP().run(
            make_prototype("rocksalt", ["Na", "Cl"]),
            SCFParameters(amix=0.15, algo="All", nelm=500),
            Resources(walltime_s=1e9, memory_mb=1e6), run_dir=good,
        )
        bad = str(tmp_path / "bad")
        os.makedirs(bad)
        with open(os.path.join(bad, "run_summary.json"), "w") as fh:
            fh.write("{ corrupt json")
        db = DocumentStore()["mp"]
        stats = TaskLoader(db).load_tree(str(tmp_path))
        assert stats["loaded"] == 1
        assert stats["unparseable"] == 1

    def test_wire_protocol_rejects_garbage_without_dying(self):
        import socket

        from repro.docstore import DatastoreServer

        with DatastoreServer(DocumentStore()) as server:
            sock = socket.create_connection(("127.0.0.1", server.port),
                                            timeout=5)
            fh = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            response = fh.readline()
            assert b'"ok": false' in response or b"false" in response
            # The server is still alive for proper requests.
            sock.sendall(b'{"op": "ping"}\n')
            assert b"pong" in fh.readline()
            sock.close()

    def test_vnv_survives_absurd_documents(self):
        """Rules never crash on missing/odd fields — they report or skip."""
        from repro.builders import VnVRunner

        db = DocumentStore()["mp"]
        db["materials"].insert_many([
            {},  # empty
            {"band_gap": None, "formation_energy_per_atom": None},
            {"reduced_formula": "NaCl"},  # known compound with no data
        ])
        db["tasks"].insert_one({"state": "COMPLETED"})
        report = VnVRunner(db).run_all()
        assert isinstance(report["n_violations"], int)
