"""Tests for the fleet health monitor: samplers, index advisor, SLO alerts,
HTTP health endpoints, CLI subcommands, and the benchmark regression gate."""

import json
import sys
import urllib.error
import urllib.request

import pytest

from repro.api import MaterialsAPI, MaterialsAPIServer, QueryEngine
from repro.docstore import (
    DatastoreProxy,
    DatastoreServer,
    DocumentStore,
    RemoteClient,
)
from repro.docstore.changestream import ChangeStream
from repro.docstore.replication import ReplicaSet
from repro.docstore.sharding import ShardedCollection
from repro.obs import (
    BurnRateRule,
    HealthMonitor,
    IndexAdvisor,
    LatencyWindowSource,
    MetricsRegistry,
    SLOEngine,
    ServerStatusSampler,
    ThresholdRule,
    TopSampler,
    format_stat_table,
    format_top_table,
    get_registry,
    set_registry,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = get_registry()
    set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture
def db():
    return DocumentStore()["mp"]


class TestServerStatusSampler:
    def test_requires_server_status(self):
        with pytest.raises(TypeError):
            ServerStatusSampler(object())

    def test_deltas_match_known_op_counts(self, db):
        sampler = ServerStatusSampler(db)
        sampler.sample()
        coll = db["materials"]
        coll.insert_many([{"i": i} for i in range(5)])
        coll.find({"i": 2}).to_list()
        coll.find({"i": 3}).to_list()
        coll.update_one({"i": 2}, {"$set": {"seen": True}})
        s = sampler.sample()
        assert s["deltas"]["insert"] == 5  # opcounters count per document
        assert s["deltas"]["query"] == 2
        assert s["deltas"]["update"] == 1
        # third sample with no traffic: all deltas back to zero
        s3 = sampler.sample()
        assert all(v == 0 for v in s3["deltas"].values())

    def test_totals_are_cumulative(self, db):
        sampler = ServerStatusSampler(db)
        db["m"].insert_one({"a": 1})
        sampler.sample()
        db["m"].insert_one({"a": 2})
        s = sampler.sample()
        assert s["totals"]["insert"] == 2
        assert s["deltas"]["insert"] == 1

    def test_store_level_aggregate(self):
        store = DocumentStore()
        store["db1"]["c"].insert_one({"x": 1})
        store["db2"]["c"].insert_one({"x": 2})
        sampler = ServerStatusSampler(store)
        s = sampler.sample()
        assert s["totals"]["insert"] == 2
        assert s["objects"] == 2

    def test_series_extraction(self, db):
        sampler = ServerStatusSampler(db)
        sampler.sample(now=1.0)
        db["m"].insert_one({})
        sampler.sample(now=2.0)
        series = sampler.series("insert")
        assert series == [(1.0, 0), (2.0, 1)]

    def test_run_collects_n_samples(self, db):
        sampler = ServerStatusSampler(db)
        out = sampler.run(3, interval_s=0.0)
        assert len(out) == 3
        assert len(sampler.samples()) == 3

    def test_active_ops_counts_inflight(self, db):
        # current_op lives on the store; reaches it via db.client
        sampler = ServerStatusSampler(db)
        s = sampler.sample()
        assert s["active_ops"] == 0


class TestTopSampler:
    def test_read_and_write_buckets(self, db):
        sampler = TopSampler(db)
        sampler.sample()
        db["tasks"].insert_many([{"i": i} for i in range(10)])
        db["tasks"].find({"i": 5}).to_list()
        db["materials"].insert_one({"m": 1})
        s = sampler.sample()
        tasks = s["deltas"]["mp.tasks"]
        assert tasks["write_count"] == 10  # per-document, like opcounters
        assert tasks["read_count"] == 1
        assert tasks["write_ms"] > 0
        assert tasks["read_ms"] > 0
        assert tasks["total_ms"] == pytest.approx(
            tasks["read_ms"] + tasks["write_ms"])
        assert s["deltas"]["mp.materials"]["write_count"] == 1

    def test_system_collections_not_tracked(self, db):
        db.set_profiling_level(2)
        db["m"].insert_one({"x": 1})
        db["m"].find({"x": 1}).to_list()
        assert all(not ns.split(".", 1)[1].startswith("system.")
                   for ns in db.top())

    def test_deltas_reset_between_intervals(self, db):
        sampler = TopSampler(db)
        db["m"].insert_one({"x": 1})
        sampler.sample()
        s = sampler.sample()
        assert s["deltas"]["mp.m"]["write_count"] == 0

    def test_table_rendering(self, db):
        sampler = TopSampler(db)
        db["m"].insert_one({"x": 1})
        text = format_top_table(sampler.sample())
        assert "ns" in text and "mp.m" in text and "ms" in text


class TestStatTableRendering:
    def test_columns_aligned_and_ordered(self, db):
        sampler = ServerStatusSampler(db)
        db["m"].insert_one({})
        text = format_stat_table([sampler.sample()])
        header, row = text.splitlines()
        assert header.index("insert") < header.index("query")
        assert header.index("query") < header.index("command")
        # the insert delta ("1") sits under the insert column
        assert row[:9].strip() == "1"

    def test_no_header_mode(self, db):
        sampler = ServerStatusSampler(db)
        text = format_stat_table([sampler.sample()], header=False)
        assert "insert" not in text


class TestIndexStatsWire:
    def test_index_stats_over_wire(self):
        store = DocumentStore()
        coll = store["mp"]["materials"]
        coll.create_index("band_gap")
        coll.insert_many([{"band_gap": i / 10} for i in range(5)])
        coll.find({"band_gap": 0.2}).to_list()
        server = DatastoreServer(store)
        server.start()
        try:
            with RemoteClient("127.0.0.1", server.port) as client:
                stats = client["mp"]["materials"].index_stats()
                by_name = {s["field"]: s for s in stats}
                assert by_name["band_gap"]["accesses"]["ops"] == 1
                status = client["mp"].server_status()
                assert status["opcounters"]["insert"] == 5
                top = client["mp"].top()
                assert "mp.materials" in top
        finally:
            server.stop()

    def test_remote_sampler_sees_server_side_traffic(self):
        store = DocumentStore()
        server = DatastoreServer(store)
        server.start()
        try:
            with RemoteClient("127.0.0.1", server.port) as client:
                sampler = ServerStatusSampler(client)
                sampler.sample()
                client["mp"]["m"].insert_one({"x": 1})
                s = sampler.sample()
                assert s["deltas"]["insert"] == 1
        finally:
            server.stop()


class TestIndexAdvisor:
    def _seed_workload(self, db, n_docs=500, n_queries=8):
        coll = db["materials"]
        coll.insert_many([
            {"state": i % 5, "group": i % 100} for i in range(n_docs)
        ])
        db.set_profiling_level(2)
        for q in range(n_queries):
            coll.find({"group": q}).to_list()
        return coll

    def test_seeded_workload_yields_exactly_the_missing_index(self, db):
        self._seed_workload(db)
        recs = IndexAdvisor(db).analyze()
        assert len(recs) == 1
        rec = recs[0]
        assert rec.ns == "mp.materials"
        assert rec.field == "group"
        assert rec.occurrences == 8
        assert rec.docs_examined_before == 500
        assert rec.estimated_docs_examined_after == 5  # 500 docs / 100 groups
        assert rec.estimated_reduction == pytest.approx(0.99)
        assert 'create_index("group")' in rec.command

    def test_explain_replay_shows_docs_examined_drop(self, db):
        self._seed_workload(db)
        advisor = IndexAdvisor(db)
        rec = advisor.analyze()[0]
        result = advisor.verify(rec)
        assert result["before"]["stage"] == "COLLSCAN"
        assert result["before"]["docsExamined"] == 500
        assert result["after"]["stage"] == "IXSCAN"
        assert result["after"]["docsExamined"] == 5
        assert result["docs_examined_drop"] == 495
        # verify(keep=False) leaves no index behind
        assert "group" not in {
            i["field"] for i in db["materials"].index_information().values()
        }

    def test_verify_keep_retains_index_and_silences_advisor(self, db):
        self._seed_workload(db)
        advisor = IndexAdvisor(db)
        rec = advisor.analyze()[0]
        advisor.verify(rec, keep=True)
        assert "group" in {
            i["field"] for i in db["materials"].index_information().values()
        }
        # the indexed field is no longer a candidate on fresh analysis of
        # the same entries (already-indexed fields are filtered out)
        assert all(r.field != "group" for r in advisor.analyze())

    def test_indexed_queries_produce_no_recommendation(self, db):
        coll = db["materials"]
        coll.create_index("group")
        coll.insert_many([{"group": i % 10} for i in range(100)])
        db.set_profiling_level(2)
        coll.find({"group": 3}).to_list()
        assert IndexAdvisor(db).analyze() == []

    def test_min_occurrences_filters_one_off_scans(self, db):
        coll = db["materials"]
        coll.insert_many([{"group": i} for i in range(50)])
        db.set_profiling_level(2)
        coll.find({"group": 7}).to_list()
        assert IndexAdvisor(db, min_occurrences=2).analyze() == []
        assert len(IndexAdvisor(db, min_occurrences=1).analyze()) == 1

    def test_probing_does_not_pollute_profile(self, db):
        self._seed_workload(db)
        before = len(db.profile_log)
        IndexAdvisor(db).analyze()
        assert len(db.profile_log) == before
        assert db.get_profiling_level() == 2  # restored

    def test_unused_indexes_reported(self, db):
        coll = db["materials"]
        coll.create_index("dead_field")
        coll.create_index("group")
        coll.insert_many([{"group": i} for i in range(10)])
        coll.find({"group": 3}).to_list()
        unused = IndexAdvisor(db).unused_indexes()
        assert [u["field"] for u in unused] == ["dead_field"]


class TestSLOWindowMath:
    def test_burn_rate_exact_window_math(self):
        # 100 events in-window, 10 bad at threshold 250ms, objective 99%
        events = [(100.0 + i, 5.0 if i % 10 else 500.0) for i in range(100)]
        source = LatencyWindowSource(250.0, lambda: events)
        assert source.window_counts(100.0, 199.0) == (90, 100)
        rule = BurnRateRule("burn", source, objective=0.99, window_s=300.0)
        breach = rule.evaluate({}, now=199.0)
        # bad_fraction 0.10 / budget 0.01 = burn rate 10
        assert breach["value"] == pytest.approx(10.0)
        assert breach["detail"]["bad"] == 10
        assert breach["detail"]["total"] == 100
        assert breach["detail"]["bad_fraction"] == pytest.approx(0.10)
        assert breach["detail"]["budget"] == pytest.approx(0.01)

    def test_window_excludes_old_events(self):
        events = [(10.0, 999.0)] + [(100.0 + i, 1.0) for i in range(50)]
        source = LatencyWindowSource(250.0, lambda: events)
        rule = BurnRateRule("burn", source, objective=0.99, window_s=60.0)
        # the one bad event at t=10 is outside [90, 150]
        assert rule.evaluate({}, now=150.0) is None

    def test_no_traffic_means_no_breach(self):
        source = LatencyWindowSource(250.0, lambda: [])
        rule = BurnRateRule("burn", source, objective=0.99, window_s=60.0)
        assert rule.evaluate({}, now=100.0) is None

    def test_threshold_rule_skips_missing_gauge(self):
        rule = ThresholdRule("lag", gauge="replication_max_lag",
                             threshold=100.0)
        assert rule.evaluate({}, now=0.0) is None
        assert rule.evaluate({"replication_max_lag": 50.0}, now=0.0) is None
        breach = rule.evaluate({"replication_max_lag": 150.0}, now=0.0)
        assert breach["value"] == 150.0


class TestSLOEngineLifecycle:
    def test_alert_document_lands_with_correct_window_math(self, db):
        events = [(100.0 + i, 500.0) for i in range(20)]
        source = LatencyWindowSource(250.0, lambda: events)
        rule = BurnRateRule("latency", source, objective=0.99,
                            window_s=300.0, severity="critical")
        engine = SLOEngine(db, [rule])
        opened = engine.evaluate(now=150.0)
        assert len(opened) == 1
        stored = db["system.alerts"].find_one({"rule": "latency"})
        assert stored["state"] == "open"
        assert stored["severity"] == "critical"
        assert stored["opened_at"] == 150.0
        assert stored["value"] == pytest.approx(100.0)  # all-bad burn rate
        assert stored["detail"]["total"] == 20
        assert engine.status() == "critical"

    def test_persisting_breach_touches_not_duplicates(self, db):
        events = [(100.0, 500.0)]
        rule = BurnRateRule(
            "latency", LatencyWindowSource(250.0, lambda: events),
            objective=0.99, window_s=300.0)
        engine = SLOEngine(db, [rule])
        engine.evaluate(now=110.0)
        assert engine.evaluate(now=120.0) == []  # second pass: touch
        docs = db["system.alerts"].find({"rule": "latency"}).to_list()
        assert len(docs) == 1
        assert docs[0]["evaluations"] == 2
        assert docs[0]["last_seen"] == 120.0

    def test_recovery_resolves_alert(self, db):
        events = [(100.0, 500.0)]
        rule = BurnRateRule(
            "latency", LatencyWindowSource(250.0, lambda: events),
            objective=0.99, window_s=50.0)
        engine = SLOEngine(db, [rule])
        engine.evaluate(now=110.0)
        assert engine.status() == "critical"
        engine.evaluate(now=500.0)  # event aged out of the window
        assert engine.status() == "green"
        doc = db["system.alerts"].find_one({"rule": "latency"})
        assert doc["state"] == "resolved"
        assert doc["resolved_at"] == 500.0

    def test_injected_proxy_latency_lands_alert(self, db):
        """The existing failure-injection hook (proxy forward_latency_s)
        drives a burn-rate breach end to end over the wire."""
        store = DocumentStore()
        server = DatastoreServer(store)
        server.start()
        proxy = DatastoreProxy("127.0.0.1", server.port,
                               forward_latency_s=0.02)
        proxy.start()
        try:
            with proxy.client() as client:
                coll = client["mp"]["materials"]
                coll.insert_one({"material_id": "mp-1"})
                for _ in range(5):
                    coll.find_one({"material_id": "mp-1"})
            rule = BurnRateRule(
                "proxy-latency",
                LatencyWindowSource.from_proxy(proxy, threshold_ms=5.0),
                objective=0.99, window_s=300.0, severity="critical")
            engine = SLOEngine(db, [rule])
            opened = engine.evaluate()
            assert len(opened) == 1
            stored = db["system.alerts"].find_one({"rule": "proxy-latency"})
            assert stored["detail"]["total"] >= 6
            assert stored["detail"]["bad"] == stored["detail"]["total"]
            assert stored["value"] == pytest.approx(100.0)
        finally:
            proxy.stop()
            server.stop()

    def test_profile_source_windows_over_system_profile(self, db):
        db.set_profiling_level(2)
        db["m"].insert_one({"x": 1})
        db["m"].find({"x": 1}).to_list()
        source = LatencyWindowSource.from_profile(db, threshold_ms=1e6)
        good, total = source.window_counts(0.0, 1e12)
        assert total >= 2
        assert good == total  # nothing slower than 1e6 ms


class TestHealthMonitor:
    def test_green_on_fresh_store(self, db):
        report = HealthMonitor(db).report()
        assert report["status"] == "green"
        assert report["new_alerts"] == []

    def test_replication_lag_opens_then_resolves(self, db):
        rs = ReplicaSet("rs0", n_secondaries=2)
        monitor = HealthMonitor(db).watch_replica_set(rs)
        for i in range(150):
            rs.primary["m"].insert_one({"i": i})
        report = report_open = monitor.report(now=1000.0)
        assert report_open["status"] == "warn"
        assert report_open["gauges"]["replication_max_lag"] == 150
        assert [a["rule"] for a in report_open["new_alerts"]] == [
            "replication-lag"]
        stored = db["system.alerts"].find_one({"rule": "replication-lag"})
        assert stored["state"] == "open"
        assert stored["value"] == 150
        rs.replicate()
        report = monitor.report(now=1010.0)
        assert report["status"] == "green"
        assert report["gauges"]["replication_max_lag"] == 0
        assert db["system.alerts"].find_one(
            {"rule": "replication-lag"})["state"] == "resolved"

    def test_shard_imbalance_gauge(self, db):
        store = DocumentStore()
        shards = [store["s0"]["m"], store["s1"]["m"], store["s2"]["m"]]
        sc = ShardedCollection("m", "k", shards, strategy="range",
                               boundaries=[1000, 2000])
        for i in range(40):
            sc.insert_one({"k": i})  # all land on the first shard
        sc.insert_one({"k": 1500})
        sc.insert_one({"k": 5000})
        monitor = HealthMonitor(db).watch_sharded("m", sc)
        report = monitor.report(now=0.0)
        # 40/1/1 docs: max 40 over mean 14 is ~2.9x imbalance
        assert report["gauges"]["shard_max_balance_factor"] > 2.0
        assert report["status"] == "warn"
        assert [a["rule"] for a in report["new_alerts"]] == [
            "shard-imbalance"]

    def test_changestream_backlog_gauge(self, db):
        coll = db["m"]
        stream = ChangeStream(coll, max_buffer=10)
        for i in range(8):
            coll.insert_one({"i": i})
        monitor = HealthMonitor(db).watch_changestream("m", stream)
        report = monitor.report(now=0.0)
        assert report["gauges"][
            "changestream_max_backlog_fraction"] == pytest.approx(0.8)
        assert [a["rule"] for a in report["new_alerts"]] == [
            "changestream-backlog"]
        stream.drain()
        assert monitor.report(now=1.0)["status"] == "green"

    def test_gauges_exported_to_metrics_registry(self, db):
        rs = ReplicaSet("rs0", n_secondaries=1)
        rs.primary["m"].insert_one({})
        HealthMonitor(db).watch_replica_set(rs).gauges()
        text = get_registry().render_text()
        assert "repro_health_gauge" in text
        assert "replication_max_lag" in text

    def test_custom_gauge_and_rule(self, db):
        monitor = HealthMonitor(
            db, rules=[ThresholdRule("queue-depth", gauge="queue_depth",
                                     threshold=10.0)])
        monitor.add_gauge("queue_depth", lambda: 25.0)
        report = monitor.report(now=0.0)
        assert report["status"] == "warn"
        assert report["new_alerts"][0]["rule"] == "queue-depth"


class TestHealthEndpoints:
    def _server(self, db, monitor=None):
        api = MaterialsAPI(QueryEngine(db))
        return MaterialsAPIServer(api, monitor=monitor).start()

    def test_health_green_on_fresh_store(self, db):
        db["materials"].insert_one({"material_id": "mp-1"})
        server = self._server(db)
        try:
            with urllib.request.urlopen(f"{server.base_url}/health") as r:
                assert r.status == 200
                doc = json.load(r)
            assert doc["status"] == "green"
            assert doc["alerts"]["open"] == []
        finally:
            server.stop()

    def test_health_degrades_with_recorded_alert_on_lag(self, db):
        rs = ReplicaSet("rs0", n_secondaries=1)
        monitor = HealthMonitor(db).watch_replica_set(rs)
        server = self._server(db, monitor=monitor)
        try:
            for i in range(200):
                rs.primary["m"].insert_one({"i": i})
            with urllib.request.urlopen(f"{server.base_url}/health") as r:
                assert r.status == 200  # warn still serves 200
                doc = json.load(r)
            assert doc["status"] == "warn"
            assert doc["gauges"]["replication_max_lag"] == 200
            with urllib.request.urlopen(f"{server.base_url}/alerts") as r:
                alerts = json.load(r)
            assert [a["rule"] for a in alerts["open"]] == ["replication-lag"]
            assert {r_["name"] for r_ in alerts["rules"]} >= {
                "replication-lag", "query-latency-burn"}
        finally:
            server.stop()

    def test_critical_alert_returns_503(self, db):
        monitor = HealthMonitor(
            db, rules=[ThresholdRule("doom", gauge="doom", threshold=1.0,
                                     severity="critical")])
        monitor.add_gauge("doom", lambda: 9.0)
        server = self._server(db, monitor=monitor)
        try:
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(f"{server.base_url}/health")
            assert exc.value.code == 503
            doc = json.load(exc.value)
            assert doc["status"] == "critical"
        finally:
            server.stop()


class TestCLISubcommands:
    def test_mongostat_local(self, tmp_path, capsys):
        from repro.cli import main
        data_dir = str(tmp_path / "store")
        DocumentStore(persistence_dir=data_dir)["mp"]["m"].insert_one({})
        assert main(["--data-dir", data_dir, "mongostat",
                     "--n", "2", "--interval", "0"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert "insert" in lines[0] and "command" in lines[0]
        assert len(lines) == 3  # header + 2 sample rows

    def test_mongostat_json(self, tmp_path, capsys):
        from repro.cli import main
        data_dir = str(tmp_path / "store")
        DocumentStore(persistence_dir=data_dir)
        assert main(["--data-dir", data_dir, "mongostat",
                     "--n", "2", "--interval", "0", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            doc = json.loads(line)
            assert "deltas" in doc and "totals" in doc

    def test_mongostat_against_live_server(self, capsys):
        from repro.cli import main
        store = DocumentStore()
        store["mp"]["m"].insert_many([{"i": i} for i in range(3)])
        server = DatastoreServer(store)
        server.start()
        try:
            assert main(["mongostat", "--host", "127.0.0.1",
                         "--port", str(server.port),
                         "--n", "1", "--interval", "0", "--json"]) == 0
            doc = json.loads(capsys.readouterr().out.strip())
            assert doc["totals"]["insert"] == 3
            assert doc["objects"] == 3
        finally:
            server.stop()

    def test_mongostat_host_without_port_errors(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["mongostat", "--host", "127.0.0.1"])

    def test_mongotop_local(self, monkeypatch, capsys):
        # top accounting is runtime state, so point the CLI at a store
        # that has seen traffic in this process
        import repro.cli as cli
        store = DocumentStore()
        store["mp"]["tasks"].insert_one({"x": 1})
        store["mp"]["tasks"].find({"x": 1}).to_list()
        monkeypatch.setattr(cli, "_open_store", lambda args: store)
        assert cli.main(["mongotop", "--n", "1", "--interval", "0",
                         "--json"]) == 0
        doc = json.loads(capsys.readouterr().out.strip())
        assert "mp.tasks" in doc["totals"]
        assert doc["totals"]["mp.tasks"]["read_count"] == 1

    def test_mongotop_table_against_live_server(self, capsys):
        from repro.cli import main
        store = DocumentStore()
        server = DatastoreServer(store)
        server.start()
        try:
            with RemoteClient("127.0.0.1", server.port) as client:
                client["mp"]["tasks"].insert_one({"x": 1})
            assert main(["mongotop", "--host", "127.0.0.1",
                         "--port", str(server.port),
                         "--n", "1", "--interval", "0"]) == 0
            out = capsys.readouterr().out
            assert "mp.tasks" in out
            assert "write" in out.splitlines()[0]
        finally:
            server.stop()

    def test_advise_end_to_end(self, monkeypatch, capsys):
        import repro.cli as cli
        store = DocumentStore()
        db = store["mp"]
        db["materials"].insert_many(
            [{"group": i % 20} for i in range(200)])
        db.set_profiling_level(2)
        for q in range(5):
            db["materials"].find({"group": q}).to_list()
        monkeypatch.setattr(cli, "_open_store", lambda args: store)
        assert cli.main(["advise", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out.strip())
        recs = doc["recommendations"]
        assert len(recs) == 1
        assert recs[0]["field"] == "group"


class TestBenchRegressionGate:
    def _doc(self, p95, calibration):
        return {
            "meta": {"calibration_ms": calibration},
            "benchmarks": {
                "find": {"p50_ms": p95 / 2, "p95_ms": p95,
                         "p99_ms": p95 * 1.2, "mean_ms": p95 / 2},
            },
        }

    def _gate(self):
        import importlib
        import os
        sys.path.insert(0, os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks"))
        try:
            return importlib.import_module("check_bench_regression")
        finally:
            sys.path.pop(0)

    def test_gate_passes_within_tolerance(self, tmp_path):
        gate = self._gate()
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        base.write_text(json.dumps(self._doc(10.0, 100.0)))
        cur.write_text(json.dumps(self._doc(11.5, 100.0)))
        assert gate.main(["--baseline", str(base),
                          "--current", str(cur)]) == 0

    def test_gate_fails_past_tolerance(self, tmp_path):
        gate = self._gate()
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        base.write_text(json.dumps(self._doc(10.0, 100.0)))
        cur.write_text(json.dumps(self._doc(12.5, 100.0)))
        assert gate.main(["--baseline", str(base),
                          "--current", str(cur)]) == 1

    def test_calibration_scales_allowance_for_slow_runner(self, tmp_path):
        gate = self._gate()
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        base.write_text(json.dumps(self._doc(10.0, 100.0)))
        # 2x slower machine: 18ms would fail raw, passes calibrated
        cur.write_text(json.dumps(self._doc(18.0, 200.0)))
        assert gate.main(["--baseline", str(base),
                          "--current", str(cur)]) == 0

    def test_calibration_unmasks_regression_on_fast_runner(self, tmp_path):
        gate = self._gate()
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        base.write_text(json.dumps(self._doc(10.0, 100.0)))
        # 2x faster machine: 9ms looks fine raw but is a 1.8x regression
        cur.write_text(json.dumps(self._doc(9.0, 50.0)))
        assert gate.main(["--baseline", str(base),
                          "--current", str(cur)]) == 1

    def test_missing_benchmark_fails(self, tmp_path):
        gate = self._gate()
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        base.write_text(json.dumps(self._doc(10.0, 100.0)))
        empty = {"meta": {"calibration_ms": 100.0}, "benchmarks": {}}
        cur.write_text(json.dumps(empty))
        assert gate.main(["--baseline", str(base),
                          "--current", str(cur)]) == 1

    def test_committed_baseline_has_required_shape(self):
        import os
        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks", "baseline_obs.json")
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["meta"]["calibration_ms"] > 0
        for name in ("find", "insert", "aggregate"):
            assert doc["benchmarks"][name]["p95_ms"] > 0
