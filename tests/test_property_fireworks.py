"""Property-based tests for the workflow engine's state machine.

Invariants, under randomized DAGs and failure schedules:
* every Firework ends in exactly one terminal state;
* a child never runs before all of its parents completed;
* completed Fireworks have exactly one task document; fizzled ones none;
* Binder dedup: resubmitting any subset of a finished workflow never
  launches anything new;
* the engines collection's state census always sums to the Firework count.
"""


from hypothesis import given, settings, strategies as st

from repro.docstore import DocumentStore
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.matgen import make_prototype

EASY_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500}

_METALS = ["Mg", "Ca", "Sr", "Ba", "Zn", "Cd", "Ni", "Cu", "Mn", "Fe",
           "Co", "Ti", "V", "Cr", "Al", "Ga", "In", "Sn", "Zr", "Nb"]


def _structure(i: int):
    return make_prototype(
        ["rocksalt", "zincblende", "cscl"][i % 3],
        [_METALS[i % len(_METALS)], ["O", "S", "Cl"][i // len(_METALS) % 3]],
    )


@st.composite
def dags(draw):
    """A random DAG: each node's parents come from earlier nodes."""
    n = draw(st.integers(min_value=1, max_value=8))
    edges = []
    for child in range(1, n):
        n_parents = draw(st.integers(min_value=0, max_value=min(2, child)))
        parents = draw(
            st.lists(st.integers(0, child - 1), min_size=n_parents,
                     max_size=n_parents, unique=True)
        )
        edges.append(parents)
    return n, edges


class TestWorkflowStateMachine:
    @given(dag=dags())
    @settings(max_examples=30, deadline=None)
    def test_terminal_states_and_dag_order(self, dag):
        n, edges = dag
        db = DocumentStore()["wf"]
        launchpad = LaunchPad(db)
        fws = [
            vasp_firework(_structure(i), incar=dict(EASY_INCAR),
                          walltime_s=1e9, memory_mb=1e6)
            for i in range(n)
        ]
        for child in range(1, n):
            fws[child].parents = [fws[p] for p in edges[child - 1]]
        wf = Workflow(fws)
        launchpad.add_workflow(wf)

        order = []
        rocket = Rocket(launchpad)
        while True:
            doc = rocket.launch()
            if doc is None:
                break
            order.append(doc["fw_id"])

        # 1. Everything terminal; census sums to n.
        census = launchpad.workflow_states(wf.workflow_id)
        assert sum(census.values()) == n
        assert set(census) <= {"COMPLETED", "FIZZLED", "DEFUSED"}

        # 2. Topological order respected among launched jobs.
        position = {fw_id: i for i, fw_id in enumerate(order)}
        for child in range(1, n):
            for p in edges[child - 1]:
                if fws[child].fw_id in position and fws[p].fw_id in position:
                    assert position[fws[p].fw_id] < position[fws[child].fw_id]

        # 3. Exactly one task per completed Firework (no dupes here since
        #    structures may repeat: count by fw_id).
        for fw in fws:
            state = launchpad.fw_state(fw.fw_id)
            n_tasks = launchpad.tasks.count_documents({"fw_id": fw.fw_id})
            if state == "COMPLETED" and launchpad.engines.find_one(
                {"fw_id": fw.fw_id, "duplicate_of": {"$exists": False}}
            ):
                assert n_tasks == 1
            if state == "FIZZLED":
                assert n_tasks == 0

    @given(subset=st.sets(st.integers(0, 5), min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_resubmission_is_idempotent(self, subset):
        db = DocumentStore()["wf"]
        launchpad = LaunchPad(db)
        structures = [_structure(i) for i in range(6)]
        launchpad.add_workflow(Workflow([
            vasp_firework(s, incar=dict(EASY_INCAR), walltime_s=1e9,
                          memory_mb=1e6)
            for s in structures
        ]))
        Rocket(launchpad).rapidfire()
        tasks_before = launchpad.tasks.count_documents({})

        # Resubmit an arbitrary subset: zero new launches, zero new tasks.
        launchpad.add_workflow(Workflow([
            vasp_firework(structures[i], incar=dict(EASY_INCAR),
                          walltime_s=1e9, memory_mb=1e6)
            for i in sorted(subset)
        ]))
        assert Rocket(launchpad).rapidfire() == 0
        assert launchpad.tasks.count_documents({}) == tasks_before

    @given(walltimes=st.lists(
        st.sampled_from([0.5, 100.0, 1e9]), min_size=2, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_mixed_failure_schedules_still_terminate(self, walltimes):
        """Whatever mix of doomed/slow/fine jobs, rapidfire terminates and
        every job lands in a terminal state."""
        db = DocumentStore()["wf"]
        launchpad = LaunchPad(db, max_launches=4)
        fws = [
            vasp_firework(_structure(i), incar=dict(EASY_INCAR),
                          walltime_s=w, memory_mb=1e6)
            for i, w in enumerate(walltimes)
        ]
        wf = Workflow(fws)
        launchpad.add_workflow(wf)
        Rocket(launchpad).rapidfire(max_launches=100)
        census = launchpad.workflow_states(wf.workflow_id)
        assert sum(census.values()) == len(walltimes)
        assert set(census) <= {"COMPLETED", "FIZZLED", "DEFUSED"}
