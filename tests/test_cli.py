"""Tests for the operator CLI (populate/status/query/vnv round trips)."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def data_dir(tmp_path):
    return str(tmp_path / "store")


class TestCLI:
    def test_populate_then_status(self, data_dir, capsys):
        assert main(["--data-dir", data_dir, "populate", "--n", "5"]) == 0
        out = capsys.readouterr().out
        assert "snapshot written" in out

        assert main(["--data-dir", data_dir, "status"]) == 0
        out = capsys.readouterr().out
        assert "materials" in out
        assert "database: mp" in out

    def test_state_persists_between_invocations(self, data_dir, capsys):
        main(["--data-dir", data_dir, "populate", "--n", "4"])
        capsys.readouterr()
        # A second populate with the same seed dedups everything.
        main(["--data-dir", data_dir, "populate", "--n", "4"])
        out = capsys.readouterr().out
        assert "0 launched" in out

    def test_query_outputs_json_lines(self, data_dir, capsys):
        main(["--data-dir", data_dir, "populate", "--n", "4"])
        capsys.readouterr()
        assert main([
            "--data-dir", data_dir, "query", "--limit", "3",
            "--properties", "reduced_formula,energy_per_atom",
        ]) == 0
        out = capsys.readouterr().out
        lines = [json.loads(ln) for ln in out.strip().splitlines()]
        assert len(lines) == 3
        assert all("reduced_formula" in row for row in lines)

    def test_query_by_formula(self, data_dir, capsys):
        main(["--data-dir", data_dir, "populate", "--n", "4"])
        capsys.readouterr()
        # Discover a formula, then query it.
        main(["--data-dir", data_dir, "query", "--limit", "1",
              "--properties", "reduced_formula"])
        formula = json.loads(capsys.readouterr().out.strip())["reduced_formula"]
        assert main(["--data-dir", data_dir, "query",
                     "--formula", formula]) == 0
        rows = [json.loads(ln)
                for ln in capsys.readouterr().out.strip().splitlines()]
        assert all(r["reduced_formula"] == formula for r in rows)

    def test_query_with_raw_criteria(self, data_dir, capsys):
        main(["--data-dir", data_dir, "populate", "--n", "4"])
        capsys.readouterr()
        criteria = json.dumps({"band_gap": {"$gte": 0.0}})
        assert main(["--data-dir", data_dir, "query",
                     "--criteria", criteria, "--limit", "50"]) == 0

    def test_vnv_clean_exit_zero(self, data_dir, capsys):
        main(["--data-dir", data_dir, "populate", "--n", "4"])
        capsys.readouterr()
        assert main(["--data-dir", data_dir, "vnv"]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_vnv_dirty_exit_one(self, data_dir, capsys):
        main(["--data-dir", data_dir, "populate", "--n", "4"])
        capsys.readouterr()
        # Corrupt the store, then expect a failing sweep.
        from repro.docstore import DocumentStore

        store = DocumentStore(persistence_dir=data_dir)
        store["mp"]["materials"].update_one(
            {}, {"$set": {"band_gap": -5.0}}
        )
        store.snapshot()
        assert main(["--data-dir", data_dir, "vnv"]) == 1
