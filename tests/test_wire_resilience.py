"""Wire-protocol resilience: framing discipline, retry/backoff, deadlines.

The server must never leave a half-written response frame on a connection
it keeps using (the NDJSON protocol would desync: the next reply would be
parsed starting mid-document).  The client must treat a truncated frame as
a connection loss, retry idempotent ops with backoff, refuse to retry
writes by default, and propagate ``$deadline`` so the server aborts work
the caller has already abandoned.
"""

import socket
import threading
import time

import pytest

from repro.docstore import DatastoreServer, DocumentStore, RemoteClient
from repro.docstore.ops import deadline_scope
from repro.errors import ConnectionLost, DeadlineExceeded, DocstoreError


@pytest.fixture
def server():
    srv = DatastoreServer(DocumentStore())
    srv.start()
    yield srv
    srv.stop()


def _one_shot_partial_fault(srv, nbytes=5):
    """Install a fault that truncates exactly one response, then heals."""
    def fault(wfile, encoded):
        srv._response_fault = None
        wfile.write(encoded[:nbytes])
        wfile.flush()
        raise OSError("injected mid-response failure")
    srv._response_fault = fault


class TestFramingDiscipline:
    def test_partial_response_closes_connection(self, server):
        """A mid-response failure must kill the connection — a survivor

        would deliver the *next* response appended to the torn frame."""
        _one_shot_partial_fault(server)
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(b'{"op": "ping"}\n')
            chunks = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks += chunk
        # Partial frame then EOF — never a full line followed by garbage.
        assert not chunks.endswith(b"\n")
        assert len(chunks) == 5

        # The server itself is healthy: a fresh connection works.
        with RemoteClient("127.0.0.1", server.port) as client:
            assert client.ping()

    def test_client_flags_truncated_frame_as_connection_lost(self, server):
        _one_shot_partial_fault(server)
        client = RemoteClient("127.0.0.1", server.port, max_retries=0)
        with pytest.raises(ConnectionLost):
            client.request({"op": "insert_one", "db": "mp", "coll": "t",
                            "document": {"x": 1}})
        client.close()


class TestRetry:
    def test_idempotent_op_retries_through_fault(self, server):
        server.store["mp"]["t"].insert_one({"x": 1})
        _one_shot_partial_fault(server)
        client = RemoteClient("127.0.0.1", server.port,
                              backoff_base_s=0.01)
        docs = client["mp"]["t"].find({"x": 1})
        assert len(docs) == 1
        assert client.pool_stats()["retries"] == 1
        client.close()

    def test_write_is_not_retried_by_default(self, server):
        _one_shot_partial_fault(server)
        client = RemoteClient("127.0.0.1", server.port,
                              backoff_base_s=0.01)
        with pytest.raises(ConnectionLost):
            client["mp"]["t"].insert_one({"x": 2})
        # The write executed server-side before the response frame tore:
        # retrying blindly would have doubled it.
        assert server.store["mp"]["t"].count_documents({"x": 2}) == 1
        client.close()

    def test_opt_in_retry_for_writes(self, server):
        _one_shot_partial_fault(server)
        client = RemoteClient("127.0.0.1", server.port,
                              backoff_base_s=0.01,
                              retry_non_idempotent=True)
        client["mp"]["t"].insert_one({"x": 3})
        assert client.pool_stats()["retries"] == 1
        client.close()

    def test_retry_reconnects_after_server_side_close(self, server):
        client = RemoteClient("127.0.0.1", server.port,
                              backoff_base_s=0.01)
        assert client.ping()
        # Kill the pooled connection out from under the client.
        conn = client._idle[0]
        conn.sock.shutdown(socket.SHUT_RDWR)
        assert client.ping()  # retried on a fresh connection
        assert client.pool_stats()["retries"] >= 1
        client.close()


class TestDeadlines:
    def test_expired_deadline_rejected_before_execution(self, server):
        client = RemoteClient("127.0.0.1", server.port)
        with pytest.raises(DeadlineExceeded):
            client.request({"op": "insert_one", "db": "mp", "coll": "t",
                            "document": {"x": 9},
                            "$deadline": time.time() - 5})
        assert server.store["mp"]["t"].count_documents({"x": 9}) == 0
        client.close()

    def test_bad_deadline_type_is_protocol_error(self, server):
        client = RemoteClient("127.0.0.1", server.port)
        with pytest.raises(DocstoreError, match="WireProtocolError"):
            client.request({"op": "ping", "$deadline": "soon"})
        client.close()

    def test_deadline_scope_aborts_registered_op(self):
        store = DocumentStore()
        store["mp"]["t"].insert_one({"x": 1})
        with deadline_scope(time.time() - 1):
            with pytest.raises(DeadlineExceeded):
                # The cooperative check point fires per candidate document.
                list(store["mp"]["t"].find({"x": 1}))

    def test_kill_expired_sweeps_overdue_ops(self):
        store = DocumentStore()
        registry = store._ops
        with deadline_scope(time.time() - 0.01):
            active = registry.register("find", "mp.t", {"x": 1})
        try:
            assert registry.kill_expired() == 1
            assert active.killed
            with pytest.raises(DeadlineExceeded):
                active.check_killed()
            # Second sweep is a no-op: already flagged.
            assert registry.kill_expired() == 0
        finally:
            registry.finish(active)


class TestConnectionPool:
    def test_pool_caps_connection_count(self, server):
        server.store["mp"]["t"].insert_one({"x": 1})
        client = RemoteClient("127.0.0.1", server.port, pool_size=2)
        barrier = threading.Barrier(8)

        def hit():
            barrier.wait()
            for _ in range(5):
                client["mp"]["t"].find({"x": 1})

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        stats = client.pool_stats()
        assert stats["connections"] <= 2
        assert stats["idle"] <= 2
        client.close()
        assert client.pool_stats()["idle"] == 0
