"""Tests for ObjectId generation, parsing, and ordering."""

import pytest

from repro.docstore import ObjectId


class TestGeneration:
    def test_fresh_ids_are_unique(self):
        ids = {ObjectId() for _ in range(1000)}
        assert len(ids) == 1000

    def test_hex_roundtrip(self):
        oid = ObjectId()
        assert ObjectId(oid.hex()) == oid
        assert ObjectId(str(oid)) == oid

    def test_bytes_roundtrip(self):
        oid = ObjectId()
        assert ObjectId(oid.binary) == oid

    def test_copy_constructor(self):
        oid = ObjectId()
        assert ObjectId(oid) == oid

    def test_generation_time_is_recent(self):
        import time

        oid = ObjectId()
        assert abs(oid.generation_time - time.time()) < 5

    def test_ids_sort_by_creation_order_within_second(self):
        # The 3-byte counter makes ids created back-to-back strictly increasing
        # unless the counter wraps (probability ~1e-4 for 100 draws).
        ids = [ObjectId() for _ in range(100)]
        in_order = sum(a < b for a, b in zip(ids, ids[1:]))
        assert in_order >= 98


class TestValidation:
    def test_rejects_short_hex(self):
        with pytest.raises(ValueError):
            ObjectId("abcd")

    def test_rejects_non_hex(self):
        with pytest.raises(ValueError):
            ObjectId("z" * 24)

    def test_rejects_wrong_byte_length(self):
        with pytest.raises(ValueError):
            ObjectId(b"short")

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            ObjectId(12345)

    def test_is_valid(self):
        assert ObjectId.is_valid(ObjectId().hex())
        assert not ObjectId.is_valid("nope")
        assert not ObjectId.is_valid(3.14)


class TestOrderingAndHashing:
    def test_from_timestamp_orders_against_fresh(self):
        old = ObjectId.from_timestamp(1_000_000)
        assert old < ObjectId()

    def test_total_order(self):
        a, b = sorted([ObjectId(), ObjectId()])
        assert a <= b and b >= a
        assert a != b

    def test_usable_as_dict_key(self):
        oid = ObjectId()
        d = {oid: "x"}
        assert d[ObjectId(oid.hex())] == "x"

    def test_repr_roundtrips_through_eval_shape(self):
        oid = ObjectId()
        assert repr(oid) == f"ObjectId('{oid.hex()}')"

    def test_comparison_with_non_objectid_raises_typeerror(self):
        with pytest.raises(TypeError):
            _ = ObjectId() < "string"
