"""Tests for the MongoDB query language implementation."""

import re

import pytest

from repro.docstore import compile_query
from repro.errors import QuerySyntaxError


def matches(query, doc):
    return compile_query(query).matches(doc)


class TestBareEquality:
    def test_scalar(self):
        assert matches({"a": 1}, {"a": 1})
        assert not matches({"a": 1}, {"a": 2})

    def test_missing_field(self):
        assert not matches({"a": 1}, {"b": 1})

    def test_nested_path(self):
        assert matches({"spec.incar.ENCUT": 520, "state": "done"},
                       {"spec": {"incar": {"ENCUT": 520}}, "state": "done"})

    def test_array_contains_scalar(self):
        # The paper's canonical query shape: elements list membership.
        assert matches({"elements": "Li"}, {"elements": ["Li", "Fe", "O"]})
        assert not matches({"elements": "Na"}, {"elements": ["Li", "Fe", "O"]})

    def test_whole_array_equality(self):
        assert matches({"kpts": [4, 4, 4]}, {"kpts": [4, 4, 4]})
        assert not matches({"kpts": [4, 4]}, {"kpts": [4, 4, 4]})

    def test_subdocument_equality_is_exact(self):
        assert matches({"s": {"a": 1}}, {"s": {"a": 1}})
        assert not matches({"s": {"a": 1}}, {"s": {"a": 1, "b": 2}})

    def test_null_matches_missing_and_null(self):
        assert matches({"a": None}, {"a": None})
        assert matches({"a": None}, {})
        assert not matches({"a": None}, {"a": 1})

    def test_bool_does_not_equal_int(self):
        assert not matches({"a": True}, {"a": 1})
        assert not matches({"a": 1}, {"a": True})

    def test_int_equals_float(self):
        assert matches({"a": 1}, {"a": 1.0})

    def test_regex_as_bare_value(self):
        assert matches({"formula": re.compile(r"^Li")}, {"formula": "LiFePO4"})
        assert not matches({"formula": re.compile(r"^Na")}, {"formula": "LiFePO4"})


class TestComparisons:
    def test_paper_query(self):
        """The exact query from §III-B2 of the paper."""
        query = {"elements": {"$all": ["Li", "O"]}, "nelectrons": {"$lte": 200}}
        assert matches(query, {"elements": ["Li", "Mn", "O"], "nelectrons": 120})
        assert not matches(query, {"elements": ["Li", "Mn", "O"], "nelectrons": 250})
        assert not matches(query, {"elements": ["Na", "O"], "nelectrons": 120})

    def test_gt_lt_range(self):
        q = {"energy": {"$gt": -10, "$lt": 0}}
        assert matches(q, {"energy": -5})
        assert not matches(q, {"energy": -10})
        assert not matches(q, {"energy": 0})

    def test_gte_lte_inclusive(self):
        q = {"n": {"$gte": 3, "$lte": 3}}
        assert matches(q, {"n": 3})
        assert not matches(q, {"n": 2})

    def test_type_bracketing_numbers_vs_strings(self):
        assert not matches({"a": {"$gt": 5}}, {"a": "zebra"})
        assert not matches({"a": {"$lt": "m"}}, {"a": 3})

    def test_range_on_array_fans_out(self):
        assert matches({"scores": {"$gt": 90}}, {"scores": [50, 95]})
        assert not matches({"scores": {"$gt": 90}}, {"scores": [50, 60]})

    def test_missing_field_never_in_range(self):
        assert not matches({"a": {"$gt": 0}}, {})
        assert not matches({"a": {"$lt": 0}}, {})

    def test_eq_operator(self):
        assert matches({"a": {"$eq": 5}}, {"a": 5})

    def test_string_comparison(self):
        assert matches({"name": {"$gte": "b"}}, {"name": "carbon"})


class TestNeNinExists:
    def test_ne_matches_missing(self):
        assert matches({"state": {"$ne": "error"}}, {})
        assert matches({"state": {"$ne": "error"}}, {"state": "done"})
        assert not matches({"state": {"$ne": "error"}}, {"state": "error"})

    def test_ne_null_excludes_missing(self):
        """Mongo semantics: missing fields are null, so {$ne: null} must
        not match documents lacking the field."""
        assert not matches({"mps_id": {"$ne": None}}, {})
        assert not matches({"mps_id": {"$ne": None}}, {"mps_id": None})
        assert matches({"mps_id": {"$ne": None}}, {"mps_id": "mps-1"})

    def test_nin_with_null_excludes_missing(self):
        assert not matches({"a": {"$nin": [None, 3]}}, {})
        assert matches({"a": {"$nin": [None, 3]}}, {"a": 1})
        assert not matches({"a": {"$nin": [None, 3]}}, {"a": 3})

    def test_ne_on_array_requires_no_element_match(self):
        assert not matches({"tags": {"$ne": "x"}}, {"tags": ["x", "y"]})
        assert matches({"tags": {"$ne": "z"}}, {"tags": ["x", "y"]})

    def test_in(self):
        q = {"state": {"$in": ["WAITING", "READY"]}}
        assert matches(q, {"state": "READY"})
        assert not matches(q, {"state": "RUNNING"})
        assert not matches(q, {})

    def test_in_against_array_field(self):
        assert matches({"elements": {"$in": ["Na", "Li"]}}, {"elements": ["Li", "O"]})

    def test_nin(self):
        q = {"state": {"$nin": ["ERROR", "KILLED"]}}
        assert matches(q, {"state": "DONE"})
        assert matches(q, {})
        assert not matches(q, {"state": "ERROR"})

    def test_exists(self):
        assert matches({"bandgap": {"$exists": True}}, {"bandgap": 0.0})
        assert not matches({"bandgap": {"$exists": True}}, {})
        assert matches({"bandgap": {"$exists": False}}, {})
        assert not matches({"bandgap": {"$exists": False}}, {"bandgap": None})

    def test_in_requires_array(self):
        with pytest.raises(QuerySyntaxError):
            compile_query({"a": {"$in": 5}})


class TestLogical:
    def test_and(self):
        q = {"$and": [{"a": {"$gt": 1}}, {"a": {"$lt": 10}}]}
        assert matches(q, {"a": 5})
        assert not matches(q, {"a": 0})

    def test_or(self):
        q = {"$or": [{"state": "READY"}, {"priority": {"$gte": 9}}]}
        assert matches(q, {"state": "READY", "priority": 1})
        assert matches(q, {"state": "WAITING", "priority": 9})
        assert not matches(q, {"state": "WAITING", "priority": 1})

    def test_nor(self):
        q = {"$nor": [{"a": 1}, {"b": 2}]}
        assert matches(q, {"a": 2, "b": 3})
        assert not matches(q, {"a": 1})

    def test_not(self):
        q = {"n": {"$not": {"$gt": 10}}}
        assert matches(q, {"n": 5})
        assert matches(q, {})  # $not matches missing
        assert not matches(q, {"n": 11})

    def test_implicit_and_of_fields(self):
        q = {"a": 1, "b": 2}
        assert matches(q, {"a": 1, "b": 2})
        assert not matches(q, {"a": 1, "b": 3})

    def test_empty_query_matches_all(self):
        assert matches({}, {"anything": 1})
        assert matches({}, {})

    def test_logical_requires_nonempty_list(self):
        with pytest.raises(QuerySyntaxError):
            compile_query({"$and": []})
        with pytest.raises(QuerySyntaxError):
            compile_query({"$or": "nope"})

    def test_nested_logic(self):
        q = {"$or": [
            {"$and": [{"a": 1}, {"b": 1}]},
            {"$and": [{"a": 2}, {"b": 2}]},
        ]}
        assert matches(q, {"a": 1, "b": 1})
        assert matches(q, {"a": 2, "b": 2})
        assert not matches(q, {"a": 1, "b": 2})


class TestArrayOperators:
    def test_all(self):
        q = {"elements": {"$all": ["Li", "O"]}}
        assert matches(q, {"elements": ["Li", "Fe", "O"]})
        assert not matches(q, {"elements": ["Li", "Fe"]})

    def test_all_on_scalar_single_member(self):
        assert matches({"a": {"$all": [5]}}, {"a": 5})

    def test_size(self):
        assert matches({"elements": {"$size": 2}}, {"elements": ["Fe", "O"]})
        assert not matches({"elements": {"$size": 3}}, {"elements": ["Fe", "O"]})
        assert not matches({"elements": {"$size": 2}}, {"elements": "FeO"})

    def test_elem_match_document(self):
        q = {"runs": {"$elemMatch": {"converged": True, "walltime": {"$lt": 5000}}}}
        assert matches(q, {"runs": [{"converged": True, "walltime": 3600}]})
        # Both conditions must hit the SAME element.
        assert not matches(
            q,
            {"runs": [{"converged": True, "walltime": 9000},
                      {"converged": False, "walltime": 100}]},
        )

    def test_elem_match_operators(self):
        q = {"scores": {"$elemMatch": {"$gte": 80, "$lt": 90}}}
        assert matches(q, {"scores": [75, 85]})
        assert not matches(q, {"scores": [75, 95]})

    def test_all_with_elem_match(self):
        q = {"runs": {"$all": [
            {"$elemMatch": {"code": "vasp"}},
            {"$elemMatch": {"code": "aflow"}},
        ]}}
        assert matches(q, {"runs": [{"code": "vasp"}, {"code": "aflow"}]})
        assert not matches(q, {"runs": [{"code": "vasp"}]})


class TestEvaluation:
    def test_mod(self):
        assert matches({"n": {"$mod": [4, 0]}}, {"n": 8})
        assert not matches({"n": {"$mod": [4, 0]}}, {"n": 9})

    def test_mod_validation(self):
        with pytest.raises(QuerySyntaxError):
            compile_query({"n": {"$mod": [0, 0]}})
        with pytest.raises(QuerySyntaxError):
            compile_query({"n": {"$mod": [4]}})

    def test_regex_operator(self):
        q = {"formula": {"$regex": "^Li.*O4$"}}
        assert matches(q, {"formula": "LiFePO4"})
        assert not matches(q, {"formula": "NaFePO4"})

    def test_regex_options(self):
        q = {"formula": {"$regex": "^li", "$options": "i"}}
        assert matches(q, {"formula": "LiFePO4"})

    def test_options_without_regex_rejected(self):
        with pytest.raises(QuerySyntaxError):
            compile_query({"a": {"$options": "i"}})

    def test_where_callable(self):
        q = {"$where": lambda d: d.get("a", 0) + d.get("b", 0) > 10}
        assert matches(q, {"a": 6, "b": 6})
        assert not matches(q, {"a": 1, "b": 1})

    def test_type(self):
        assert matches({"a": {"$type": "string"}}, {"a": "x"})
        assert matches({"a": {"$type": "number"}}, {"a": 1.5})
        assert matches({"a": {"$type": "array"}}, {"a": []})
        assert not matches({"a": {"$type": "bool"}}, {"a": 1})
        with pytest.raises(QuerySyntaxError):
            compile_query({"a": {"$type": "flurble"}})


class TestSyntaxErrors:
    def test_unknown_operator(self):
        with pytest.raises(QuerySyntaxError):
            compile_query({"a": {"$frobnicate": 1}})

    def test_unknown_top_level_operator(self):
        with pytest.raises(QuerySyntaxError):
            compile_query({"$xyzzy": []})

    def test_top_level_not_rejected(self):
        with pytest.raises(QuerySyntaxError):
            compile_query({"$not": {"a": 1}})

    def test_non_mapping_query(self):
        with pytest.raises(QuerySyntaxError):
            compile_query([1, 2, 3])
