"""Tests for snapshot + journal durability and crash recovery."""

import json
import logging
import os
import threading

import pytest

from repro.docstore import DocumentStore


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "datastore")


@pytest.fixture
def repro_log():
    """Captured records from the ``repro`` logger tree.

    The package logger sets ``propagate = False``, so pytest's ``caplog``
    (which listens on the root logger) never sees these records — attach a
    handler directly instead.
    """
    records = []

    class _Capture(logging.Handler):
        def emit(self, record):
            records.append(record)

    handler = _Capture(level=logging.DEBUG)
    root = logging.getLogger("repro")
    root.addHandler(handler)
    yield records
    root.removeHandler(handler)


class TestSnapshot:
    def test_snapshot_and_reload(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["materials"].insert_many(
            [{"formula": "Fe2O3", "energy": -7.1}, {"formula": "NaCl", "energy": -3.2}]
        )
        store.snapshot()
        store.close()

        reloaded = DocumentStore(persistence_dir=store_dir)
        docs = reloaded["mp"]["materials"].find().to_list()
        assert {d["formula"] for d in docs} == {"Fe2O3", "NaCl"}

    def test_snapshot_preserves_indexes(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        coll = store["mp"]["tasks"]
        coll.insert_one({"task_id": "t1"})
        coll.create_index("task_id", unique=True)
        store.snapshot()
        store.close()

        reloaded = DocumentStore(persistence_dir=store_dir)
        info = reloaded["mp"]["tasks"].index_information()
        assert info["task_id_1"]["unique"] is True

    def test_snapshot_truncates_journal(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["c"].insert_one({"x": 1})
        journal = os.path.join(store_dir, "journal.jsonl")
        assert os.path.getsize(journal) > 0
        store.snapshot()
        assert os.path.getsize(journal) == 0
        store.close()


class TestJournalRecovery:
    def test_writes_after_snapshot_survive_crash(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["m"].insert_one({"formula": "A"})
        store.snapshot()
        store["mp"]["m"].insert_one({"formula": "B"})
        store["mp"]["m"].update_one({"formula": "A"}, {"$set": {"energy": -1.0}})
        # Simulate crash: no snapshot, no clean close.
        del store

        recovered = DocumentStore(persistence_dir=store_dir)
        docs = {d["formula"]: d for d in recovered["mp"]["m"].find()}
        assert set(docs) == {"A", "B"}
        assert docs["A"]["energy"] == -1.0

    def test_deletes_are_replayed(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        coll = store["mp"]["m"]
        coll.insert_many([{"k": 1}, {"k": 2}])
        store.snapshot()
        coll.delete_one({"k": 1})
        del store

        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == 1

    def test_journal_only_no_snapshot(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["m"].insert_one({"x": 1})
        del store

        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == 1

    def test_torn_journal_tail_is_tolerated(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["m"].insert_many([{"k": 1}, {"k": 2}])
        del store
        journal = os.path.join(store_dir, "journal.jsonl")
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"db": "mp", "op": "insert", "payload": {"ns": "m", "doc"')

        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == 2

    def test_recovery_is_idempotent(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["m"].insert_one({"_id": "fixed", "x": 1})
        del store
        # Two recoveries in a row must not duplicate documents.
        DocumentStore(persistence_dir=store_dir).close()
        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == 1

    def test_in_memory_store_rejects_snapshot(self):
        from repro.errors import DocstoreError

        with pytest.raises(DocstoreError):
            DocumentStore().snapshot()


class TestTornTail:
    """Recovery must replay the valid prefix, warn, and truncate the rest."""

    def _seed(self, store_dir, n=3):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["m"].insert_many([{"k": i} for i in range(n)])
        store.close()
        return os.path.join(store_dir, "journal.jsonl")

    def _recover_and_check(self, store_dir, repro_log, expected_count):
        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == expected_count
        info = recovered._persistence.last_recovery
        assert info["replayed"] == expected_count
        assert info["truncated_at"] is not None
        warnings = [r for r in repro_log
                    if r.levelno == logging.WARNING and "torn tail" in r.getMessage()]
        assert len(warnings) == 1
        return recovered, info

    def test_truncated_json_line(self, store_dir, repro_log):
        journal = self._seed(store_dir)
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"db": "mp", "op": "insert", "payload": {"ns": "m", "doc"')
        self._recover_and_check(store_dir, repro_log, 3)
        # The corrupt suffix is gone from disk: the next recovery is clean.
        with open(journal, "rb") as fh:
            for line in fh:
                json.loads(line)

    def test_garbage_bytes(self, store_dir, repro_log):
        journal = self._seed(store_dir)
        with open(journal, "ab") as fh:
            fh.write(b"\x00\xff\xfe garbage not json\n")
            fh.write(b'{"db": "mp", "op": "insert", '
                     b'"payload": {"ns": "m", "doc": {"_id": "lost", "k": 99}}}\n')
        recovered, info = self._recover_and_check(store_dir, repro_log, 3)
        # Records *after* the corruption are unreachable by design (we
        # cannot trust framing past a torn write) and must not resurface.
        assert recovered["mp"]["m"].find_one({"_id": "lost"}) is None
        reopened = DocumentStore(persistence_dir=store_dir)
        assert reopened["mp"]["m"].count_documents() == 3

    def test_malformed_record_missing_fields(self, store_dir, repro_log):
        journal = self._seed(store_dir)
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"not": "a journal record"}\n')
        _, info = self._recover_and_check(store_dir, repro_log, 3)
        assert "malformed" in info["reason"]

    def test_empty_trailing_line_is_not_corruption(self, store_dir, repro_log):
        journal = self._seed(store_dir)
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write("\n\n")
        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == 3
        info = recovered._persistence.last_recovery
        assert info["truncated_at"] is None
        assert not [r for r in repro_log if r.levelno >= logging.WARNING]


class TestGroupCommit:
    def test_fsync_policy_surfaces_in_journal_stats(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir, fsync="always")
        store["mp"]["m"].insert_one({"k": 1})
        stats = store.server_status()["journal"]
        assert stats["policy"] == "always"
        assert stats["records"] == 1
        assert stats["fsyncs"] >= 1
        assert stats["durable_seq"] == stats["last_seq"]
        store.close()

    def test_invalid_fsync_policy_rejected(self, store_dir):
        from repro.errors import DocstoreError

        with pytest.raises(DocstoreError, match="fsync policy"):
            DocumentStore(persistence_dir=store_dir, fsync="sometimes")

    @pytest.mark.parametrize("policy", ["always", "interval", "never"])
    def test_concurrent_writers_group_commit(self, store_dir, policy):
        store = DocumentStore(persistence_dir=store_dir, fsync=policy)
        coll = store["mp"]["m"]
        n_threads, per_thread = 6, 25

        def write(t):
            for i in range(per_thread):
                coll.insert_one({"_id": f"{t}-{i}", "t": t})

        threads = [threading.Thread(target=write, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = store.server_status()["journal"]
        assert stats["records"] == n_threads * per_thread
        assert stats["batches"] >= 1
        store.close()

        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == n_threads * per_thread
        recovered.close()

    def test_sequence_numbers_are_contiguous_on_disk(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        for i in range(10):
            store["mp"]["m"].insert_one({"k": i})
        store.close()
        with open(os.path.join(store_dir, "journal.jsonl"), encoding="utf-8") as fh:
            seqs = [json.loads(line)["seq"] for line in fh if line.strip()]
        assert seqs == list(range(1, 11))


class TestSnapshotSequenceGuard:
    def test_manifest_last_seq_prevents_double_apply(self, store_dir):
        """A journal record the snapshot already captured must be skipped.

        Simulates a crash after the manifest was written but before
        compaction removed the captured prefix: the stale record's ``seq``
        is at or below the manifest's ``last_seq``.
        """
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["m"].insert_one({"_id": "a", "n": 1})
        store.snapshot()
        last_seq = store.server_status()["journal"]["last_seq"]
        store.close()

        journal = os.path.join(store_dir, "journal.jsonl")
        with open(journal, "a", encoding="utf-8") as fh:
            # Stale: already inside the snapshot (seq <= last_seq); if
            # replayed it would clobber nothing here, but `skipped` proves
            # the guard fired rather than the idempotency fallback.
            fh.write(json.dumps({
                "seq": last_seq, "db": "mp", "op": "update",
                "payload": {"ns": "m", "_id": "a",
                            "doc": {"_id": "a", "n": 999}},
            }) + "\n")
            fh.write(json.dumps({
                "seq": last_seq + 1, "db": "mp", "op": "insert",
                "payload": {"ns": "m", "doc": {"_id": "b", "n": 2}},
            }) + "\n")

        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].find_one({"_id": "a"})["n"] == 1
        assert recovered["mp"]["m"].find_one({"_id": "b"})["n"] == 2
        info = recovered._persistence.last_recovery
        assert info["skipped"] == 1
        assert info["replayed"] == 1

    def test_writes_during_snapshot_survive_compaction(self, store_dir):
        """Compaction keeps journal records sequenced after the cut."""
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["m"].insert_one({"_id": "pre"})
        store.snapshot()
        store["mp"]["m"].insert_one({"_id": "post"})
        # Crash without a further snapshot: "post" lives only in the journal.
        del store

        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == 2
