"""Tests for snapshot + journal durability and crash recovery."""

import os

import pytest

from repro.docstore import DocumentStore


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "datastore")


class TestSnapshot:
    def test_snapshot_and_reload(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["materials"].insert_many(
            [{"formula": "Fe2O3", "energy": -7.1}, {"formula": "NaCl", "energy": -3.2}]
        )
        store.snapshot()
        store.close()

        reloaded = DocumentStore(persistence_dir=store_dir)
        docs = reloaded["mp"]["materials"].find().to_list()
        assert {d["formula"] for d in docs} == {"Fe2O3", "NaCl"}

    def test_snapshot_preserves_indexes(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        coll = store["mp"]["tasks"]
        coll.insert_one({"task_id": "t1"})
        coll.create_index("task_id", unique=True)
        store.snapshot()
        store.close()

        reloaded = DocumentStore(persistence_dir=store_dir)
        info = reloaded["mp"]["tasks"].index_information()
        assert info["task_id_1"]["unique"] is True

    def test_snapshot_truncates_journal(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["c"].insert_one({"x": 1})
        journal = os.path.join(store_dir, "journal.jsonl")
        assert os.path.getsize(journal) > 0
        store.snapshot()
        assert os.path.getsize(journal) == 0
        store.close()


class TestJournalRecovery:
    def test_writes_after_snapshot_survive_crash(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["m"].insert_one({"formula": "A"})
        store.snapshot()
        store["mp"]["m"].insert_one({"formula": "B"})
        store["mp"]["m"].update_one({"formula": "A"}, {"$set": {"energy": -1.0}})
        # Simulate crash: no snapshot, no clean close.
        del store

        recovered = DocumentStore(persistence_dir=store_dir)
        docs = {d["formula"]: d for d in recovered["mp"]["m"].find()}
        assert set(docs) == {"A", "B"}
        assert docs["A"]["energy"] == -1.0

    def test_deletes_are_replayed(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        coll = store["mp"]["m"]
        coll.insert_many([{"k": 1}, {"k": 2}])
        store.snapshot()
        coll.delete_one({"k": 1})
        del store

        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == 1

    def test_journal_only_no_snapshot(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["m"].insert_one({"x": 1})
        del store

        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == 1

    def test_torn_journal_tail_is_tolerated(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["m"].insert_many([{"k": 1}, {"k": 2}])
        del store
        journal = os.path.join(store_dir, "journal.jsonl")
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"db": "mp", "op": "insert", "payload": {"ns": "m", "doc"')

        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == 2

    def test_recovery_is_idempotent(self, store_dir):
        store = DocumentStore(persistence_dir=store_dir)
        store["mp"]["m"].insert_one({"_id": "fixed", "x": 1})
        del store
        # Two recoveries in a row must not duplicate documents.
        DocumentStore(persistence_dir=store_dir).close()
        recovered = DocumentStore(persistence_dir=store_dir)
        assert recovered["mp"]["m"].count_documents() == 1

    def test_in_memory_store_rejects_snapshot(self):
        from repro.errors import DocstoreError

        with pytest.raises(DocstoreError):
            DocumentStore().snapshot()
