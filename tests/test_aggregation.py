"""Tests for the aggregation pipeline (the builder's selection/grouping/projection)."""

import pytest

from repro.docstore import Collection, DocumentStore, run_pipeline
from repro.errors import QuerySyntaxError


@pytest.fixture
def tasks():
    c = Collection("tasks")
    c.insert_many(
        [
            {"mps_id": "mps-1", "energy": -5.0, "converged": True, "code": "vasp",
             "elements": ["Li", "O"]},
            {"mps_id": "mps-1", "energy": -5.2, "converged": True, "code": "vasp",
             "elements": ["Li", "O"]},
            {"mps_id": "mps-2", "energy": -3.1, "converged": False, "code": "vasp",
             "elements": ["Na", "Cl"]},
            {"mps_id": "mps-2", "energy": -3.3, "converged": True, "code": "aflow",
             "elements": ["Na", "Cl"]},
            {"mps_id": "mps-3", "energy": -7.7, "converged": True, "code": "vasp",
             "elements": ["Fe", "O"]},
        ]
    )
    return c


class TestMatchGroup:
    def test_group_best_energy_per_mps(self, tasks):
        """The materials-builder shape: group tasks by MPS id, pick best."""
        rows = tasks.aggregate(
            [
                {"$match": {"converged": True}},
                {"$group": {"_id": "$mps_id", "best": {"$min": "$energy"},
                            "n_tasks": {"$sum": 1}}},
                {"$sort": {"_id": 1}},
            ]
        )
        assert rows == [
            {"_id": "mps-1", "best": -5.2, "n_tasks": 2},
            {"_id": "mps-2", "best": -3.3, "n_tasks": 1},
            {"_id": "mps-3", "best": -7.7, "n_tasks": 1},
        ]

    def test_group_avg(self, tasks):
        rows = tasks.aggregate(
            [{"$group": {"_id": None, "avg": {"$avg": "$energy"}}}]
        )
        assert rows[0]["avg"] == pytest.approx(-4.86)

    def test_group_push_and_add_to_set(self, tasks):
        rows = tasks.aggregate(
            [
                {"$group": {"_id": "$mps_id", "codes": {"$addToSet": "$code"},
                            "energies": {"$push": "$energy"}}},
                {"$sort": {"_id": 1}},
            ]
        )
        assert sorted(rows[1]["codes"]) == ["aflow", "vasp"]
        assert rows[0]["energies"] == [-5.0, -5.2]

    def test_group_first_last(self, tasks):
        rows = tasks.aggregate(
            [
                {"$sort": {"energy": 1}},
                {"$group": {"_id": None, "lowest": {"$first": "$energy"},
                            "highest": {"$last": "$energy"}}},
            ]
        )
        assert rows[0] == {"_id": None, "lowest": -7.7, "highest": -3.1}

    def test_group_requires_id(self, tasks):
        with pytest.raises(QuerySyntaxError):
            tasks.aggregate([{"$group": {"n": {"$sum": 1}}}])


class TestProjectUnwind:
    def test_project_computed(self, tasks):
        rows = tasks.aggregate(
            [
                {"$match": {"mps_id": "mps-1"}},
                {"$project": {"_id": 0, "e_mev": {"$multiply": ["$energy", 1000]}}},
            ]
        )
        assert rows[0]["e_mev"] == -5000.0

    def test_project_include(self, tasks):
        rows = tasks.aggregate([{"$project": {"mps_id": 1, "_id": 0}}])
        assert all(set(r) == {"mps_id"} for r in rows)

    def test_unwind(self, tasks):
        rows = tasks.aggregate(
            [
                {"$unwind": "$elements"},
                {"$group": {"_id": "$elements", "n": {"$sum": 1}}},
                {"$sort": {"n": -1, "_id": 1}},
            ]
        )
        assert rows[0] == {"_id": "O", "n": 3}

    def test_unwind_preserve_empty(self):
        docs = [{"a": []}, {"a": [1]}]
        out = run_pipeline(docs, [{"$unwind": {"path": "$a", "preserveNullAndEmptyArrays": True}}])
        assert len(out) == 2

    def test_add_fields(self, tasks):
        rows = tasks.aggregate(
            [{"$addFields": {"abs_e": {"$abs": "$energy"}}},
             {"$match": {"mps_id": "mps-3"}}]
        )
        assert rows[0]["abs_e"] == 7.7
        assert rows[0]["energy"] == -7.7  # original retained

    def test_cond_and_ifnull(self):
        docs = [{"gap": 0.0}, {"gap": 2.1}, {}]
        out = run_pipeline(
            docs,
            [{"$project": {
                "kind": {"$cond": {"if": {"$gt": [{"$ifNull": ["$gap", 0]}, 0.5]},
                                    "then": "insulator", "else": "metal"}}}}],
        )
        assert [r["kind"] for r in out] == ["metal", "insulator", "metal"]


class TestPipelineShape:
    def test_sort_skip_limit_count(self, tasks):
        rows = tasks.aggregate(
            [{"$sort": {"energy": 1}}, {"$skip": 1}, {"$limit": 2}, {"$count": "n"}]
        )
        assert rows == [{"n": 2}]

    def test_lookup(self):
        store = DocumentStore()
        db = store["mp"]
        db.mps.insert_many([{"mps_id": "m1", "formula": "LiFePO4"}])
        db.tasks.insert_many([{"mps_id": "m1", "energy": -5.0}])
        rows = db.tasks.aggregate(
            [{"$lookup": {"from": "mps", "localField": "mps_id",
                          "foreignField": "mps_id", "as": "source"}}]
        )
        assert rows[0]["source"][0]["formula"] == "LiFePO4"

    def test_sample(self, tasks):
        rows = tasks.aggregate([{"$sample": {"size": 2, "seed": 42}}])
        assert len(rows) == 2

    def test_unknown_stage(self, tasks):
        with pytest.raises(QuerySyntaxError):
            tasks.aggregate([{"$explode": {}}])

    def test_stage_must_be_single_key(self, tasks):
        with pytest.raises(QuerySyntaxError):
            tasks.aggregate([{"$match": {}, "$sort": {}}])

    def test_concat_tolower(self):
        docs = [{"a": "Fe", "b": "O"}]
        out = run_pipeline(
            docs,
            [{"$project": {"s": {"$toLower": {"$concat": ["$a", "-", "$b"]}}}}],
        )
        assert out[0]["s"] == "fe-o"

    def test_divide_by_zero_raises(self):
        with pytest.raises(QuerySyntaxError):
            run_pipeline([{"a": 1}], [{"$project": {"x": {"$divide": ["$a", 0]}}}])


class TestAggregationProperties:
    """$group must agree with a plain-Python groupby reference."""

    def test_group_sum_matches_reference(self):
        import itertools
        import random

        rng = random.Random(7)
        docs = [
            {"g": rng.choice("abcd"), "v": rng.randint(-10, 10)}
            for _ in range(200)
        ]
        rows = run_pipeline(
            docs,
            [{"$group": {"_id": "$g", "total": {"$sum": "$v"},
                         "n": {"$sum": 1}}}],
        )
        got = {r["_id"]: (r["total"], r["n"]) for r in rows}
        want = {}
        for key, group in itertools.groupby(
            sorted(docs, key=lambda d: d["g"]), key=lambda d: d["g"]
        ):
            values = [d["v"] for d in group]
            want[key] = (sum(values), len(values))
        assert got == want

    def test_match_then_group_equals_filter_then_group(self):
        docs = [{"g": i % 3, "v": i} for i in range(60)]
        via_pipeline = run_pipeline(
            docs,
            [{"$match": {"v": {"$gte": 30}}},
             {"$group": {"_id": "$g", "n": {"$sum": 1}}},
             {"$sort": {"_id": 1}}],
        )
        manual = run_pipeline(
            [d for d in docs if d["v"] >= 30],
            [{"$group": {"_id": "$g", "n": {"$sum": 1}}},
             {"$sort": {"_id": 1}}],
        )
        assert via_pipeline == manual

    def test_unwind_group_roundtrip_counts(self):
        docs = [{"tags": ["a", "b"]}, {"tags": ["a"]}, {"tags": []}]
        rows = run_pipeline(
            docs,
            [{"$unwind": "$tags"},
             {"$group": {"_id": "$tags", "n": {"$sum": 1}}},
             {"$sort": {"_id": 1}}],
        )
        assert rows == [{"_id": "a", "n": 2}, {"_id": "b", "n": 1}]
