"""Tests for the symmetry analyzer — asserted against textbook crystallography."""

import numpy as np
import pytest

from repro.matgen import (
    Lattice,
    Structure,
    SymmetryFinder,
    lattice_system,
    make_prototype,
)


class TestLatticeSystem:
    @pytest.mark.parametrize("lattice,expected", [
        (Lattice.cubic(4.0), "cubic"),
        (Lattice.tetragonal(4.0, 6.0), "tetragonal"),
        (Lattice.orthorhombic(4.0, 5.0, 6.0), "orthorhombic"),
        (Lattice.hexagonal(3.0, 5.0), "hexagonal"),
        (Lattice.rhombohedral(4.0, 70.0), "rhombohedral"),
        (Lattice.from_parameters(4, 5, 6, 90, 105, 90), "monoclinic"),
        (Lattice.from_parameters(4, 5, 6, 80, 95, 105), "triclinic"),
    ])
    def test_classification(self, lattice, expected):
        assert lattice_system(lattice) == expected

    def test_tolerance(self):
        nearly_cubic = Lattice.from_parameters(
            4.0, 4.0000001, 4.0, 90.00001, 90.0, 89.99999
        )
        assert lattice_system(nearly_cubic) == "cubic"


class TestSymmetryFinder:
    """Operation counts are real space-group orders of these cells."""

    def test_rocksalt_fm3m(self):
        """Conventional NaCl cell: Fm-3m has 192 operations (48 x F-centering)."""
        f = SymmetryFinder(make_prototype("rocksalt", ["Na", "Cl"]))
        assert f.order == 192
        assert f.point_group_order == 48
        assert f.n_centering_translations == 4
        assert f.is_centrosymmetric

    def test_cscl_pm3m(self):
        f = SymmetryFinder(make_prototype("cscl", ["Cs", "Cl"]))
        assert f.order == 48
        assert f.n_centering_translations == 1
        assert f.is_centrosymmetric

    def test_zincblende_f43m_noncentrosymmetric(self):
        """Zincblende F-43m: 96 ops, 24 point ops, NO inversion center."""
        f = SymmetryFinder(make_prototype("zincblende", ["Zn", "S"]))
        assert f.order == 96
        assert f.point_group_order == 24
        assert not f.is_centrosymmetric

    def test_perovskite_pm3m(self):
        f = SymmetryFinder(make_prototype("perovskite", ["Ca", "Ti"]))
        assert f.order == 48

    def test_bcc_im3m(self):
        f = SymmetryFinder(make_prototype("bcc", ["Fe"]))
        assert f.order == 96
        assert f.n_centering_translations == 2  # I-centering

    def test_symmetry_ordering_across_prototypes(self):
        """High-symmetry cubic cells dominate the low-symmetry olivine."""
        nacl = SymmetryFinder(make_prototype("rocksalt", ["Na", "Cl"])).order
        olivine = SymmetryFinder(make_prototype("olivine", ["Li", "Fe"])).order
        assert nacl > 20 * olivine

    def test_operations_close_under_application(self):
        """Each operation maps the structure onto itself site-for-site."""
        s = make_prototype("cscl", ["Cs", "Cl"])
        finder = SymmetryFinder(s)
        coords_by_el = {}
        for site in s.sites:
            coords_by_el.setdefault(site.element.symbol, []).append(
                site.frac_coords % 1.0
            )
        for op in finder.operations()[:12]:
            for symbol, coords in coords_by_el.items():
                for c in coords:
                    image = op.apply(c)
                    deltas = [
                        np.abs((image - other) - np.round(image - other)).max()
                        for other in coords
                    ]
                    assert min(deltas) < 1e-6

    def test_identity_always_present(self):
        for proto, els in [("rocksalt", ["Mg", "O"]), ("olivine", ["Li", "Fe"])]:
            ops = SymmetryFinder(make_prototype(proto, els)).operations()
            assert any(op.is_identity for op in ops)

    def test_broken_symmetry_reduces_order(self):
        """Perturbing the atoms must strictly lower the operation count."""
        perfect = make_prototype("rocksalt", ["Na", "Cl"])
        broken = perfect.perturb(0.15, seed=4)
        assert SymmetryFinder(broken).order < SymmetryFinder(perfect).order

    def test_determinants_are_unimodular(self):
        for op in SymmetryFinder(make_prototype("cscl", ["Cs", "Cl"])).operations():
            assert op.determinant in (1, -1)

    def test_summary_shape(self):
        summary = SymmetryFinder(
            make_prototype("layered", ["Li", "Co"])
        ).summary()
        assert summary["lattice_system"] == "hexagonal"
        assert summary["n_operations"] >= summary["n_centering"]
        assert summary["point_group_order"] <= summary["n_operations"]
