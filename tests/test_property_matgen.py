"""Property-based tests (hypothesis) for the materials object model.

Invariants:
* Composition parsing round-trips through its own formula renderings;
  arithmetic is associative/consistent with amounts.
* Lattice parameter construction round-trips; volumes and distances behave
  under scaling; minimum-image distance is symmetric and bounded.
* Structure hashing is invariant under supercell-free perturbation below
  the quantization threshold; energies are extensive.
* Phase diagrams: e_above_hull is non-negative, zero for hull members, and
  invariant under uniform reference shifts of elemental energies... (the
  last only when refs shift consistently — we test the simpler invariants).
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.matgen import Composition, Element, Lattice, PDEntry, PhaseDiagram
from repro.matgen.elements import _DATA

symbols = st.sampled_from(sorted(_DATA))
amounts = st.integers(min_value=1, max_value=12)

compositions = st.dictionaries(symbols, amounts, min_size=1, max_size=4).map(
    Composition
)


class TestCompositionProperties:
    @given(comp=compositions)
    @settings(max_examples=150)
    def test_formula_roundtrip(self, comp):
        assert Composition(comp.formula) == comp
        assert Composition(comp.alphabetical_formula) == comp

    @given(comp=compositions)
    @settings(max_examples=150)
    def test_reduced_is_idempotent_and_proportional(self, comp):
        reduced = comp.reduced_composition()
        assert reduced.reduced_composition() == reduced
        # Same atomic fractions.
        for el in comp.elements:
            assert comp.get_atomic_fraction(el) == pytest.approx(
                reduced.get_atomic_fraction(el)
            )

    @given(a=compositions, b=compositions)
    @settings(max_examples=100)
    def test_addition_conserves_atoms_and_mass(self, a, b):
        total = a + b
        assert total.num_atoms == pytest.approx(a.num_atoms + b.num_atoms)
        assert total.weight == pytest.approx(a.weight + b.weight)
        assert total.nelectrons == pytest.approx(a.nelectrons + b.nelectrons)

    @given(a=compositions, b=compositions)
    @settings(max_examples=100)
    def test_add_then_subtract_roundtrips(self, a, b):
        assert (a + b) - b == a

    @given(comp=compositions, k=st.integers(1, 5))
    @settings(max_examples=100)
    def test_scalar_multiplication(self, comp, k):
        scaled = comp * k
        assert scaled.num_atoms == pytest.approx(k * comp.num_atoms)
        assert scaled.reduced_formula == comp.reduced_formula

    @given(comp=compositions)
    @settings(max_examples=100)
    def test_fractional_normalizes(self, comp):
        frac = comp.fractional_composition()
        assert frac.num_atoms == pytest.approx(1.0)

    @given(comp=compositions)
    @settings(max_examples=100)
    def test_chemical_system_sorted_unique(self, comp):
        parts = comp.chemical_system.split("-")
        assert parts == sorted(parts)
        assert len(parts) == len(set(parts)) == len(comp)


lengths = st.floats(min_value=2.0, max_value=12.0)
angles = st.floats(min_value=50.0, max_value=130.0)
frac_coords = st.lists(
    st.floats(min_value=0.0, max_value=0.9999), min_size=3, max_size=3
)


class TestLatticeProperties:
    @given(a=lengths, b=lengths, c=lengths, al=angles, be=angles, ga=angles)
    @settings(max_examples=150)
    def test_parameters_roundtrip(self, a, b, c, al, be, ga):
        # Reject degenerate angle combinations (non-positive cell volume).
        try:
            lat = Lattice.from_parameters(a, b, c, al, be, ga)
        except Exception:
            assume(False)
        pa, pb, pc, pal, pbe, pga = lat.parameters
        assert (pa, pb, pc) == pytest.approx((a, b, c), rel=1e-6)
        assert (pal, pbe, pga) == pytest.approx((al, be, ga), rel=1e-6)

    @given(a=lengths, x=frac_coords, y=frac_coords)
    @settings(max_examples=150)
    def test_minimum_image_symmetry_and_bound(self, a, x, y):
        lat = Lattice.cubic(a)
        d_xy = lat.distance(x, y)
        d_yx = lat.distance(y, x)
        assert d_xy == pytest.approx(d_yx, abs=1e-9)
        # No two points in a periodic cubic cell are farther apart than
        # half the body diagonal.
        assert d_xy <= a * math.sqrt(3) / 2 + 1e-9

    @given(a=lengths, x=frac_coords)
    @settings(max_examples=100)
    def test_self_distance_zero(self, a, x):
        assert Lattice.cubic(a).distance(x, x) == pytest.approx(0.0, abs=1e-12)

    @given(a=lengths, x=frac_coords, shift=st.lists(
        st.integers(-2, 2), min_size=3, max_size=3))
    @settings(max_examples=100)
    def test_distance_invariant_under_lattice_translation(self, a, x, shift):
        lat = Lattice.cubic(a)
        y = [xi + si for xi, si in zip(x, shift)]
        assert lat.distance(x, y) == pytest.approx(0.0, abs=1e-9)

    @given(a=lengths, factor=st.floats(min_value=0.5, max_value=3.0))
    @settings(max_examples=100)
    def test_volume_scaling(self, a, factor):
        lat = Lattice.cubic(a)
        scaled = lat.scale(lat.volume * factor)
        assert scaled.volume == pytest.approx(lat.volume * factor)

    @given(a=lengths, frac=frac_coords)
    @settings(max_examples=100)
    def test_coordinate_roundtrip(self, a, frac):
        lat = Lattice.from_parameters(a, a * 1.1, a * 0.9, 80, 95, 105)
        assert lat.fractional(lat.cartesian(frac)) == pytest.approx(frac)


class TestPhaseDiagramProperties:
    @given(
        energies=st.lists(
            st.floats(min_value=-5.0, max_value=1.0), min_size=1, max_size=6
        ),
        fracs=st.lists(
            st.floats(min_value=0.05, max_value=0.95), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_e_above_hull_nonnegative_and_hull_members_zero(
        self, energies, fracs
    ):
        n = min(len(energies), len(fracs))
        entries = [PDEntry("Li", 0.0), PDEntry("O", 0.0)]
        for i in range(n):
            x = fracs[i]
            comp = Composition({"Li": 1 - x, "O": x})
            entries.append(PDEntry(comp, energies[i] * comp.num_atoms))
        pd = PhaseDiagram(entries)
        for entry in entries:
            e = pd.get_e_above_hull(entry)
            assert e >= -1e-7
        for stable in pd.stable_entries:
            assert pd.get_e_above_hull(stable) == pytest.approx(0.0, abs=1e-6)

    @given(shift=st.floats(min_value=-3.0, max_value=3.0))
    @settings(max_examples=50, deadline=None)
    def test_e_above_hull_invariant_under_total_energy_shift(self, shift):
        """Shifting ALL energies per atom by a constant preserves hull
        distances (formation energies are relative)."""
        def build(delta):
            entries = [
                PDEntry("Li", (0.0 + delta) * 1),
                PDEntry("O", (0.0 + delta) * 1),
                PDEntry("Li2O", (-2.0 + delta) * 3),
                PDEntry("LiO2", (-0.5 + delta) * 3),
            ]
            return PhaseDiagram(entries), entries

        pd0, e0 = build(0.0)
        pd1, e1 = build(shift)
        for a, b in zip(e0, e1):
            assert pd0.get_e_above_hull(a) == pytest.approx(
                pd1.get_e_above_hull(b), abs=1e-6
            )


class TestEnergyModelProperties:
    @given(n=st.sampled_from([1, 2, 3]), m=st.sampled_from([1, 2]))
    @settings(max_examples=20, deadline=None)
    def test_energy_extensive_under_supercells(self, n, m):
        from repro.dft import total_energy
        from repro.matgen import make_prototype

        base = make_prototype("rocksalt", ["Mg", "O"])
        sc = base.make_supercell((n, m, 1))
        assert total_energy(sc) == pytest.approx(
            n * m * total_energy(base), rel=1e-6
        )

    @given(seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_scf_energy_close_to_model(self, seed):
        """For any ICSD structure, converged SCF lands within the cutoff
        bias of the model energy."""
        from repro.datagen import SyntheticICSD
        from repro.dft import SCFParameters, run_scf, total_energy

        s = SyntheticICSD(seed=seed).structures(1)[0]
        result = run_scf(s, SCFParameters(amix=0.15, algo="All", nelm=500))
        bias_bound = 0.8 * math.exp(-520 / 150.0) * s.num_sites + 1e-9
        assert abs(result.energy - total_energy(s)) <= bias_bound
