"""Tests for document-complexity metrics (Table I machinery)."""


from repro.analysis import collection_complexity, document_complexity


class TestDocumentComplexity:
    def test_flat_document(self):
        c = document_complexity({"a": 1, "b": 2, "c": 3})
        assert c.nodes == 3
        assert c.max_depth == 1
        assert c.mean_depth == 1.0
        assert c.n_leaves == 3

    def test_nested_document(self):
        c = document_complexity({"a": {"b": {"c": 1}}, "d": 2})
        # Nodes: a, a.b, a.b.c, d = 4; leaf depths: 3 and 1.
        assert c.nodes == 4
        assert c.max_depth == 3
        assert c.mean_depth == 2.0

    def test_arrays_count_elements(self):
        c = document_complexity({"xs": [1, 2, 3]})
        assert c.nodes == 4  # xs + 3 elements
        assert c.max_depth == 2

    def test_empty_containers_are_leaves(self):
        c = document_complexity({"a": {}, "b": []})
        assert c.n_leaves == 2
        assert c.max_depth == 1

    def test_empty_document(self):
        c = document_complexity({})
        assert c.nodes == 0
        assert c.mean_depth == 0.0

    def test_monotone_in_content(self):
        small = document_complexity({"a": 1})
        big = document_complexity({"a": 1, "b": {"c": [1, 2, {"d": 3}]}})
        assert big.nodes > small.nodes
        assert big.max_depth > small.max_depth


class TestCollectionComplexity:
    def test_median_aggregation(self):
        docs = [{"a": 1}, {"a": 1, "b": {"c": 2}}, {"a": {"b": {"c": {"d": 1}}}}]
        row = collection_complexity(docs, "test")
        assert row["n_docs"] == 3
        assert row["nodes"] == 3  # median of [1, 3, 4]

    def test_empty_collection(self):
        row = collection_complexity([], "empty")
        assert row["n_docs"] == 0

    def test_pipeline_documents_rank_like_table1(self):
        """The Table I ordering: tasks ≫ materials > MPS > battery docs."""
        from tests.test_builders import _insert_task
        from repro.builders import BatteryBuilder, MaterialsBuilder
        from repro.docstore import DocumentStore
        from repro.matgen import make_prototype, mps_from_structure

        db = DocumentStore()["mp"]
        lifepo4 = make_prototype("olivine", ["Li", "Fe"])
        fepo4 = lifepo4.remove_species(["Li"])
        db["mps"].insert_one(mps_from_structure(lifepo4))
        _insert_task(db, lifepo4, "mps-1")
        _insert_task(db, fepo4, "mps-2")
        MaterialsBuilder(db).run()
        BatteryBuilder(db, "Li").run_intercalation()

        mps_c = collection_complexity(db["mps"].all_documents(), "mps")
        tasks_c = collection_complexity(db["tasks"].all_documents(), "tasks")
        mats_c = collection_complexity(db["materials"].all_documents(), "materials")
        bat_c = collection_complexity(db["batteries"].all_documents(), "batteries")

        # Shape from the paper: tasks are the most complex; battery
        # prototype docs the simplest; depths are all >= 3 levels.
        assert tasks_c["nodes"] >= mats_c["nodes"] * 0.8
        assert mats_c["nodes"] > mps_c["nodes"] * 0.5
        assert bat_c["nodes"] < tasks_c["nodes"]
        assert tasks_c["depth"] >= 4
