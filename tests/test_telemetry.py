"""Tests for the self-hosted telemetry warehouse: TTL retention in the
engine, metrics history + rollups, the access-log warehouse, tail-sampled
traces, warehouse-backed SLO alerts/advisor, HTTP endpoints, and the CLI."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.api import MaterialsAPI, MaterialsAPIServer, QueryEngine
from repro.api.querylog import QueryLog, access_top
from repro.docstore import (
    DatastoreServer,
    DocumentStore,
    RemoteClient,
)
from repro.errors import DocstoreError
from repro.obs import (
    BurnRateRule,
    HealthMonitor,
    LatencyWindowSource,
    MetricsRegistry,
    TelemetryWarehouse,
    ThresholdRule,
    get_registry,
    set_registry,
    span,
)
from repro.obs.metrics import MAX_LABEL_SETS, OVERFLOW_LABEL_VALUE
from repro.obs.warehouse import (
    MetricsHistoryRecorder,
    TailSampler,
    labels_key,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = get_registry()
    set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture
def store():
    s = DocumentStore()
    yield s
    s.close()


def _get(url):
    try:
        with urllib.request.urlopen(url) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


# -- TTL indexes and the reaper -------------------------------------------


class TestTTL:
    def test_create_index_stores_ttl(self, store):
        coll = store["mp"]["events"]
        coll.create_index("ts", expire_after_seconds=60)
        info = coll.index_information()["ts_1"]
        assert info["expireAfterSeconds"] == 60.0
        assert coll.ttl_info() == [
            {"name": "ts_1", "field": "ts", "expire_after_seconds": 60.0}
        ]

    def test_negative_ttl_rejected(self, store):
        with pytest.raises(DocstoreError):
            store["mp"]["events"].create_index(
                "ts", expire_after_seconds=-1
            )

    def test_reap_expired_deletes_only_old_numeric(self, store):
        coll = store["mp"]["events"]
        coll.create_index("ts", expire_after_seconds=100)
        now = 1000.0
        coll.insert_many([
            {"i": "old", "ts": 850.0},
            {"i": "fresh", "ts": 950.0},
            {"i": "stringy", "ts": "not-a-timestamp"},
            {"i": "missing"},
        ])
        assert coll.reap_expired(now=now) == 1
        kept = {d["i"] for d in coll.find({})}
        # type-bracketed $lt: non-numeric ts values never expire
        assert kept == {"fresh", "stringy", "missing"}

    def test_reap_notifies_changestream(self, store):
        coll = store["mp"]["events"]
        coll.create_index("ts", expire_after_seconds=10)
        coll.insert_one({"ts": 0.0})
        stream = coll.watch()
        coll.reap_expired(now=1000.0)
        ops = [e.operation for e in stream.drain()]
        assert "delete" in ops

    def test_reaper_thread_sweeps(self, store):
        coll = store["mp"]["events"]
        coll.create_index("ts", expire_after_seconds=0.01)
        coll.insert_many([{"ts": time.time() - 5} for _ in range(3)])
        store.start_ttl_reaper(interval_s=0.02)
        deadline = time.time() + 5
        while coll.count_documents() and time.time() < deadline:
            time.sleep(0.02)
        assert coll.count_documents() == 0
        assert store.server_status()["ttl"]["sweeps"] >= 1
        store.stop_ttl_reaper()

    def test_ttl_survives_snapshot_roundtrip(self, tmp_path):
        s1 = DocumentStore(persistence_dir=tmp_path)
        s1["mp"]["events"].create_index("ts", expire_after_seconds=30)
        s1["mp"]["events"].insert_one({"ts": 1.0})
        s1.snapshot()
        s1.close()
        s2 = DocumentStore(persistence_dir=tmp_path)
        info = s2["mp"]["events"].index_information()["ts_1"]
        assert info["expireAfterSeconds"] == 30.0
        assert s2["mp"]["events"].reap_expired(now=1e9) == 1
        s2.close()

    def test_ttl_over_the_wire(self, store):
        with DatastoreServer(store) as server:
            with RemoteClient(*server.address) as client:
                client["mp"]["events"].create_index(
                    "ts", expire_after_seconds=45
                )
        info = store["mp"]["events"].index_information()["ts_1"]
        assert info["expireAfterSeconds"] == 45.0


# -- label-cardinality bounding -------------------------------------------


class TestLabelCardinality:
    def test_default_cap(self):
        counter = get_registry().counter("c_total", "x")
        assert counter.max_label_sets == MAX_LABEL_SETS

    def test_overflow_routes_to_other_bucket(self):
        registry = get_registry()
        counter = registry.counter("hits_total", "x")
        counter.max_label_sets = 3
        for i in range(10):
            counter.inc(1, user=f"u{i}")
        collected = {
            labels_key(s["labels"]): s["value"]
            for s in counter.collect()["series"]
        }
        assert collected[f"user={OVERFLOW_LABEL_VALUE}"] == 7
        assert len(collected) == 4  # 3 real series + __other__
        overflow = registry.counter("repro_obs_label_overflow_total", "")
        assert overflow.value(metric="hits_total") == 7

    def test_existing_series_keep_counting_after_cap(self):
        counter = get_registry().counter("again_total", "x")
        counter.max_label_sets = 2
        counter.inc(1, k="a")
        counter.inc(1, k="b")
        counter.inc(1, k="c")  # overflows
        counter.inc(5, k="a")  # pre-existing: unaffected by the cap
        assert counter.value(k="a") == 6


# -- metrics history + rollups --------------------------------------------


class TestMetricsHistory:
    def test_counter_deltas(self, store):
        # a private registry: only this test's metrics, no docstore noise
        registry = MetricsRegistry()
        recorder = MetricsHistoryRecorder(
            store["telemetry"]["metrics"], registry=registry
        )
        c = registry.counter("jobs_total", "x")
        c.inc(5)
        assert recorder.record_once(now=100.0) == 1
        c.inc(2)
        assert recorder.record_once(now=160.0) == 1
        # idle pass writes nothing for the unchanged counter
        assert recorder.record_once(now=220.0) == 0
        points = recorder.series("jobs_total")
        assert [(p["value"], p["total"]) for p in points] == [
            (5.0, 5.0), (2.0, 7.0)
        ]

    def test_gauge_and_histogram_snapshots(self, store):
        registry = MetricsRegistry()
        recorder = MetricsHistoryRecorder(
            store["telemetry"]["metrics"], registry=registry
        )
        registry.gauge("depth", "x").set(42.0)
        h = registry.histogram("lat_ms", "x")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        recorder.record_once(now=50.0)
        depth = recorder.series("depth")[0]
        assert depth["value"] == 42.0
        hist = recorder.series("lat_ms")[0]
        assert hist["count"] == 4
        assert hist["value"] == pytest.approx(2.5)  # mean
        assert hist["p95"] >= hist["p50"]

    def test_series_uses_compound_index(self, store):
        registry = MetricsRegistry()
        recorder = MetricsHistoryRecorder(
            store["telemetry"]["metrics"], registry=registry
        )
        registry.counter("x_total", "x").inc(1)
        recorder.record_once(now=10.0)
        plan = store["telemetry"]["metrics"].explain(
            {"name": "x_total", "ts": {"$gte": 0.0}}
        )
        assert plan["planSummary"].startswith("IXSCAN")


class TestRollups:
    def _warehouse(self, store):
        return TelemetryWarehouse(store, registry=get_registry())

    def test_incremental_buckets(self, store):
        wh = self._warehouse(store)
        c = get_registry().counter("ops_total", "x")
        for value, now in ((4, 10.0), (6, 30.0), (2, 70.0)):
            c.inc(value)
            wh.recorder.record_once(now=now)
        result = wh.rollups.process_pending()
        assert result["mode"] == "incremental"
        buckets = wh.rollups.query("ops_total", "1m")
        assert [(b["ts"], b["count"], b["sum"]) for b in buckets] == [
            (0.0, 2, 10.0), (60.0, 1, 2.0)
        ]
        assert buckets[0]["min"] == 4.0
        assert buckets[0]["max"] == 6.0
        assert buckets[0]["mean"] == 5.0
        hour = wh.rollups.query("ops_total", "1h")
        assert len(hour) == 1 and hour[0]["count"] == 3

    def test_overflow_triggers_full_rebuild(self, store):
        wh = self._warehouse(store)
        c = get_registry().counter("burst_total", "x")
        # replace the stream with a tiny buffer and overflow it
        wh.rollups.stream = wh.db["metrics"].watch(max_buffer=2)
        for i in range(5):
            c.inc(1)
            wh.recorder.record_once(now=10.0 * (i + 1))
        result = wh.rollups.process_pending()
        assert result["mode"] == "full-rebuild"
        assert wh.rollups.full_rebuilds == 1
        total = sum(
            b["count"] for b in wh.rollups.query("burst_total", "1m")
        )
        assert total == 5

    def test_unknown_resolution_rejected(self, store):
        wh = self._warehouse(store)
        with pytest.raises(ValueError):
            wh.rollups.query("x", resolution="5m")

    def test_rollups_survive_restart(self, tmp_path):
        s1 = DocumentStore(persistence_dir=tmp_path)
        wh1 = TelemetryWarehouse(s1, registry=get_registry())
        get_registry().counter("persist_total", "x").inc(3)
        wh1.recorder.record_once(now=100.0)
        wh1.rollups.process_pending()
        s1.snapshot()
        s1.close()
        s2 = DocumentStore(persistence_dir=tmp_path)
        wh2 = TelemetryWarehouse(s2, registry=MetricsRegistry())
        assert wh2.recorder.series("persist_total")[0]["value"] == 3.0
        assert wh2.rollups.query("persist_total", "1m")[0]["sum"] == 3.0
        s2.close()


# -- the access-log warehouse ---------------------------------------------


class TestAccessWarehouse:
    def test_filters_and_in_lists(self, store):
        log = QueryLog(collection=store["telemetry"]["access"])
        log.record_access("a", user="alice", status=200, ts=1.0)
        log.record_access("b", user="bob", status=404,
                          error="NotFoundError", ts=2.0)
        log.record_access("a", user="bob", status=200, duration_ms=9.0,
                          ts=3.0)
        assert len(log.query_access_log(endpoint="a")) == 2
        assert len(log.query_access_log(user=["alice", "bob"])) == 3
        assert len(log.query_access_log(errors_only=True)) == 1
        assert len(log.query_access_log(min_duration_ms=5.0)) == 1
        assert len(log.query_access_log(after=1.5, before=2.5)) == 1
        # most recent first
        assert log.query_access_log()[0]["ts"] == 3.0

    def test_endpoint_query_rides_the_compound_index(self, store):
        log = QueryLog(collection=store["telemetry"]["access"])
        for i in range(20):
            log.record_access("hot" if i % 2 else "cold", ts=float(i))
        plan = store["telemetry"]["access"].explain(
            {"endpoint": "hot", "ts": {"$gte": 0.0}}
        )
        assert plan["planSummary"] == "IXSCAN { endpoint: 1, ts: 1 }"

    def test_eviction_fifo_over_cap(self, store):
        log = QueryLog(collection=store["telemetry"]["access"], cap=5)
        for i in range(8):
            log.record_access(f"e{i}", ts=float(i))
        assert len(log) == 5
        kept = {r["endpoint"] for r in log.query_access_log()}
        assert kept == {"e3", "e4", "e5", "e6", "e7"}

    def test_top_rankings(self, store):
        log = QueryLog(collection=store["telemetry"]["access"])
        log.record_access("slow", duration_ms=100.0)
        log.record_access("busy", duration_ms=1.0)
        log.record_access("busy", duration_ms=1.0)
        log.record_access("broken", status=500, duration_ms=1.0)
        assert log.top(by="duration")[0]["endpoint"] == "slow"
        assert log.top(by="count")[0]["endpoint"] == "busy"
        assert log.top(by="errors")[0]["endpoint"] == "broken"
        with pytest.raises(ValueError):
            log.top(by="vibes")
        # access_top works on the bare collection too (the CLI path)
        assert access_top(store["telemetry"]["access"],
                          by="count")[0]["endpoint"] == "busy"

    def test_seq_resumes_after_restart(self, tmp_path):
        s1 = DocumentStore(persistence_dir=tmp_path)
        log1 = QueryLog(collection=s1["telemetry"]["access"])
        log1.record_access("a")
        log1.record_access("b")
        s1.snapshot()
        s1.close()
        s2 = DocumentStore(persistence_dir=tmp_path)
        log2 = QueryLog(collection=s2["telemetry"]["access"])
        log2.record_access("c")
        seqs = [r["seq"] for r in log2.query_access_log()]
        assert sorted(seqs) == [0, 1, 2]
        s2.close()


# -- tail-sampled traces --------------------------------------------------


class TestTailSampler:
    def test_keeps_slow_drops_fast(self, store):
        sampler = TailSampler(store["telemetry"]["traces"],
                              latency_threshold_ms=5.0)
        sampler.install()
        try:
            with span("slow") as slow:
                time.sleep(0.01)
            with span("fast") as fast:
                pass
        finally:
            sampler.uninstall()
        kept = sampler.get(slow.trace_id)
        assert kept is not None
        assert kept["roots"][0]["reason"] == "slow"
        assert kept["roots"][0]["trace"]["name"] == "slow"
        assert sampler.get(fast.trace_id) is None
        decisions = get_registry().counter(
            "repro_obs_traces_sampled_total", ""
        )
        assert decisions.value(decision="kept") == 1
        assert decisions.value(decision="dropped") == 1

    def test_keeps_errors_below_threshold(self, store):
        sampler = TailSampler(store["telemetry"]["traces"],
                              latency_threshold_ms=1e9)
        sampler.install()
        try:
            with pytest.raises(RuntimeError):
                with span("doomed") as doomed:
                    raise RuntimeError("boom")
        finally:
            sampler.uninstall()
        kept = sampler.get(doomed.trace_id)
        assert kept["roots"][0]["reason"] == "error"

    def test_cap_evicts_oldest(self, store):
        sampler = TailSampler(store["telemetry"]["traces"],
                              latency_threshold_ms=0.0, cap=3)
        sampler.install()
        try:
            ids = []
            for i in range(5):
                with span(f"s{i}") as s:
                    pass
                ids.append(s.trace_id)
        finally:
            sampler.uninstall()
        assert sampler.get(ids[0]) is None
        assert sampler.get(ids[-1]) is not None
        assert len(sampler.query(limit=0)) == 3

    def test_uninstalled_sampler_sees_nothing(self, store):
        sampler = TailSampler(store["telemetry"]["traces"],
                              latency_threshold_ms=0.0)
        with span("unsampled") as s:
            pass
        assert sampler.get(s.trace_id) is None


# -- wire-server access accounting ----------------------------------------


class TestWireAccess:
    def test_dispatch_success_and_failure_both_recorded(self, store):
        log = QueryLog(collection=store["telemetry"]["access"])
        with DatastoreServer(store, access_log=log) as server:
            with RemoteClient(*server.address) as client:
                client["mp"]["m"].insert_one({"x": 1})
                with pytest.raises(DocstoreError):
                    client.request({"op": "definitely_not_an_op"})
        records = log.query_access_log(method="WIRE")
        by_endpoint = {r["endpoint"]: r for r in records}
        ok = by_endpoint["wire/insert_one"]
        assert ok["status"] == 200 and ok["error"] is None
        assert ok["request_bytes"] > 0 and ok["response_bytes"] > 0
        failed = by_endpoint["wire/definitely_not_an_op"]
        assert failed["status"] == 500
        assert failed["error"]  # dispatch failures still produce a record

    def test_no_log_attached_is_fine(self, store):
        with DatastoreServer(store) as server:
            with RemoteClient(*server.address) as client:
                assert client.ping()


# -- warehouse-backed SLO alerts + health endpoint ------------------------


class TestWarehouseSLO:
    def test_burn_rate_from_warehouse_records(self, store):
        wh = TelemetryWarehouse(store, registry=get_registry())
        now = time.time()
        for i in range(10):
            wh.access.record_access("api", duration_ms=500.0,
                                    ts=now - i)
        rule = BurnRateRule(
            "api-latency",
            LatencyWindowSource.from_warehouse(wh, 100.0, endpoint="api"),
            objective=0.5, window_s=300.0, severity="critical",
        )
        engine = wh.slo_engine([rule])
        opened = engine.evaluate(now=now)
        assert len(opened) == 1
        assert engine.status() == "critical"
        # alert document lives in telemetry.alerts, not system.alerts
        assert store["telemetry"]["alerts"].count_documents(
            {"state": "open"}
        ) == 1

    def test_alert_lifecycle_survives_restart(self, tmp_path):
        now = time.time()
        s1 = DocumentStore(persistence_dir=tmp_path)
        wh1 = TelemetryWarehouse(s1, registry=get_registry())
        for i in range(4):
            wh1.access.record_access("api", duration_ms=500.0, ts=now - i)
        rule = BurnRateRule(
            "api-latency",
            LatencyWindowSource.from_warehouse(wh1, 100.0),
            objective=0.5, window_s=300.0,
        )
        wh1.slo_engine([rule]).evaluate(now=now)
        s1.snapshot()
        s1.close()

        s2 = DocumentStore(persistence_dir=tmp_path)
        wh2 = TelemetryWarehouse(s2, registry=MetricsRegistry())
        rule2 = BurnRateRule(
            "api-latency",
            LatencyWindowSource.from_warehouse(wh2, 100.0),
            objective=0.5, window_s=300.0,
        )
        engine2 = wh2.slo_engine([rule2])
        # the open alert was adopted from the journal round-trip
        assert [a["rule"] for a in engine2.open_alerts()] == ["api-latency"]
        assert engine2.status() == "critical"
        # healthy traffic resolves the *persisted* alert, not a duplicate
        later = now + 3600.0
        for i in range(20):
            wh2.access.record_access("api", duration_ms=1.0, ts=later - i)
        assert engine2.evaluate(now=later) == []
        assert engine2.open_alerts() == []
        assert s2["telemetry"]["alerts"].count_documents(
            {"state": "resolved"}
        ) == 1
        s2.close()

    def test_health_endpoint_503_on_critical(self, store):
        db = store["mp"]
        db["materials"].insert_one({"material_id": "mp-1"})
        wh = TelemetryWarehouse(store, registry=get_registry())
        rule = ThresholdRule("queue-depth", gauge="queue_depth",
                             threshold=10.0, severity="critical")
        monitor = HealthMonitor(engine=wh.slo_engine([rule]))
        depth = {"value": 0.0}
        monitor.add_gauge("queue_depth", lambda: depth["value"])
        api = MaterialsAPI(QueryEngine(db, query_log=wh.access))
        with MaterialsAPIServer(api, monitor=monitor,
                                warehouse=wh) as server:
            code, report = _get(server.base_url + "/health")
            assert code == 200 and report["status"] == "green"
            depth["value"] = 50.0
            code, report = _get(server.base_url + "/health")
            assert code == 503 and report["status"] == "critical"
            assert report["alerts"]["open"][0]["rule"] == "queue-depth"
            depth["value"] = 0.0
            code, report = _get(server.base_url + "/health")
            assert code == 200 and report["status"] == "green"


# -- advisor over the persisted profile mirror ----------------------------


class TestWarehouseAdvisor:
    def test_recommendation_after_restart(self, tmp_path):
        s1 = DocumentStore(persistence_dir=tmp_path)
        db1 = s1["mp"]
        db1["mat"].insert_many(
            [{"formula": f"F{i}", "n": i} for i in range(40)]
        )
        db1.set_profiling_level(2)
        for _ in range(3):
            list(db1["mat"].find({"formula": "F7"}))
        db1.set_profiling_level(0)
        wh1 = TelemetryWarehouse(s1, registry=get_registry())
        wh1.watch_profile(db1)
        assert wh1.sync_profile() >= 3
        s1.snapshot()
        s1.close()

        s2 = DocumentStore(persistence_dir=tmp_path)
        wh2 = TelemetryWarehouse(s2, registry=MetricsRegistry())
        db2 = s2["mp"]
        assert db2.profile_log == []  # in-memory profile died with s1
        advisor = wh2.advisor(db2, min_occurrences=2)
        recs = advisor.analyze()
        assert any(r.field == "formula" for r in recs)
        result = advisor.verify(recs[0])
        assert result["after"]["planSummary"].startswith("IXSCAN")
        s2.close()

    def test_sync_profile_is_incremental(self, store):
        db = store["mp"]
        db["m"].insert_many([{"i": i} for i in range(5)])
        wh = TelemetryWarehouse(store, registry=get_registry())
        wh.watch_profile(db)
        db.set_profiling_level(2)
        list(db["m"].find({"i": 1}))
        db.set_profiling_level(0)
        first = wh.sync_profile()
        assert first >= 1
        assert wh.sync_profile() == 0  # nothing new
        db.set_profiling_level(2)
        list(db["m"].find({"i": 2}))
        db.set_profiling_level(0)
        assert wh.sync_profile() >= 1


# -- HTTP surface ---------------------------------------------------------


@pytest.fixture
def served_warehouse(store):
    db = store["mp"]
    db["materials"].insert_many([
        {"material_id": f"mp-{i}", "pretty_formula": "NaCl",
         "band_gap": 1.0}
        for i in range(3)
    ])
    wh = TelemetryWarehouse(store, registry=get_registry(),
                            trace_latency_threshold_ms=0.0)
    wh.tail_sampler.install()
    api = MaterialsAPI(QueryEngine(db, query_log=wh.access))
    server = MaterialsAPIServer(api, warehouse=wh).start()
    yield server, wh
    server.stop()
    wh.tail_sampler.uninstall()


class TestTelemetryEndpoints:
    def test_requests_land_in_access_warehouse(self, served_warehouse):
        server, wh = served_warehouse
        _get(server.base_url + "/rest/v1/materials/mp-1")
        _get(server.base_url + "/rest/v1/materials/mp-2")
        _get(server.base_url + "/rest/v1/materials/mp-missing")
        # the record is written after the response bytes go out: poll
        deadline = time.time() + 5
        recs = wh.access.query_access_log(endpoint="rest/v1/materials")
        while len(recs) < 3 and time.time() < deadline:
            time.sleep(0.01)
            recs = wh.access.query_access_log(endpoint="rest/v1/materials")
        # ids are templated away: one endpoint, bounded cardinality
        assert len(recs) == 3
        assert {r["status"] for r in recs} == {200, 404}
        assert all(r["response_bytes"] > 0 for r in recs)
        assert all(r["duration_ms"] > 0 for r in recs)

    def test_telemetry_access_endpoint(self, served_warehouse):
        server, wh = served_warehouse
        _get(server.base_url + "/rest/v1/materials/mp-1")
        deadline = time.time() + 5
        while not wh.access.query_access_log(
            endpoint="rest/v1/materials"
        ) and time.time() < deadline:
            time.sleep(0.01)
        code, doc = _get(
            server.base_url
            + "/telemetry/access?endpoint=rest/v1/materials"
        )
        assert code == 200 and len(doc["records"]) == 1
        code, doc = _get(server.base_url + "/telemetry/access?top=count")
        assert code == 200 and doc["top"]
        code, doc = _get(server.base_url + "/telemetry/access?summary=1")
        assert code == 200 and "queries" in doc
        code, doc = _get(server.base_url + "/telemetry/access?top=vibes")
        assert code == 400

    def test_telemetry_metrics_endpoint(self, served_warehouse):
        server, wh = served_warehouse
        get_registry().counter("demo_total", "x").inc(2)
        wh.recorder.record_once(now=30.0)
        wh.rollups.process_pending()
        code, doc = _get(server.base_url + "/telemetry/metrics")
        assert code == 200 and "demo_total" in doc["names"]
        code, doc = _get(
            server.base_url + "/telemetry/metrics?name=demo_total"
        )
        assert code == 200 and doc["series"][0]["value"] == 2.0
        code, doc = _get(
            server.base_url
            + "/telemetry/metrics?name=demo_total&resolution=1m"
        )
        assert code == 200 and doc["series"][0]["count"] == 1

    def test_trace_endpoints(self, served_warehouse):
        server, _ = served_warehouse
        with span("traced-work"):
            pass
        code, doc = _get(server.base_url + "/telemetry/traces")
        assert code == 200 and doc["traces"]
        trace_id = doc["traces"][0]["trace_id"]
        code, doc = _get(server.base_url + f"/traces/{trace_id}")
        assert code == 200 and doc["trace_id"] == trace_id
        assert doc["roots"][0]["trace"]["name"] == "traced-work"
        code, _doc = _get(server.base_url + "/traces/not-a-trace")
        assert code == 404

    def test_telemetry_404_without_warehouse(self, store):
        api = MaterialsAPI(QueryEngine(store["mp"]))
        with MaterialsAPIServer(api) as server:
            assert _get(server.base_url + "/telemetry/access")[0] == 404
            assert _get(server.base_url + "/traces/x")[0] == 404


# -- warehouse lifecycle ---------------------------------------------------


class TestWarehouseLifecycle:
    def test_tick_and_stats(self, store):
        wh = TelemetryWarehouse(store, registry=get_registry())
        get_registry().counter("t_total", "x").inc(1)
        out = wh.tick(now=100.0)
        # t_total plus whatever docstore counters the warehouse itself
        # moved — dogfooding means the registry is shared
        assert out["metric_points"] >= 1
        assert wh.recorder.series("t_total")[0]["value"] == 1.0
        stats = wh.stats()
        assert stats["metrics"] == out["metric_points"]
        assert set(stats) == {"metrics", "metrics_rollup", "access",
                              "traces", "profile", "profiles", "alerts",
                              "events"}

    def test_background_loop_and_reaper(self, store):
        wh = TelemetryWarehouse(store, registry=get_registry())
        get_registry().counter("bg_total", "x").inc(1)
        wh.start(interval_s=0.02)
        assert wh.running
        assert store.ttl_reaper is not None and store.ttl_reaper.running
        deadline = time.time() + 5
        while not wh.stats()["metrics"] and time.time() < deadline:
            time.sleep(0.02)
        assert wh.stats()["metrics"] >= 1
        wh.stop()
        assert not wh.running


# -- CLI ------------------------------------------------------------------


class TestTelemetryCLI:
    @pytest.fixture
    def data_dir(self, tmp_path):
        s = DocumentStore(persistence_dir=tmp_path)
        wh = TelemetryWarehouse(s, registry=get_registry())
        get_registry().counter("cli_total", "x").inc(4)
        wh.recorder.record_once(now=90.0)
        wh.rollups.process_pending()
        wh.access.record_access("rest/v1/materials", user="alice",
                                status=200, duration_ms=3.0, ts=90.0)
        wh.access.record_access("rest/v1/materials", user="bob",
                                status=500, error="APIError",
                                duration_ms=7.0, ts=91.0)
        s.snapshot()
        s.close()
        return str(tmp_path)

    def _run(self, capsys, *argv):
        from repro.cli import main

        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_top(self, capsys, data_dir):
        out = self._run(capsys, "--data-dir", data_dir,
                        "telemetry", "top")
        assert "rest/v1/materials" in out

    def test_access_errors_only(self, capsys, data_dir):
        out = self._run(capsys, "--data-dir", data_dir,
                        "telemetry", "access", "--errors-only", "--json")
        records = [json.loads(line) for line in out.splitlines()]
        assert len(records) == 1 and records[0]["user"] == "bob"

    def test_trends(self, capsys, data_dir):
        out = self._run(capsys, "--data-dir", data_dir, "telemetry",
                        "trends", "--name", "cli_total",
                        "--resolution", "1m", "--json")
        rows = [json.loads(line) for line in out.splitlines()]
        assert rows[0]["sum"] == 4.0
        # no --name lists available metrics
        out = self._run(capsys, "--data-dir", data_dir,
                        "telemetry", "trends")
        assert "cli_total" in out

    def test_telemetry_over_the_wire(self, capsys, data_dir):
        store = DocumentStore(persistence_dir=data_dir)
        with DatastoreServer(store) as server:
            out = self._run(capsys, "telemetry", "top",
                            "--host", server.address[0],
                            "--port", str(server.port))
            assert "rest/v1/materials" in out
            out = self._run(capsys, "telemetry", "access", "--json",
                            "--host", server.address[0],
                            "--port", str(server.port))
            assert len(out.splitlines()) == 2
        store.close()

    def test_create_index_expire_after(self, capsys, tmp_path):
        out = self._run(capsys, "--data-dir", str(tmp_path),
                        "create-index", "--db", "mp", "--coll", "events",
                        "--keys", "ts", "--expire-after", "120")
        assert "TTL 120s" in out
        store = DocumentStore(persistence_dir=tmp_path)
        info = store["mp"]["events"].index_information()["ts_1"]
        assert info["expireAfterSeconds"] == 120.0
        store.close()
