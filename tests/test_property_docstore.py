"""Property-based tests (hypothesis) for the document-store core.

Invariants checked:
* extended JSON round-trips arbitrary documents
* set_path/get_path are inverse on fresh paths
* index-assisted queries return exactly what a collection scan returns
* update operators preserve document validity
* sort order is a total order consistent with compare_values
"""

import string

from hypothesis import given, settings, strategies as st

from repro.docstore import Collection, compile_query, document_from_json, document_to_json
from repro.docstore.documents import get_path, set_path, validate_document, walk
from repro.docstore.matching import compare_values, ordering_key

# JSON-like scalars (text limited to printable to keep failure output sane).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=string.ascii_letters + string.digits + "_- ", max_size=12),
)

field_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)

documents = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(field_names, children, max_size=4),
    ),
    max_leaves=20,
)

flat_docs = st.dictionaries(field_names, scalars, min_size=1, max_size=5)


class TestJSONRoundtrip:
    @given(doc=st.dictionaries(field_names, documents, max_size=5))
    @settings(max_examples=150)
    def test_roundtrip(self, doc):
        assert document_from_json(document_to_json(doc)) == doc


class TestPathAccess:
    @given(doc=st.dictionaries(field_names, documents, max_size=4),
           path=st.lists(field_names, min_size=1, max_size=3),
           value=scalars)
    @settings(max_examples=100)
    def test_set_then_get(self, doc, path, value):
        from repro.errors import DocstoreError

        dotted = ".".join(path)
        try:
            set_path(doc, dotted, value)
        except DocstoreError:
            return  # scalar in the way; correctly rejected
        assert get_path(doc, dotted) == value
        validate_document(doc)

    @given(doc=st.dictionaries(field_names, documents, max_size=4))
    @settings(max_examples=100)
    def test_every_walked_leaf_is_gettable(self, doc):
        for path, leaf in walk(doc):
            assert get_path(doc, path) == leaf


class TestOrderingTotality:
    @given(a=documents, b=documents, c=documents)
    @settings(max_examples=150)
    def test_antisymmetry_and_transitivity(self, a, b, c):
        ab, ba = compare_values(a, b), compare_values(b, a)
        assert ab == -ba
        if compare_values(a, b) <= 0 and compare_values(b, c) <= 0:
            assert compare_values(a, c) <= 0

    @given(values=st.lists(documents, min_size=2, max_size=8))
    @settings(max_examples=100)
    def test_sorting_is_stable_total(self, values):
        ordered = sorted(values, key=ordering_key)
        for x, y in zip(ordered, ordered[1:]):
            assert compare_values(x, y) <= 0


class TestIndexEquivalence:
    @given(docs=st.lists(flat_docs, min_size=1, max_size=20),
           probe=scalars)
    @settings(max_examples=80, deadline=None)
    def test_index_matches_collscan(self, docs, probe):
        scan_coll = Collection("scan")
        ix_coll = Collection("ix")
        ix_coll.create_index("k")
        for d in docs:
            scan_coll.insert_one(d)
            ix_coll.insert_one(d)
        query = {"k": probe}
        scanned = sorted(str(d["_id"]) for d in scan_coll.find(query))
        indexed = sorted(str(d["_id"]) for d in ix_coll.find(query))
        # ids differ between collections; compare by matched payload count
        assert len(scanned) == len(indexed)
        assert ix_coll.last_plan.kind == "IXSCAN"

    @given(docs=st.lists(st.fixed_dictionaries({"k": st.integers(-50, 50)}),
                         min_size=1, max_size=25),
           lo=st.integers(-50, 50), hi=st.integers(-50, 50))
    @settings(max_examples=80, deadline=None)
    def test_range_index_matches_collscan(self, docs, lo, hi):
        coll = Collection("c")
        coll.insert_many(docs)
        query = {"k": {"$gte": lo, "$lt": hi}}
        scan = {str(d["_id"]) for d in coll.find(query)}
        coll.create_index("k")
        indexed = {str(d["_id"]) for d in coll.find(query)}
        assert scan == indexed


class TestMatcherConsistency:
    @given(doc=flat_docs)
    @settings(max_examples=100)
    def test_equality_query_built_from_doc_matches_it(self, doc):
        query = {k: v for k, v in doc.items()}
        assert compile_query(query).matches(doc)

    @given(doc=flat_docs, key=field_names)
    @settings(max_examples=100)
    def test_exists_consistency(self, doc, key):
        m_yes = compile_query({key: {"$exists": True}})
        m_no = compile_query({key: {"$exists": False}})
        assert m_yes.matches(doc) == (key in doc)
        assert m_no.matches(doc) == (key not in doc)


class TestUpdatePreservesValidity:
    @given(doc=flat_docs, key=field_names, value=scalars)
    @settings(max_examples=100)
    def test_set_always_valid(self, doc, key, value):
        coll = Collection("c")
        coll.insert_one(doc)
        coll.update_one({}, {"$set": {key: value}})
        stored = coll.find_one({})
        validate_document(stored)
        assert stored[key] == value

    @given(doc=flat_docs, key=field_names, n=st.integers(-100, 100))
    @settings(max_examples=100)
    def test_inc_on_missing_or_numeric(self, doc, key, n):
        from repro.errors import UpdateSyntaxError

        coll = Collection("c")
        coll.insert_one(doc)
        old = doc.get(key)
        try:
            coll.update_one({}, {"$inc": {key: n}})
        except UpdateSyntaxError:
            assert old is not None and (isinstance(old, bool) or not isinstance(old, (int, float)))
            return
        new = coll.find_one({})[key]
        if old is None or key not in doc:
            assert new == n
        else:
            assert new == old + n
