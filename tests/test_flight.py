"""Flight recorder, stall watchdog, and crash forensics.

Covers the three layers of :mod:`repro.obs.flight` — the delta codec and
chunk ring (including decoder robustness against torn tails and CRC
corruption), the liveness probes, and the crash-report pipeline — plus
every surface wired on top: the ``flight`` wire op, ``GET /debug/flight``,
``repro diagnose``, warehouse event ingestion, and the ``process`` section
in ``server_status()`` / mongostat.  The capstone is a subprocess that
dies mid-write-load via ``os._exit``: the pre-crash window must be
reconstructable from the ring alone, with the docstore never opened.
"""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.docstore import DatastoreServer, DocumentStore, RemoteClient
from repro.docstore.locks import RWLock
from repro.errors import DocstoreError
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.obs import flight as flight_module
from repro.obs.flight import (
    CRASH_REPORT_FILE,
    KIND_DELTA,
    KIND_EVENT,
    KIND_FULL,
    SESSION_FILE,
    FlightRecorder,
    StallWatchdog,
    _RingWriter,
    apply_delta,
    build_crash_report,
    decode_ring,
    detect_unclean_shutdown,
    dict_delta,
    diff_window,
    enable_fault_handler,
    generate_crash_report,
    read_crash_report,
    scan_anomalies,
    set_flight_recorder,
    start_flight_recorder,
    stop_flight_recorder,
)
from repro.obs.health import ServerStatusSampler, format_stat_table
from repro.obs.procstats import process_status
from repro.obs.warehouse import TelemetryWarehouse


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = get_registry()
    set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture(autouse=True)
def no_global_recorder():
    """Each test starts and ends with no process-global flight recorder."""
    stop_flight_recorder()
    set_flight_recorder(None)
    yield
    stop_flight_recorder()
    set_flight_recorder(None)


@pytest.fixture
def store():
    s = DocumentStore()
    yield s
    s.close()


# -- delta codec ----------------------------------------------------------


class TestDeltaCodec:
    def test_roundtrip_nested_change(self):
        prev = {"a": {"b": 1, "c": 2}, "d": 3}
        cur = {"a": {"b": 5, "c": 2}, "d": 3}
        delta = dict_delta(prev, cur)
        assert delta == {"s": {"a": {"b": 5}}}
        assert apply_delta(prev, delta) == cur

    def test_removed_keys(self):
        prev = {"a": {"b": 1, "c": 2}, "gone": 9}
        cur = {"a": {"c": 2}}
        delta = dict_delta(prev, cur)
        assert sorted(delta["x"]) == [["a", "b"], ["gone"]]
        assert apply_delta(prev, delta) == cur

    def test_lists_replaced_wholesale(self):
        prev = {"xs": [1, 2, 3]}
        cur = {"xs": [1, 2, 3, 4]}
        delta = dict_delta(prev, cur)
        assert delta == {"s": {"xs": [1, 2, 3, 4]}}
        assert apply_delta(prev, delta) == cur

    def test_identical_snapshots_empty_delta(self):
        snap = {"a": {"b": 1}, "c": [1, 2]}
        assert dict_delta(snap, snap) == {}
        assert apply_delta(snap, {}) == snap

    def test_apply_does_not_mutate_base(self):
        base = {"a": {"b": 1}}
        apply_delta(base, {"s": {"a": {"b": 2}}})
        assert base == {"a": {"b": 1}}


# -- ring writer + decoder ------------------------------------------------


class TestRing:
    def test_roundtrip(self, tmp_path):
        w = _RingWriter(str(tmp_path))
        w.append(KIND_FULL, {"seq": 1, "v": {"x": 1}})
        w.append(KIND_DELTA, dict_delta({"seq": 1, "v": {"x": 1}},
                                        {"seq": 2, "v": {"x": 5}}))
        w.append(KIND_EVENT, {"type": "marker"})
        w.close()
        out = decode_ring(str(tmp_path))
        assert out["warnings"] == []
        assert [s["seq"] for s in out["snapshots"]] == [1, 2]
        assert out["snapshots"][1]["v"] == {"x": 5}
        assert out["events"][0]["type"] == "marker"

    def test_every_chunk_opens_with_keyframe(self, tmp_path):
        w = _RingWriter(str(tmp_path), chunk_records=3)
        prev = None
        for i in range(10):
            snap = {"seq": i, "x": i * i}
            if w.needs_keyframe() or prev is None:
                w.append(KIND_FULL, snap)
            else:
                w.append(KIND_DELTA, dict_delta(prev, snap))
            prev = snap
        w.close()
        chunks = flight_module._list_chunks(str(tmp_path))
        assert len(chunks) > 1
        for _, path in chunks:
            records = list(flight_module._iter_chunk_records(path, []))
            assert records[0][0] == KIND_FULL
        out = decode_ring(str(tmp_path))
        assert [s["seq"] for s in out["snapshots"]] == list(range(10))

    def test_eviction_keeps_newest(self, tmp_path):
        w = _RingWriter(str(tmp_path), max_bytes=2048, chunk_records=4)
        big = "y" * 200
        for i in range(40):
            w.append(KIND_FULL, {"seq": i, "pad": big + str(i)})
        w.close()
        chunks = flight_module._list_chunks(str(tmp_path))
        total = sum(os.path.getsize(p) for _, p in chunks)
        assert total < 40 * 200  # oldest chunks were evicted
        out = decode_ring(str(tmp_path))
        assert out["snapshots"], "newest records must survive eviction"
        assert out["snapshots"][-1]["seq"] == 39

    def test_new_writer_starts_fresh_chunk(self, tmp_path):
        w1 = _RingWriter(str(tmp_path))
        w1.append(KIND_FULL, {"seq": 1})
        w1.close()
        w2 = _RingWriter(str(tmp_path))
        w2.append(KIND_FULL, {"seq": 2})
        w2.close()
        assert len(flight_module._list_chunks(str(tmp_path))) == 2

    def test_decode_time_range_filter(self, tmp_path):
        w = _RingWriter(str(tmp_path))
        for i in range(5):
            w.append(KIND_FULL, {"seq": i, "ts": 100.0 + i}, ts=100.0 + i)
        w.close()
        out = decode_ring(str(tmp_path), since=101.5, until=103.5)
        assert [s["seq"] for s in out["snapshots"]] == [2, 3]


class TestDecoderRobustness:
    def _write_chunks(self, directory, n_chunks=3, per_chunk=4):
        w = _RingWriter(str(directory), chunk_records=per_chunk)
        seq = 0
        prev = None
        for _ in range(n_chunks * per_chunk):
            snap = {"seq": seq, "x": seq * 2}
            if w.needs_keyframe() or prev is None:
                w.append(KIND_FULL, snap)
            else:
                w.append(KIND_DELTA, dict_delta(prev, snap))
            prev = snap
            seq += 1
        w.close()
        return flight_module._list_chunks(str(directory))

    def test_truncated_final_chunk(self, tmp_path):
        chunks = self._write_chunks(tmp_path)
        last = chunks[-1][1]
        data = open(last, "rb").read()
        # Tear mid-record: keep the first record and half of the second.
        hdr = flight_module._HEADER
        _, _, _, _, length, _ = hdr.unpack_from(data, 0)
        first_end = hdr.size + length
        open(last, "wb").write(data[:first_end + hdr.size + 3])
        out = decode_ring(str(tmp_path))
        assert any("truncated" in w for w in out["warnings"])
        # Everything before the tear still decodes.
        assert out["snapshots"][-1]["seq"] == 8
        assert [s["seq"] for s in out["snapshots"]] == list(range(9))

    def test_crc_corrupt_middle_chunk_skips_and_continues(self, tmp_path):
        chunks = self._write_chunks(tmp_path)
        middle = chunks[1][1]
        data = bytearray(open(middle, "rb").read())
        hdr = flight_module._HEADER
        _, _, _, _, length, _ = hdr.unpack_from(data, 0)
        second = hdr.size + length  # corrupt the 2nd record's payload
        data[second + hdr.size] ^= 0xFF
        open(middle, "wb").write(bytes(data))
        out = decode_ring(str(tmp_path))
        assert any("CRC mismatch" in w for w in out["warnings"])
        seqs = [s["seq"] for s in out["snapshots"]]
        # Chunk 0 intact, chunk 1 only up to the corruption, chunk 2's
        # keyframe restarts the chain — decode continues past the damage.
        assert seqs[:4] == [0, 1, 2, 3]
        assert seqs[-4:] == [8, 9, 10, 11]
        assert 5 not in seqs

    def test_bad_magic_abandons_chunk(self, tmp_path):
        chunks = self._write_chunks(tmp_path, n_chunks=2)
        data = bytearray(open(chunks[0][1], "rb").read())
        data[0:2] = b"XX"
        open(chunks[0][1], "wb").write(bytes(data))
        out = decode_ring(str(tmp_path))
        assert any("bad magic" in w for w in out["warnings"])
        assert [s["seq"] for s in out["snapshots"]] == [4, 5, 6, 7]

    def test_empty_directory(self, tmp_path):
        out = decode_ring(str(tmp_path / "nope"))
        assert out == {"snapshots": [], "events": [], "warnings": [],
                       "chunks": 0, "records": 0}


# -- window analytics -----------------------------------------------------


class TestAnalytics:
    def test_diff_window(self):
        snaps = [
            {"ts": 1.0, "server": {"opcounters": {"insert": 10}}},
            {"ts": 2.0, "server": {"opcounters": {"insert": 25}}},
        ]
        out = diff_window(snaps)
        assert out["deltas"]["server.opcounters.insert"] == {
            "from": 10.0, "to": 25.0, "delta": 15.0}

    def test_diff_window_respects_bounds(self):
        snaps = [{"ts": float(i), "x": i} for i in range(10)]
        out = diff_window(snaps, t0=3.0, t1=6.0)
        assert out["snapshots"] == 4
        assert out["deltas"]["x"]["delta"] == 3.0

    def test_scan_anomalies_flags_spike(self):
        snaps = [{"ts": float(i), "gauge": 10.0} for i in range(20)]
        snaps[12]["gauge"] = 500.0
        found = scan_anomalies(snaps, threshold=6.0)
        assert found and found[0]["series"] == "gauge"
        assert found[0]["ts"] == 12.0

    def test_scan_anomalies_differences_counters(self):
        # Cumulative counter with one burst: only the burst interval is
        # anomalous, not every post-burst total.
        total, snaps = 0, []
        for i in range(30):
            total += 1000 if i == 20 else 5
            snaps.append({"ts": float(i), "n": total})
        found = scan_anomalies(snaps, threshold=6.0)
        assert [f["ts"] for f in found] == [20.0]

    def test_scan_anomalies_quiet_series(self):
        snaps = [{"ts": float(i), "x": 3.0} for i in range(20)]
        assert scan_anomalies(snaps) == []


# -- process stats --------------------------------------------------------


class TestProcStats:
    def test_proc_path(self):
        if not os.path.isdir("/proc/self"):
            pytest.skip("no /proc on this platform")
        stats = process_status()
        assert stats["source"] == "proc"
        assert stats["pid"] == os.getpid()
        assert stats["rss_bytes"] > 0
        assert stats["threads"] >= 1
        assert stats["open_fds"] >= 1

    def test_fallback_path(self):
        stats = process_status(proc_dir=None)
        assert stats["source"] == "fallback"
        assert stats["rss_bytes"] > 0
        assert stats["user_cpu_s"] >= 0.0

    def test_server_status_carries_process(self, store):
        status = store.server_status()
        assert status["process"]["pid"] == os.getpid()

    def test_mongostat_table_has_process_columns(self, store):
        sampler = ServerStatusSampler(store)
        sample = sampler.sample()
        assert sample["process"]["rss_bytes"] > 0
        table = format_stat_table([sample])
        header, row = table.splitlines()
        assert "rss_mb" in header and "thr" in header
        # Classic layout unchanged: opcounters stay in the lead columns.
        assert header.index("insert") < header.index("query")
        # No process section -> no trailing columns (old shape preserved).
        plain = format_stat_table([{k: v for k, v in sample.items()
                                    if k != "process"}])
        assert "rss_mb" not in plain


# -- the recorder ---------------------------------------------------------


class TestFlightRecorder:
    def test_capture_contents(self, tmp_path, store):
        store["mp"]["m"].insert_many([{"i": i} for i in range(5)])
        get_registry().counter("repro_test_ticks", "t").inc(3)
        rec = FlightRecorder(store, str(tmp_path))
        snap = rec.capture()
        assert snap["server"]["opcounters"]["insert"] >= 1
        assert "process" not in snap["server"]
        assert snap["process"]["rss_bytes"] > 0
        assert snap["metrics"]["repro_test_ticks{}"] == 3.0
        # Second tick: unchanged counters disappear from the deltas.
        snap2 = rec.capture()
        assert "repro_test_ticks{}" not in snap2["metrics"]
        rec.stop()

    def test_deltas_reconstruct_exactly(self, tmp_path, store):
        rec = FlightRecorder(store, str(tmp_path))
        expected = []
        for i in range(6):
            store["mp"]["m"].insert_one({"i": i})
            expected.append(rec.capture())
        rec.flush()
        out = decode_ring(str(tmp_path))
        assert out["warnings"] == []
        assert out["snapshots"] == expected
        rec.stop()

    def test_background_thread_and_session_marker(self, tmp_path, store):
        rec = FlightRecorder(store, str(tmp_path), interval_s=0.05)
        rec.start()
        assert rec.running
        marker = json.load(open(tmp_path / SESSION_FILE))
        assert marker["clean"] is False
        assert marker["pid"] == os.getpid()
        deadline = time.time() + 5.0
        while rec.status()["snapshots"] < 2 and time.time() < deadline:
            time.sleep(0.02)
        status = rec.stop()
        assert not rec.running
        assert status["snapshots"] >= 2
        marker = json.load(open(tmp_path / SESSION_FILE))
        assert marker["clean"] is True
        events = decode_ring(str(tmp_path))["events"]
        assert events[-1]["type"] == "shutdown"

    def test_recorder_survives_broken_server_status(self, tmp_path):
        class Wedged:
            def server_status(self):
                raise RuntimeError("wedged")

        rec = FlightRecorder(Wedged(), str(tmp_path))
        snap = rec.capture()
        assert "server" not in snap
        assert "wedged" in snap["server_error"]
        assert snap["process"]["rss_bytes"] > 0  # process stats still land
        rec.stop()

    def test_global_recorder_lifecycle(self, tmp_path, store):
        rec = start_flight_recorder(store, str(tmp_path), interval_s=5.0)
        assert flight_module.get_flight_recorder() is rec
        # Idempotent while running.
        assert start_flight_recorder(store, str(tmp_path)) is rec
        status = stop_flight_recorder()
        assert status["directory"] == str(tmp_path)

    def test_rejects_bad_interval(self, tmp_path, store):
        with pytest.raises(ValueError):
            FlightRecorder(store, str(tmp_path), interval_s=0)


# -- liveness probes ------------------------------------------------------


class TestTryAcquireRead:
    def test_uncontended(self):
        lock = RWLock()
        assert lock.try_acquire_read() is True
        lock.release_read()

    def test_blocked_by_foreign_writer(self):
        lock = RWLock()
        held, release = threading.Event(), threading.Event()

        def holder():
            lock.acquire_write()
            held.set()
            release.wait(5)
            lock.release_write()

        t = threading.Thread(target=holder)
        t.start()
        held.wait(5)
        assert lock.try_acquire_read(timeout=0.0) is False
        assert lock.try_acquire_read(timeout=0.05) is False
        release.set()
        t.join()
        assert lock.try_acquire_read(timeout=0.5) is True
        lock.release_read()

    def test_reentrant_under_own_write(self):
        lock = RWLock()
        lock.acquire_write()
        assert lock.try_acquire_read() is True  # rides the write depth
        lock.release_read()
        lock.release_write()

    def test_probe_does_not_record_contention(self):
        lock = RWLock(name="probe-target")
        held, release = threading.Event(), threading.Event()

        def holder():
            lock.acquire_write()
            held.set()
            release.wait(5)
            lock.release_write()

        t = threading.Thread(target=holder)
        t.start()
        held.wait(5)
        before_contended = dict(lock._contended)
        before_acquires = dict(lock._acquires)
        assert lock.try_acquire_read(timeout=0.0) is False
        release.set()
        t.join()
        # A failed probe leaves both the contention attribution and the
        # acquisition counters untouched.
        assert lock._contended == before_contended
        assert lock._acquires == before_acquires


class TestStallWatchdog:
    def _hold_write(self, lock):
        held, release = threading.Event(), threading.Event()

        def holder():
            lock.acquire_write()
            held.set()
            release.wait(10)
            lock.release_write()

        t = threading.Thread(target=holder)
        t.start()
        held.wait(5)
        return release, t

    def test_lock_stall_fires_once_and_rearms(self, tmp_path, store):
        store["mp"]["m"].insert_one({"i": 1})
        rec = FlightRecorder(store, str(tmp_path))
        sunk = []
        wd = StallWatchdog(rec, store=store, stall_timeout_s=0.05,
                           event_sink=sunk.append)
        release, t = self._hold_write(store["mp"]["m"]._lock)
        try:
            assert wd.check_once() == []  # first failure only arms
            time.sleep(0.1)
            events = wd.check_once()
            assert len(events) == 1
            assert events[0]["probe"] == "lock:mp.m"
            assert events[0]["stacks"], "stall must carry thread stacks"
            assert any("acquire_write" in s["stack"] or "holder" in s["stack"]
                       for s in events[0]["stacks"])
            assert wd.check_once() == []  # debounced while still stalled
        finally:
            release.set()
            t.join()
        assert wd.check_once() == []  # recovered
        # Fires again on a second episode.
        release2, t2 = self._hold_write(store["mp"]["m"]._lock)
        try:
            wd.check_once()
            time.sleep(0.1)
            assert len(wd.check_once()) == 1
        finally:
            release2.set()
            t2.join()
        assert wd.stalls_detected == 2
        # Counter carries the probe family as its label.
        metrics = {m["name"]: m for m in get_registry().collect()}
        series = metrics["repro_flight_stalls_total"]["series"]
        assert [(s["labels"], s["value"]) for s in series] == [
            ({"probe": "lock"}, 2)]
        # Events landed in the ring and in the sink.
        rec.flush()
        ring_events = decode_ring(str(tmp_path))["events"]
        assert [e["type"] for e in ring_events] == ["stall", "stall"]
        assert sunk[0]["type"] == "stall"
        rec.stop()

    def test_journal_heartbeat_in_stats(self, tmp_path):
        store = DocumentStore(persistence_dir=str(tmp_path / "data"))
        try:
            store["mp"]["m"].insert_one({"i": 1})
            deadline = time.time() + 5.0
            while time.time() < deadline:
                journal = store.server_status()["journal"]
                if journal.get("heartbeat_age_s") is not None:
                    break
                time.sleep(0.02)
            assert journal["heartbeat_age_s"] is not None
            assert journal["heartbeat_age_s"] < 60.0
        finally:
            store.close()

    def test_journal_stall_detection(self, tmp_path, store):
        class FakeJournalStore:
            def server_status(self):
                return {"journal": {"pending": 7, "heartbeat_age_s": 9.0}}

            def list_database_names(self):
                return []

        rec = FlightRecorder(None, str(tmp_path))
        wd = StallWatchdog(rec, store=FakeJournalStore(),
                           stall_timeout_s=5.0)
        events = wd.check_once()
        assert len(events) == 1
        assert events[0]["probe"] == "journal"
        assert "7 records pending" in events[0]["detail"]
        assert wd.check_once() == []  # debounced
        rec.stop()

    def test_wire_stall_detection(self, tmp_path, store):
        with DatastoreServer(store, port=0).start() as server:
            # Backdate a fake in-flight dispatch past the timeout.
            server._inflight[999] = ("find", time.monotonic() - 10.0)
            rec = FlightRecorder(None, str(tmp_path))
            wd = StallWatchdog(rec, store=None, wire_server=server,
                               stall_timeout_s=5.0)
            events = wd.check_once()
            assert len(events) == 1
            assert events[0]["probe"] == "wire"
            assert "'find'" in events[0]["detail"]
            server._inflight.clear()
            assert wd.check_once() == []
            rec.stop()

    def test_daemon_lifecycle(self, tmp_path, store):
        wd = StallWatchdog(None, store=store, interval_s=0.05,
                           stall_timeout_s=10.0)
        wd.start()
        assert wd.running
        wd.stop()
        assert not wd.running


# -- changestream backlog accounting --------------------------------------


class TestChangestreamAccounting:
    def test_dropped_counter_and_backlog_gauge(self, store):
        coll = store["mp"]["m"]
        stream = coll.watch(max_buffer=5)
        for i in range(9):
            coll.insert_one({"i": i})
        assert stream.dropped == 4
        metrics = {m["name"]: m for m in get_registry().collect()}
        dropped = metrics["repro_changestream_dropped_total"]["series"]
        assert [(s["labels"]["ns"], s["value"]) for s in dropped] == [
            ("m", 4)]
        backlog = metrics["repro_changestream_backlog"]["series"]
        assert [(s["labels"]["ns"], s["value"]) for s in backlog] == [
            ("m", 5)]
        # Overflow semantics preserved: next drain raises, then recovers.
        with pytest.raises(DocstoreError):
            stream.drain()
        coll.insert_one({"i": 99})
        assert len(stream.drain()) == 1
        # Gauge tracks the drain back down.
        metrics = {m["name"]: m for m in get_registry().collect()}
        backlog = metrics["repro_changestream_backlog"]["series"]
        assert backlog[0]["value"] == 0
        stream.close()


# -- wire op, RemoteClient, and the debug endpoint ------------------------


class TestFlightSurfaces:
    def test_wire_flight_op(self, tmp_path, store):
        store["mp"]["m"].insert_one({"i": 1})
        with DatastoreServer(store, port=0).start() as server:
            with RemoteClient(*server.address) as client:
                # No recorder yet: status degrades gracefully, the rest 4xx.
                assert client.flight() == {"attached": False,
                                           "running": False}
                with pytest.raises(DocstoreError):
                    client.flight("window")
                rec = start_flight_recorder(store, str(tmp_path),
                                            interval_s=60.0)
                rec.capture()
                rec.capture()
                status = client.flight()
                assert status["attached"] is True or status["running"]
                assert status["snapshots"] == 2
                window = client.flight("window", limit=1)
                assert len(window["snapshots"]) == 1
                assert window["snapshots"][0]["seq"] == 2
                rec.record_event("stall", {"probe": "lock:mp.m"})
                events = client.flight("events")
                assert events["events"][-1]["type"] == "stall"
                anomalies = client.flight("anomalies", threshold=3.0)
                assert "anomalies" in anomalies
                crash = client.flight("crash")
                assert crash == {"crash_report": None}
                with pytest.raises(DocstoreError):
                    client.flight("bogus")

    def test_debug_flight_endpoint(self, tmp_path, store):
        from repro.api import MaterialsAPI, MaterialsAPIServer, QueryEngine

        def _get(url):
            try:
                with urllib.request.urlopen(url) as resp:
                    return resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                return exc.code, json.loads(exc.read())

        api = MaterialsAPI(QueryEngine(store["mp"]))
        with MaterialsAPIServer(api) as server:
            code, doc = _get(server.base_url + "/debug/flight")
            assert code == 200 and doc["attached"] is False
            rec = start_flight_recorder(store, str(tmp_path),
                                        interval_s=60.0)
            rec.capture()
            code, doc = _get(server.base_url + "/debug/flight?window=5")
            assert code == 200
            assert doc["attached"] is True
            assert doc["snapshots"][0]["seq"] == 1
            rec.record_event("stall", {"probe": "journal"})
            code, doc = _get(server.base_url + "/debug/flight?events=1")
            assert doc["events"][-1]["type"] == "stall"
            code, doc = _get(server.base_url + "/debug/flight?anomalies=1")
            assert code == 200 and "anomalies" in doc

    def test_warehouse_ingestion(self, tmp_path, store):
        warehouse = TelemetryWarehouse(store)
        warehouse.record_flight_event({
            "type": "stall", "probe": "lock:mp.m",
            "stacks": [{"thread": f"t{i}", "stack": "f"} for i in range(50)],
        })
        warehouse.record_flight_event({"type": "crash", "session": {"pid": 1}})
        events = warehouse.flight_events()
        assert [e["type"] for e in events] == ["stall", "crash"]
        assert len(events[0]["stacks"]) == 32  # capped
        assert events[0]["stacks_truncated"] == 18
        assert warehouse.flight_events(event_type="crash")[0]["type"] == "crash"
        assert warehouse.stats()["events"] == 2
        metrics = {m["name"]: m for m in get_registry().collect()}
        series = metrics["repro_warehouse_flight_events_total"]["series"]
        assert {s["labels"]["type"]: s["value"] for s in series} == {
            "stall": 1, "crash": 1}


# -- crash forensics ------------------------------------------------------


class TestCrashForensics:
    def _dirty_marker(self, directory):
        """Rewrite the session marker as if another (dead) process owned
        it — the detector ignores markers belonging to the live pid."""
        path = os.path.join(str(directory), SESSION_FILE)
        marker = json.load(open(path))
        marker["pid"] = 1
        json.dump(marker, open(path, "w"))

    def test_fault_handler_enabled(self, tmp_path):
        path = enable_fault_handler(str(tmp_path))
        assert path == str(tmp_path / "faulthandler.log")
        import faulthandler

        assert faulthandler.is_enabled()

    def test_clean_shutdown_not_flagged(self, tmp_path, store):
        rec = FlightRecorder(store, str(tmp_path))
        rec.start()
        rec.stop()
        assert detect_unclean_shutdown(str(tmp_path)) is None
        assert generate_crash_report(str(tmp_path)) is None

    def test_own_pid_not_flagged(self, tmp_path, store):
        rec = FlightRecorder(store, str(tmp_path))
        rec.start()  # dirty marker, but it is *our* live session
        assert detect_unclean_shutdown(str(tmp_path)) is None
        rec.stop()

    def test_generate_and_acknowledge(self, tmp_path, store):
        store["mp"]["m"].insert_many([{"i": i} for i in range(10)])
        rec = FlightRecorder(store, str(tmp_path))
        rec.start()
        for _ in range(3):
            rec.capture()
        rec._write_session(clean=False)  # simulate dying dirty
        rec._stop_event.set()
        rec._thread = None
        rec.flush()
        self._dirty_marker(tmp_path)

        report = generate_crash_report(
            str(tmp_path), journal_recovery={"replayed": 10})
        assert report is not None
        assert report["journal_recovery"] == {"replayed": 10}
        assert report["final"]["opcounters"]["insert"] >= 10
        assert report["final"]["seq"] >= 3
        persisted = read_crash_report(str(tmp_path))
        assert persisted["session"]["pid"] == 1
        assert persisted["journal_recovery"] == {"replayed": 10}
        # Marker acknowledged: a second startup does not re-report.
        assert detect_unclean_shutdown(str(tmp_path)) is None
        assert generate_crash_report(str(tmp_path)) is None

    def test_build_report_never_opens_docstore(self, tmp_path, monkeypatch):
        w = _RingWriter(str(tmp_path))
        w.append(KIND_FULL, {
            "seq": 1, "ts": time.time(),
            "server": {"opcounters": {"insert": 4}},
        })
        w.close()

        def boom(*args, **kwargs):
            raise AssertionError("docstore must not be opened")

        monkeypatch.setattr(DocumentStore, "__init__", boom)
        report = build_crash_report(str(tmp_path))
        assert report["final"]["opcounters"] == {"insert": 4}


_FLIGHT_CRASH_CHILD = """\
import os, sys, threading, time
from repro.docstore import DocumentStore
from repro.obs.flight import FlightRecorder, enable_fault_handler

data_dir, flight_dir = sys.argv[1], sys.argv[2]
store = DocumentStore(persistence_dir=data_dir, fsync="always")
enable_fault_handler(flight_dir)
rec = FlightRecorder(store, flight_dir, interval_s=0.05)
rec.start()
coll = store["mp"]["m"]
for i in range(200):
    coll.insert_one({"i": i, "a": i, "b": -i})
    if i and i % 25 == 0:
        rec.capture()   # guarantee snapshots even on a slow box
        rec.flush()
os._exit(137)  # power loss: no stop(), no atexit, marker stays dirty
"""


class TestCrashSubprocess:
    @pytest.fixture
    def crashed(self, tmp_path):
        """Run the child to its os._exit mid-write-load."""
        script = tmp_path / "crash_child.py"
        script.write_text(_FLIGHT_CRASH_CHILD)
        data_dir = tmp_path / "data"
        flight_dir = tmp_path / "flight"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), str(data_dir), str(flight_dir)],
            env=env, timeout=120, capture_output=True, text=True,
        )
        assert proc.returncode == 137, proc.stderr
        return data_dir, flight_dir

    def test_diagnose_crash_from_ring_alone(self, crashed, monkeypatch,
                                            capsys):
        _, flight_dir = crashed
        marker = json.load(open(flight_dir / SESSION_FILE))
        assert marker["clean"] is False

        def boom(*args, **kwargs):
            raise AssertionError("diagnose must not open the docstore")

        monkeypatch.setattr("repro.cli.DocumentStore", boom)
        monkeypatch.setattr(DocumentStore, "__init__", boom)
        rc = main(["diagnose", "--flight-dir", str(flight_dir),
                   "--crash", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        final = report["final"]
        assert final["opcounters"]["insert"] >= 25
        assert final["process"]["pid"] != os.getpid()
        assert final["journal"] is not None
        assert report["session"]["clean"] is False
        assert report["snapshots_in_window"] >= 1
        deltas = report["window_delta"]["deltas"]
        assert deltas["server.opcounters.insert"]["delta"] > 0

    def test_startup_report_correlates_journal_recovery(self, crashed):
        data_dir, flight_dir = crashed
        store = DocumentStore(persistence_dir=str(data_dir))
        try:
            recovery = store.last_recovery
            assert recovery is not None
            report = generate_crash_report(str(flight_dir),
                                           journal_recovery=recovery)
        finally:
            store.close()
        assert report is not None
        assert report["journal_recovery"] == recovery
        on_disk = json.load(open(flight_dir / CRASH_REPORT_FILE))
        assert on_disk["journal_recovery"] == recovery
        assert on_disk["final"]["opcounters"]["insert"] >= 25
        # Acked writes actually survived — the report and the store agree.
        assert store["mp"]["m"] is not None


# -- the diagnose CLI ------------------------------------------------------


class TestDiagnoseCLI:
    @pytest.fixture
    def ring(self, tmp_path, store):
        store["mp"]["m"].insert_one({"i": 0})
        rec = FlightRecorder(store, str(tmp_path))
        base = time.time()
        for i in range(12):
            store["mp"]["m"].insert_one({"i": i})
            rec.capture(now=base + i)
        rec.record_event("stall", {"probe": "lock:mp.m"})
        rec.flush()
        rec._writer.close()
        return tmp_path, base

    def test_summary(self, ring, capsys):
        directory, _ = ring
        rc = main(["diagnose", "--flight-dir", str(directory)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "12 snapshots" in out
        assert "event: stall" in out

    def test_window_json(self, ring, capsys):
        directory, _ = ring
        rc = main(["diagnose", "--flight-dir", str(directory),
                   "--window", "3", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["snapshots"] == 12
        assert [s["seq"] for s in doc["window"]] == [10, 11, 12]

    def test_diff(self, ring, capsys):
        directory, base = ring
        rc = main(["diagnose", "--flight-dir", str(directory), "--json",
                   "--diff", str(base), str(base + 11)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["deltas"]["server.opcounters.insert"]["delta"] == 11.0

    def test_anomalies(self, ring, capsys):
        directory, _ = ring
        rc = main(["diagnose", "--flight-dir", str(directory),
                   "--anomalies", "--threshold", "3.5", "--json"])
        assert rc == 0
        json.loads(capsys.readouterr().out)  # valid JSON list

    def test_empty_ring(self, tmp_path, capsys):
        rc = main(["diagnose", "--flight-dir", str(tmp_path / "missing")])
        assert rc == 0
        assert "0 chunks" in capsys.readouterr().out

    def test_crash_over_missing_report(self, tmp_path, capsys):
        rc = main(["diagnose", "--flight-dir", str(tmp_path),
                   "--crash", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["snapshots_total"] == 0
