"""Differential property test: compiled matcher vs. a reference evaluator.

We implement an independent, deliberately naive evaluator for a restricted
query grammar (bare equality, $eq/$ne/$gt/$gte/$lt/$lte/$in/$nin/$exists on
flat fields, plus one level of $and/$or) and hypothesis-check that
``compile_query`` agrees with it on random documents.  Divergence means one
of the two implementations misreads Mongo semantics — historically this
class of test is what caught the ``$ne: null`` missing-field bug.
"""

from typing import Any, Dict

from hypothesis import given, settings, strategies as st

from repro.docstore import compile_query

FIELDS = ["a", "b", "c"]

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-5, 5),
    st.sampled_from(["x", "y", "z"]),
)

documents = st.dictionaries(
    st.sampled_from(FIELDS),
    st.one_of(scalars, st.lists(scalars, max_size=3)),
    max_size=3,
)

MISSING = object()


def _type_class(v: Any) -> str:
    if v is None or v is MISSING:
        return "null"
    if isinstance(v, bool):
        return "bool"
    if isinstance(v, (int, float)):
        return "number"
    if isinstance(v, str):
        return "string"
    if isinstance(v, list):
        return "array"
    return "other"


def _eq(a: Any, b: Any) -> bool:
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    if _type_class(a) != _type_class(b):
        return False
    return a == b


def _candidates(doc: Dict[str, Any], field: str):
    """Value + array elements, or [] when the field is missing."""
    if field not in doc:
        return []
    value = doc[field]
    out = [value]
    if isinstance(value, list):
        out.extend(value)
    return out


def _ref_field(doc: Dict[str, Any], field: str, cond: Any) -> bool:
    present = field in doc
    cands = _candidates(doc, field)
    if not (isinstance(cond, dict) and cond and
            all(isinstance(k, str) and k.startswith("$") for k in cond)):
        # Bare equality; null also matches a missing field.
        if cond is None and not present:
            return True
        return any(_eq(v, cond) for v in cands)

    for op, operand in cond.items():
        if op == "$eq":
            ok = any(_eq(v, operand) for v in cands)
        elif op == "$ne":
            ok = not any(_eq(v, operand) for v in cands)
            if operand is None and not present:
                ok = False
        elif op in ("$gt", "$gte", "$lt", "$lte"):
            def cmp(v):
                if _type_class(v) != _type_class(operand):
                    return False
                if _type_class(v) not in ("number", "string"):
                    return False
                if isinstance(v, bool) or isinstance(operand, bool):
                    return False
                try:
                    if op == "$gt":
                        return v > operand
                    if op == "$gte":
                        return v >= operand
                    if op == "$lt":
                        return v < operand
                    return v <= operand
                except TypeError:
                    return False

            ok = any(cmp(v) for v in cands)
        elif op == "$in":
            ok = any(any(_eq(v, m) for m in operand) for v in cands)
        elif op == "$nin":
            ok = not any(any(_eq(v, m) for m in operand) for v in cands)
            if any(m is None for m in operand) and not present:
                ok = False
        elif op == "$exists":
            ok = present is bool(operand)
        else:  # pragma: no cover
            raise AssertionError(f"grammar violation {op}")
        if not ok:
            return False
    return True


def _ref_match(doc: Dict[str, Any], query: Dict[str, Any]) -> bool:
    for key, cond in query.items():
        if key == "$and":
            if not all(_ref_match(doc, sub) for sub in cond):
                return False
        elif key == "$or":
            if not any(_ref_match(doc, sub) for sub in cond):
                return False
        else:
            if not _ref_field(doc, key, cond):
                return False
    return True


# -- query grammar strategies ------------------------------------------------

comparable = st.one_of(st.integers(-5, 5), st.sampled_from(["x", "y", "z"]))

field_conditions = st.one_of(
    scalars,  # bare equality
    st.fixed_dictionaries({"$eq": scalars}),
    st.fixed_dictionaries({"$ne": scalars}),
    st.fixed_dictionaries({"$gt": comparable}),
    st.fixed_dictionaries({"$gte": comparable}),
    st.fixed_dictionaries({"$lt": comparable}),
    st.fixed_dictionaries({"$lte": comparable}),
    st.fixed_dictionaries({"$in": st.lists(scalars, min_size=1, max_size=3)}),
    st.fixed_dictionaries({"$nin": st.lists(scalars, min_size=1, max_size=3)}),
    st.fixed_dictionaries({"$exists": st.booleans()}),
)

flat_queries = st.dictionaries(
    st.sampled_from(FIELDS), field_conditions, max_size=3
)

queries = st.one_of(
    flat_queries,
    st.fixed_dictionaries(
        {"$and": st.lists(flat_queries, min_size=1, max_size=2)}
    ),
    st.fixed_dictionaries(
        {"$or": st.lists(flat_queries, min_size=1, max_size=2)}
    ),
)


class TestMatcherAgainstReference:
    @given(doc=documents, query=queries)
    @settings(max_examples=600, deadline=None)
    def test_agreement(self, doc, query):
        expected = _ref_match(doc, query)
        actual = compile_query(query).matches(doc)
        assert actual == expected, (
            f"divergence on doc={doc!r} query={query!r}: "
            f"matcher={actual} reference={expected}"
        )

    @given(docs=st.lists(documents, max_size=12), query=queries)
    @settings(max_examples=200, deadline=None)
    def test_collection_find_agreement(self, docs, query):
        """The same agreement through the full Collection.find path."""
        from repro.docstore import Collection

        coll = Collection("ref")
        for i, doc in enumerate(docs):
            coll.insert_one({**doc, "_id": i})
        got = {d["_id"] for d in coll.find(query)}
        want = {i for i, doc in enumerate(docs) if _ref_match(doc, query)}
        assert got == want
