"""End-to-end integration tests: the whole paper pipeline in one process.

These are the slowest tests in the suite; they wire every subsystem
together the way the benchmarks do, and additionally cross layers the
benches don't (persistence under the workflow engine, replica-set-backed
web reads, the proxy in the execution path).
"""

import threading

import pytest

from repro.api import MaterialsAPI, MPRester, QueryEngine
from repro.builders import (
    BandStructureBuilder,
    BatteryBuilder,
    MaterialsBuilder,
    PhaseDiagramBuilder,
    TaskLoader,
    VnVRunner,
    XRDBuilder,
)
from repro.datagen import SyntheticICSD, elemental_references
from repro.docstore import DocumentStore, ReplicaSet
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.matgen import mps_from_structure

ROBUST_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500}


def _populate(db, n=15, seed=42):
    structures = SyntheticICSD(seed=seed).structures(n)
    elements = sorted({el for s in structures for el in s.elements})
    structures += elemental_references(elements)
    seen, unique = set(), []
    for s in structures:
        if s.structure_hash() not in seen:
            seen.add(s.structure_hash())
            unique.append(s)
    records = [mps_from_structure(s) for s in unique]
    db["mps"].insert_many(records)
    launchpad = LaunchPad(db)
    launchpad.add_workflow(Workflow([
        vasp_firework(s, mps_id=r["mps_id"], incar=dict(ROBUST_INCAR),
                      walltime_s=1e9, memory_mb=1e6)
        for s, r in zip(unique, records)
    ]))
    Rocket(launchpad).rapidfire()
    MaterialsBuilder(db).run()
    return launchpad, unique


class TestFullPipeline:
    def test_icsd_to_api(self):
        """inputs → workflow → builders → REST answer, all consistent."""
        db = DocumentStore()["mp"]
        launchpad, structures = _populate(db)
        PhaseDiagramBuilder(db).run()
        XRDBuilder(db).run()
        BandStructureBuilder(db).run()

        n = db["materials"].count_documents()
        assert n == len(structures)
        assert db["xrd"].count_documents() == n
        assert db["bandstructures"].count_documents() == n

        # Every material resolves through the API and carries a hull tag.
        client = MPRester(router=MaterialsAPI(QueryEngine(db)))
        for doc in db["materials"].find({}).limit(5):
            material = client.get_material(doc["material_id"])
            assert material["energy"] == pytest.approx(doc["energy"])
            assert "e_above_hull" in doc

        # V&V sweeps clean on a freshly built database.
        report = VnVRunner(db).run_all()
        assert report["clean"], report["violations"]

    def test_pipeline_survives_crash_and_recovery(self, tmp_path):
        """Workflow state + results persist across a simulated crash."""
        store = DocumentStore(persistence_dir=str(tmp_path / "dbdir"))
        db = store["mp"]
        _populate(db, n=6)
        before = {
            "tasks": db["tasks"].count_documents({"state": "COMPLETED"}),
            "materials": db["materials"].count_documents(),
        }
        del store, db  # crash: no snapshot, journal only

        recovered_store = DocumentStore(persistence_dir=str(tmp_path / "dbdir"))
        db = recovered_store["mp"]
        assert db["tasks"].count_documents({"state": "COMPLETED"}) == before["tasks"]
        assert db["materials"].count_documents() == before["materials"]
        # And the recovered store keeps working: resubmission dedups.
        launchpad = LaunchPad(db)
        structures = SyntheticICSD(seed=42).structures(6)
        result = launchpad.add_workflow(Workflow([
            vasp_firework(s, incar=dict(ROBUST_INCAR), walltime_s=1e9,
                          memory_mb=1e6)
            for s in structures
        ]))
        assert result["duplicates"] == 6

    def test_replica_set_serves_web_reads(self):
        """Writes on the primary; web traffic on replicated secondaries."""
        rs = ReplicaSet("mp-rs", n_secondaries=2)
        _populate(rs.primary, n=8)
        rs.replicate()
        primary_count = rs.primary["materials"].count_documents()
        for node in rs.secondaries:
            assert node.database["materials"].count_documents() == primary_count
        # The web stack reads from a secondary.
        qe = QueryEngine(rs.read_database("secondary"))
        docs = qe.query({}, limit=5)
        assert docs
        # Failover: promote a secondary, keep serving.
        rs.step_down()
        qe2 = QueryEngine(rs.primary)
        assert qe2.count({}) == primary_count

    def test_run_directories_to_store_via_loader(self, tmp_path):
        """The §IV-C1 path: run dirs on 'disk' → incremental load → build."""
        from repro.dft import FakeVASP, Resources, SCFParameters

        db = DocumentStore()["mp"]
        structures = SyntheticICSD(seed=9).structures(4)
        for i, s in enumerate(structures):
            FakeVASP().run(
                s, SCFParameters(amix=0.15, algo="All", nelm=500),
                Resources(walltime_s=1e9, memory_mb=1e6),
                run_dir=str(tmp_path / f"block-0/run-{i}"),
            )
        loader = TaskLoader(db)
        stats = loader.load_tree(str(tmp_path))
        assert stats["loaded"] == 4
        # Attach mps ids (the loader path stores raw task docs).
        for doc, s in zip(db["tasks"].find({}).sort("run_dir", 1), structures):
            db["tasks"].update_one(
                {"_id": doc["_id"]},
                {"$set": {"mps_id": f"mps-{s.structure_hash()[:12]}",
                          "formula": s.reduced_formula,
                          "elements": s.elements}},
            )
        built = MaterialsBuilder(db).run()
        assert built["materials_built"] == 4

    def test_concurrent_rockets_share_queue(self):
        """Several launcher threads drain one LaunchPad without overlap."""
        db = DocumentStore()["mp"]
        launchpad = LaunchPad(db)
        structures = SyntheticICSD(seed=13).structures(24)
        launchpad.add_workflow(Workflow([
            vasp_firework(s, incar=dict(ROBUST_INCAR), walltime_s=1e9,
                          memory_mb=1e6)
            for s in structures
        ]))
        counts = []
        lock = threading.Lock()

        def worker(name):
            rocket = Rocket(launchpad, worker_name=name)
            n = rocket.rapidfire()
            with lock:
                counts.append(n)

        threads = [threading.Thread(target=worker, args=(f"w{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(counts) == 24  # every job executed exactly once
        assert launchpad.tasks.count_documents({"state": "COMPLETED"}) == 24

    def test_execution_through_proxy_wire(self):
        """A worker on the far side of the proxy drives the whole loop."""
        from repro.docstore import DatastoreProxy, DatastoreServer

        store = DocumentStore()
        with DatastoreServer(store) as server:
            with DatastoreProxy("127.0.0.1", server.port) as proxy:
                with proxy.client() as client:
                    remote = client["mp"]["engines"]
                    remote.insert_one(
                        {"fw_id": 1, "state": "READY", "spec": {"n": 1}}
                    )
                    claimed = remote.find_one_and_update(
                        {"state": "READY"},
                        {"$set": {"state": "RUNNING"}},
                        return_document="after",
                    )
                    assert claimed["state"] == "RUNNING"
                    remote.update_one(
                        {"fw_id": 1},
                        {"$set": {"state": "COMPLETED", "energy": -3.2}},
                    )
        # The server-side store saw everything the proxy relayed.
        doc = store["mp"]["engines"].find_one({"fw_id": 1})
        assert doc["state"] == "COMPLETED"
        assert proxy.stats()["requests_forwarded"] >= 3


class TestWorkflowCrashResume:
    def test_workflow_resumes_after_crash(self, tmp_path):
        """Half-run a workflow, crash the process, recover, finish.

        The engines collection (with serialized Fuse/Analyzer/Binder specs)
        must round-trip through the journal so a fresh Rocket on the
        recovered store completes the remaining jobs.
        """
        d = str(tmp_path / "prod")
        store = DocumentStore(persistence_dir=d)
        db = store["mp"]
        launchpad = LaunchPad(db)
        structures = SyntheticICSD(seed=77).structures(6)
        wf = Workflow([
            vasp_firework(s, incar=dict(ROBUST_INCAR), walltime_s=1e9,
                          memory_mb=1e6)
            for s in structures
        ])
        launchpad.add_workflow(wf)
        rocket = Rocket(launchpad)
        for _ in range(3):  # run only half the queue
            rocket.launch()
        assert launchpad.tasks.count_documents({"state": "COMPLETED"}) == 3
        workflow_id = wf.workflow_id
        del store, db, launchpad, rocket  # crash: journal only, no snapshot

        recovered = DocumentStore(persistence_dir=d)
        launchpad2 = LaunchPad(recovered["mp"])
        # Three jobs still READY; their component specs must deserialize.
        remaining = Rocket(launchpad2).rapidfire()
        assert remaining == 3
        assert launchpad2.workflow_complete(workflow_id)
        assert launchpad2.tasks.count_documents({"state": "COMPLETED"}) == 6

    def test_running_job_from_crashed_worker_can_be_recovered(self, tmp_path):
        """A job stuck RUNNING after a worker crash is manually re-queued
        (the operator action the paper's manual-intervention flow implies)."""
        d = str(tmp_path / "prod")
        store = DocumentStore(persistence_dir=d)
        launchpad = LaunchPad(store["mp"])
        s = SyntheticICSD(seed=78).structures(1)[0]
        fw = vasp_firework(s, incar=dict(ROBUST_INCAR), walltime_s=1e9,
                           memory_mb=1e6)
        launchpad.add_workflow(Workflow([fw]))
        # Simulate a worker that claimed the job and died mid-run.
        claimed = launchpad.checkout_firework(worker="doomed-worker")
        assert claimed["state"] == "RUNNING"
        del store, launchpad

        recovered = DocumentStore(persistence_dir=d)
        launchpad2 = LaunchPad(recovered["mp"])
        stuck = launchpad2.engines.find_one({"state": "RUNNING"})
        assert stuck["worker"] == "doomed-worker"
        # Operator action: requeue the orphaned job.
        launchpad2.engines.update_one(
            {"fw_id": stuck["fw_id"]}, {"$set": {"state": "READY"}}
        )
        assert Rocket(launchpad2).rapidfire() == 1
        assert launchpad2.fw_state(stuck["fw_id"]) == "COMPLETED"
