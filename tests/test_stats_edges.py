"""Tests for analysis.stats plus an edge-case sweep over thin spots."""

import math

import pytest

from repro.analysis import database_census, describe, histogram
from repro.docstore import Collection, DocumentStore
from repro.errors import QuerySyntaxError, ReplicationError


class TestDescribeHistogram:
    def test_describe_basic(self):
        d = describe([1.0, 2.0, 3.0, 4.0])
        assert d["n"] == 4
        assert d["mean"] == 2.5
        assert d["min"] == 1.0 and d["max"] == 4.0
        assert d["std"] == pytest.approx(math.sqrt(1.25))

    def test_describe_filters_none_and_nan(self):
        d = describe([1.0, None, float("nan"), 3.0])
        assert d["n"] == 2

    def test_describe_empty(self):
        assert describe([]) == {"n": 0}
        assert describe([None]) == {"n": 0}

    def test_histogram_covers_range(self):
        rows = histogram([0.0, 1.0, 2.0, 9.9], n_bins=10, lo=0, hi=10)
        assert len(rows) == 10
        assert sum(count for _lo, _hi, count in rows) == 4
        assert rows[0][2] == 1  # 0.0; 1.0 lands in the next bin
        assert rows[1][2] == 1

    def test_histogram_clamps_outliers(self):
        rows = histogram([-5.0, 15.0], n_bins=2, lo=0, hi=10)
        assert rows[0][2] == 1 and rows[-1][2] == 1

    def test_histogram_degenerate_range(self):
        rows = histogram([2.0, 2.0, 2.0])
        assert rows == [(2.0, 2.0, 3)]

    def test_histogram_empty(self):
        assert histogram([]) == []


class TestDatabaseCensus:
    def test_census_over_pipeline_db(self):
        from tests.test_builders import _insert_task
        from repro.builders import (
            BatteryBuilder, MaterialsBuilder, PhaseDiagramBuilder,
        )
        from repro.matgen import make_prototype

        db = DocumentStore()["mp"]
        for mid, s in {
            "mps-nacl": make_prototype("rocksalt", ["Na", "Cl"]),
            "mps-lifepo4": make_prototype("olivine", ["Li", "Fe"]),
            "mps-fepo4": make_prototype("olivine", ["Li", "Fe"]
                                        ).remove_species(["Li"]),
            "mps-fe": make_prototype("bcc", ["Fe"]),
        }.items():
            _insert_task(db, s, mid)
        MaterialsBuilder(db).run()
        PhaseDiagramBuilder(db).run()
        BatteryBuilder(db, "Li").run_intercalation()

        census = database_census(db)
        assert census["collections"]["materials"] == 4
        assert census["formation_energy"]["n"] == 4
        assert census["n_stable"] >= 1
        assert census["element_coverage"]["n_elements"] >= 5
        assert census["battery_voltage"]["n"] == 1
        assert 1 in census["nelements_distribution"]

    def test_census_empty_db(self):
        census = database_census(DocumentStore()["empty"])
        # The census touches `materials` (lazily created, empty); no
        # property sections appear for an empty deployment.
        assert census["collections"].get("materials", 0) == 0
        assert "formation_energy" not in census
        assert "battery_voltage" not in census


class TestThinSpots:
    """Edge cases in modules with lighter coverage elsewhere."""

    def test_cursor_first_respects_existing_limit(self):
        coll = Collection("c")
        coll.insert_many([{"n": i} for i in range(5)])
        cursor = coll.find().sort("n", -1).limit(3)
        assert cursor.first()["n"] == 4

    def test_cursor_batch_size_is_cosmetic(self):
        coll = Collection("c")
        coll.insert_many([{} for _ in range(5)])
        assert len(coll.find().batch_size(2).to_list()) == 5

    def test_aggregate_sample_without_seed(self):
        coll = Collection("c")
        coll.insert_many([{"i": i} for i in range(20)])
        rows = coll.aggregate([{"$sample": {"size": 5}}])
        assert len(rows) == 5

    def test_lookup_requires_database(self):
        coll = Collection("orphan")  # not attached to a Database
        coll.insert_one({"k": 1})
        with pytest.raises(QuerySyntaxError):
            coll.aggregate([{"$lookup": {"from": "x", "localField": "k",
                                          "foreignField": "k", "as": "xs"}}])

    def test_lookup_field_validation(self):
        db = DocumentStore()["mp"]
        db["a"].insert_one({})
        with pytest.raises(QuerySyntaxError):
            db["a"].aggregate([{"$lookup": {"from": "b"}}])

    def test_oplog_truncation_forces_resync(self):
        from repro.docstore import Oplog

        log = Oplog(max_entries=3)
        for i in range(6):
            log.append("db", "insert", {"ns": "c", "doc": {"_id": i}})
        with pytest.raises(ReplicationError):
            log.entries_after(0)  # history before the window is gone
        assert len(log.entries_after(log.last_optime - 1)) == 1

    def test_wire_protocol_stats_and_databases(self):
        from repro.docstore import DatastoreServer, DocumentStore, RemoteClient

        with DatastoreServer(DocumentStore()) as server:
            with RemoteClient("127.0.0.1", server.port) as client:
                client["mp"]["c"].insert_one({"x": 1})
                stats = client["mp"]["c"].stats()
                assert stats["count"] == 1
                assert client.request({"op": "list_databases"}) == ["mp"]

    def test_taskfarm_walltime_safety_factor(self):
        """The farm requests makespan x safety, so it never walltime-kills
        itself on its own estimate."""
        from repro.hpc import BatchQueue, Cluster, FarmTask, TaskFarm

        tasks = [FarmTask(f"t{i}", 100 + i) for i in range(8)]
        farm = TaskFarm(tasks, n_slots=2, safety_factor=1.5)
        job = farm.as_batch_job()
        assert job.walltime_request_s == pytest.approx(farm.makespan_s * 1.5)
        q = BatchQueue(Cluster.build(n_compute=2), max_queued_per_user=5)
        q.submit(job)
        q.run_until_idle()
        assert job.state == "COMPLETED"

    def test_custom_kpath_band_structure(self):
        from repro.matgen import KPath, compute_band_structure, make_prototype

        path = KPath([("Γ", (0, 0, 0)), ("X", (0.5, 0, 0))],
                     points_per_segment=5)
        bs = compute_band_structure(
            make_prototype("rocksalt", ["Na", "Cl"]), kpath=path
        )
        assert bs.bands.shape[1] == 6
        assert bs.labels[0] == "Γ" and bs.labels[-1] == "X"

    def test_packing_term_penalizes_wrong_volumes(self):
        """Compressing or inflating a crystal must raise its energy."""
        from repro.dft import total_energy
        from repro.matgen import make_prototype

        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        e0 = total_energy(nacl) / nacl.num_sites
        squeezed = nacl.scale_volume(nacl.volume * 0.6)
        inflated = nacl.scale_volume(nacl.volume * 1.8)
        assert total_energy(squeezed) / 8 > e0
        assert total_energy(inflated) / 8 > e0

    def test_queryengine_nested_logical_sanitization(self):
        from repro.api import QueryEngine
        from repro.errors import APIError

        qe = QueryEngine(DocumentStore()["mp"])
        with pytest.raises(APIError):
            qe.query({"$or": [{"$and": [{"$where": lambda d: True}]}]})

    def test_annotation_author_index_exists(self):
        from repro.api import AnnotationStore

        db = DocumentStore()["mp"]
        store = AnnotationStore(db)
        info = db["annotations"].index_information()
        assert "author_1" in info
