"""Deep dotted-path behaviour across the stack: queries, updates, indexes.

The paper's Table I documents are 6-12 levels deep; every layer must handle
deep paths identically.  These tests drive dotted paths through queries,
updates, indexes, projections, sorts, and the QueryEngine aliases at depths
the real task documents actually reach.
"""

import pytest

from repro.docstore import Collection, DocumentStore


@pytest.fixture
def deep_docs():
    """Documents shaped like real task documents (depth ~7)."""
    return [
        {
            "task_id": f"t{i}",
            "spec": {
                "vasp": {
                    "incar": {"ENCUT": 400 + 60 * i, "ALGO": "Fast"},
                    "kpoints": {"mesh": [i + 1, i + 1, i + 1],
                                "scheme": "Gamma"},
                },
                "resources": {"queue": {"name": "regular",
                                        "limits": {"walltime_s": 3600 * i}}},
            },
            "runs": [
                {"stage": "relax",
                 "convergence": {"trace": [1.0, 0.1, 0.01],
                                 "final": {"residual": 10.0 ** -i}}},
            ],
        }
        for i in range(1, 6)
    ]


class TestDeepQueries:
    def test_query_depth_five(self, deep_docs):
        coll = Collection("t")
        coll.insert_many(deep_docs)
        docs = coll.find(
            {"spec.resources.queue.limits.walltime_s": {"$gte": 3600 * 3}}
        ).to_list()
        assert len(docs) == 3

    def test_query_inside_array_of_docs(self, deep_docs):
        coll = Collection("t")
        coll.insert_many(deep_docs)
        docs = coll.find(
            {"runs.convergence.final.residual": {"$lte": 1e-4}}
        ).to_list()
        assert {d["task_id"] for d in docs} == {"t4", "t5"}

    def test_array_index_path(self, deep_docs):
        coll = Collection("t")
        coll.insert_many(deep_docs)
        docs = coll.find({"spec.vasp.kpoints.mesh.0": 3}).to_list()
        assert len(docs) == 1 and docs[0]["task_id"] == "t2"

    def test_deep_index_matches_scan(self, deep_docs):
        plain = Collection("plain")
        plain.insert_many(deep_docs)
        indexed = Collection("ix")
        indexed.create_index("spec.vasp.incar.ENCUT")
        indexed.insert_many(deep_docs)
        q = {"spec.vasp.incar.ENCUT": {"$gte": 520, "$lt": 640}}
        assert (
            sorted(d["task_id"] for d in plain.find(q))
            == sorted(d["task_id"] for d in indexed.find(q))
        )
        assert indexed.last_plan.kind == "IXSCAN"

    def test_deep_sort_and_projection(self, deep_docs):
        coll = Collection("t")
        coll.insert_many(deep_docs)
        docs = coll.find(
            {}, {"spec.vasp.incar.ENCUT": 1, "_id": 0}
        ).sort("spec.vasp.incar.ENCUT", -1).to_list()
        encuts = [d["spec"]["vasp"]["incar"]["ENCUT"] for d in docs]
        assert encuts == sorted(encuts, reverse=True)
        assert set(docs[0]) == {"spec"}
        assert set(docs[0]["spec"]["vasp"]) == {"incar"}


class TestDeepUpdates:
    def test_set_at_depth_six(self, deep_docs):
        coll = Collection("t")
        coll.insert_many(deep_docs)
        coll.update_one(
            {"task_id": "t1"},
            {"$set": {"runs.0.convergence.final.residual": 42.0}},
        )
        doc = coll.find_one({"task_id": "t1"})
        assert doc["runs"][0]["convergence"]["final"]["residual"] == 42.0

    def test_inc_inside_array_element(self, deep_docs):
        coll = Collection("t")
        coll.insert_many(deep_docs)
        coll.update_many({}, {"$inc": {"spec.vasp.kpoints.mesh.2": 10}})
        doc = coll.find_one({"task_id": "t1"})
        assert doc["spec"]["vasp"]["kpoints"]["mesh"][2] == 12

    def test_push_to_deep_array(self, deep_docs):
        coll = Collection("t")
        coll.insert_many(deep_docs)
        coll.update_one(
            {"task_id": "t1"},
            {"$push": {"runs.0.convergence.trace": 0.001}},
        )
        doc = coll.find_one({"task_id": "t1"})
        assert doc["runs"][0]["convergence"]["trace"][-1] == 0.001

    def test_unset_deep_leaf_leaves_siblings(self, deep_docs):
        coll = Collection("t")
        coll.insert_many(deep_docs)
        coll.update_one(
            {"task_id": "t1"}, {"$unset": {"spec.vasp.incar.ALGO": ""}}
        )
        doc = coll.find_one({"task_id": "t1"})
        assert "ALGO" not in doc["spec"]["vasp"]["incar"]
        assert "ENCUT" in doc["spec"]["vasp"]["incar"]

    def test_deep_rename_across_branches(self, deep_docs):
        coll = Collection("t")
        coll.insert_many(deep_docs)
        coll.update_one(
            {"task_id": "t1"},
            {"$rename": {"spec.vasp.incar.ENCUT": "spec.cutoff_ev"}},
        )
        doc = coll.find_one({"task_id": "t1"})
        assert doc["spec"]["cutoff_ev"] == 460
        assert "ENCUT" not in doc["spec"]["vasp"]["incar"]


class TestDeepAliases:
    def test_alias_chain_through_queryengine(self, deep_docs):
        from repro.api import QueryEngine

        db = DocumentStore()["mp"]
        db["tasks"].insert_many(deep_docs)
        qe = QueryEngine(
            db,
            aliases={
                "encut": "spec.vasp.incar.ENCUT",
                "residual": "runs.convergence.final.residual",
                "walltime": "spec.resources.queue.limits.walltime_s",
            },
        )
        docs = qe.query(
            {"encut": {"$gte": 520}, "walltime": {"$lte": 3600 * 4}},
            collection="tasks",
        )
        # ENCUT >= 520 selects t2..t5; walltime <= 4h selects t1..t4.
        assert {d["task_id"] for d in docs} == {"t2", "t3", "t4"}
        docs = qe.query({"residual": {"$lte": 1e-4}}, collection="tasks",
                        sort=[("encut", 1)])
        assert [d["task_id"] for d in docs] == ["t4", "t5"]
