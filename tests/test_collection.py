"""Tests for Collection CRUD, indexes, plans, and the atomic queue primitive."""

import threading

import pytest

from repro.docstore import Collection, DocumentStore, ObjectId
from repro.errors import DocstoreError, DuplicateKeyError


@pytest.fixture
def coll():
    return Collection("tasks")


@pytest.fixture
def populated():
    c = Collection("engines")
    c.insert_many(
        [
            {"job": i, "state": "WAITING", "priority": i % 3,
             "elements": ["Li", "O"] if i % 2 == 0 else ["Na", "S"],
             "nelectrons": 50 * i}
            for i in range(10)
        ]
    )
    return c


class TestInsert:
    def test_assigns_objectid(self, coll):
        result = coll.insert_one({"x": 1})
        assert isinstance(result.inserted_id, ObjectId)
        assert len(coll) == 1

    def test_respects_custom_id(self, coll):
        coll.insert_one({"_id": "task-1", "x": 1})
        assert coll.find_one({"_id": "task-1"})["x"] == 1

    def test_duplicate_id_rejected(self, coll):
        coll.insert_one({"_id": 1})
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"_id": 1})

    def test_insert_many(self, coll):
        result = coll.insert_many([{"i": i} for i in range(5)])
        assert len(result.inserted_ids) == 5
        assert len(coll) == 5

    def test_caller_mutation_isolated(self, coll):
        doc = {"nested": {"v": 1}}
        coll.insert_one(doc)
        doc["nested"]["v"] = 999
        assert coll.find_one({})["nested"]["v"] == 1

    def test_returned_doc_mutation_isolated(self, coll):
        coll.insert_one({"nested": {"v": 1}})
        out = coll.find_one({})
        out["nested"]["v"] = 999
        assert coll.find_one({})["nested"]["v"] == 1

    def test_invalid_document_rejected(self, coll):
        with pytest.raises(DocstoreError):
            coll.insert_one({"bad": object()})

    def test_non_mapping_rejected(self, coll):
        with pytest.raises(DocstoreError):
            coll.insert_one([1, 2])


class TestFind:
    def test_find_all(self, populated):
        assert len(populated.find().to_list()) == 10

    def test_find_with_query(self, populated):
        docs = populated.find({"elements": "Li"}).to_list()
        assert len(docs) == 5

    def test_paper_query(self, populated):
        docs = populated.find(
            {"elements": {"$all": ["Li", "O"]}, "nelectrons": {"$lte": 200}}
        ).to_list()
        assert sorted(d["job"] for d in docs) == [0, 2, 4]

    def test_find_one_none_when_empty(self, coll):
        assert coll.find_one({"x": 1}) is None

    def test_projection_include(self, populated):
        doc = populated.find_one({"job": 3}, {"state": 1})
        assert set(doc) == {"_id", "state"}

    def test_projection_exclude_id(self, populated):
        doc = populated.find_one({"job": 3}, {"state": 1, "_id": 0})
        assert set(doc) == {"state"}

    def test_count(self, populated):
        assert populated.count_documents() == 10
        assert populated.count_documents({"priority": 0}) == 4

    def test_distinct(self, populated):
        assert sorted(populated.distinct("priority")) == [0, 1, 2]
        assert sorted(populated.distinct("elements")) == ["Li", "Na", "O", "S"]


class TestUpdate:
    def test_update_one(self, populated):
        r = populated.update_one({"job": 3}, {"$set": {"state": "RUNNING"}})
        assert (r.matched_count, r.modified_count) == (1, 1)
        assert populated.find_one({"job": 3})["state"] == "RUNNING"

    def test_update_many(self, populated):
        r = populated.update_many({"priority": 0}, {"$inc": {"nelectrons": 1}})
        assert r.matched_count == 4

    def test_update_no_match(self, populated):
        r = populated.update_one({"job": 99}, {"$set": {"state": "X"}})
        assert r.matched_count == 0

    def test_noop_update_not_counted_modified(self, populated):
        r = populated.update_one({"job": 3}, {"$set": {"state": "WAITING"}})
        assert (r.matched_count, r.modified_count) == (1, 0)

    def test_upsert_inserts(self, coll):
        r = coll.update_one({"name": "Fe2O3"}, {"$set": {"energy": -5.0}}, upsert=True)
        assert r.upserted_id is not None
        doc = coll.find_one({"name": "Fe2O3"})
        assert doc["energy"] == -5.0

    def test_upsert_set_on_insert(self, coll):
        coll.update_one(
            {"k": 1},
            {"$setOnInsert": {"created": True}, "$set": {"v": 1}},
            upsert=True,
        )
        coll.update_one(
            {"k": 1},
            {"$setOnInsert": {"created2": True}, "$set": {"v": 2}},
            upsert=True,
        )
        doc = coll.find_one({"k": 1})
        assert doc["created"] is True
        assert "created2" not in doc
        assert doc["v"] == 2

    def test_replace_one(self, populated):
        populated.replace_one({"job": 3}, {"fresh": True})
        doc = populated.find_one({"fresh": True})
        assert "state" not in doc

    def test_update_cannot_change_id(self, populated):
        with pytest.raises(DocstoreError):
            populated.replace_one({"job": 3}, {"_id": "changed"})


class TestDelete:
    def test_delete_one(self, populated):
        assert populated.delete_one({"priority": 0}).deleted_count == 1
        assert populated.count_documents() == 9

    def test_delete_many(self, populated):
        assert populated.delete_many({"priority": 0}).deleted_count == 4

    def test_delete_all(self, populated):
        assert populated.delete_many().deleted_count == 10
        assert len(populated) == 0

    def test_find_one_and_delete(self, populated):
        doc = populated.find_one_and_delete({"job": 5})
        assert doc["job"] == 5
        assert populated.count_documents({"job": 5}) == 0


class TestAtomicClaim:
    """find_one_and_update is the task-queue primitive (§III-B2)."""

    def test_claim_flips_state(self, populated):
        claimed = populated.find_one_and_update(
            {"state": "WAITING"},
            {"$set": {"state": "RUNNING"}},
            sort=[("priority", -1)],
            return_document="after",
        )
        assert claimed["state"] == "RUNNING"
        assert claimed["priority"] == 2  # highest priority first

    def test_returns_none_when_no_match(self, coll):
        assert coll.find_one_and_update({"state": "WAITING"}, {"$set": {"a": 1}}) is None

    def test_return_before(self, populated):
        before = populated.find_one_and_update(
            {"job": 1}, {"$set": {"state": "RUNNING"}}, return_document="before"
        )
        assert before["state"] == "WAITING"

    def test_concurrent_claims_never_double_claim(self):
        coll = Collection("queue")
        coll.insert_many([{"job": i, "state": "WAITING"} for i in range(50)])
        claimed = []
        lock = threading.Lock()

        def worker(wid):
            while True:
                doc = coll.find_one_and_update(
                    {"state": "WAITING"},
                    {"$set": {"state": "RUNNING"}},
                    return_document="after",
                )
                if doc is None:
                    return
                with lock:
                    claimed.append((wid, doc["job"]))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        jobs = [j for _, j in claimed]
        assert sorted(jobs) == list(range(50))  # every job claimed exactly once

    def test_upsert_claim(self, coll):
        doc = coll.find_one_and_update(
            {"singleton": "lock"},
            {"$set": {"holder": "w1"}},
            upsert=True,
            return_document="after",
        )
        assert doc["holder"] == "w1"
        assert doc["singleton"] == "lock"


class TestIndexes:
    def test_index_used_for_equality(self, populated):
        populated.create_index("state")
        populated.find({"state": "WAITING"}).to_list()
        assert populated.last_plan.kind == "IXSCAN"

    def test_collscan_without_index(self, populated):
        populated.find({"state": "WAITING"}).to_list()
        assert populated.last_plan.kind == "COLLSCAN"

    def test_index_results_match_scan(self, populated):
        before = {d["_id"].hex() for d in populated.find({"nelectrons": {"$gte": 200}})}
        populated.create_index("nelectrons")
        after = {d["_id"].hex() for d in populated.find({"nelectrons": {"$gte": 200}})}
        assert before == after
        assert populated.last_plan.kind == "IXSCAN"

    def test_multikey_index_on_array(self, populated):
        populated.create_index("elements")
        docs = populated.find({"elements": "Li"}).to_list()
        assert len(docs) == 5
        assert populated.last_plan.kind == "IXSCAN"

    def test_index_maintained_on_update(self, populated):
        populated.create_index("state")
        populated.update_many({"priority": 1}, {"$set": {"state": "DONE"}})
        docs = populated.find({"state": "DONE"}).to_list()
        assert len(docs) == 3

    def test_index_maintained_on_delete(self, populated):
        populated.create_index("job")
        populated.delete_one({"job": 4})
        assert populated.find({"job": 4}).to_list() == []
        assert populated.find({"job": 5}).to_list() != []

    def test_unique_index_blocks_duplicates(self, coll):
        coll.create_index("task_id", unique=True)
        coll.insert_one({"task_id": "t1"})
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"task_id": "t1"})
        assert len(coll) == 1

    def test_unique_index_backfill_failure_rolls_back(self, coll):
        coll.insert_many([{"k": 1}, {"k": 1}])
        with pytest.raises(DuplicateKeyError):
            coll.create_index("k", unique=True)
        assert "k_1" not in coll.index_information()

    def test_unique_allows_missing_fields(self, coll):
        coll.create_index("opt", unique=True)
        coll.insert_many([{"a": 1}, {"a": 2}])  # both missing "opt"
        assert len(coll) == 2

    def test_in_query_uses_index(self, populated):
        populated.create_index("priority")
        docs = populated.find({"priority": {"$in": [0, 2]}}).to_list()
        assert populated.last_plan.kind == "IXSCAN"
        assert len(docs) == 7

    def test_explain(self, populated):
        populated.create_index("job")
        info = populated.explain({"job": 3})
        assert info["stage"] == "IXSCAN"
        assert info["nReturned"] == 1

    def test_drop_index(self, populated):
        name = populated.create_index("state")
        populated.drop_index(name)
        populated.find({"state": "WAITING"}).to_list()
        assert populated.last_plan.kind == "COLLSCAN"


class TestStatsAndAggregates:
    def test_stats(self, populated):
        s = populated.stats()
        assert s["count"] == 10
        assert s["avgObjSize"] > 0

    def test_aggregate_smoke(self, populated):
        rows = populated.aggregate(
            [
                {"$match": {"elements": "Li"}},
                {"$group": {"_id": "$priority", "n": {"$sum": 1}}},
                {"$sort": {"_id": 1}},
            ]
        )
        assert sum(r["n"] for r in rows) == 5

    def test_map_reduce_smoke(self, populated):
        rows = populated.map_reduce(
            mapper=lambda d: [(d["state"], 1)],
            reducer=lambda k, vs: sum(vs),
        )
        assert rows[0] == {"_id": "WAITING", "value": 10}


class TestDatabaseNamespace:
    def test_lazy_collection_creation(self):
        store = DocumentStore()
        db = store["mp"]
        db["tasks"].insert_one({"x": 1})
        assert db.list_collection_names() == ["tasks"]
        assert store.list_database_names() == ["mp"]

    def test_attribute_access(self):
        store = DocumentStore()
        store.mp.materials.insert_one({"formula": "Fe2O3"})
        assert store["mp"]["materials"].count_documents() == 1

    def test_drop_collection(self):
        store = DocumentStore()
        store.mp.tasks.insert_one({"x": 1})
        store.mp.drop_collection("tasks")
        assert store.mp.tasks.count_documents() == 0

    def test_profiling_records_queries(self):
        store = DocumentStore()
        db = store["mp"]
        db.set_profiling_level(1)
        db.tasks.insert_one({"x": 1})
        db.tasks.find({"x": 1}).to_list()
        log = db.profile_log
        assert len(log) == 1
        assert log[0]["op"] == "find"
        assert log[0]["millis"] >= 0
        assert log[0]["nreturned"] == 1

    def test_dbstats(self):
        store = DocumentStore()
        store.mp.a.insert_one({})
        store.mp.b.insert_many([{}, {}])
        stats = store.mp.command_stats()
        assert stats["objects"] == 3
        assert stats["collections"] == 2
