"""Tests for the update-operator engine (Fuse override syntax, §III-C2)."""

import pytest

from repro.docstore.updates import apply_update, is_operator_update
from repro.errors import UpdateSyntaxError


def applied(doc, update, **kw):
    apply_update(doc, update, **kw)
    return doc


class TestSetUnset:
    def test_set_scalar(self):
        assert applied({"a": 1}, {"$set": {"a": 2}}) == {"a": 2}

    def test_set_nested_creates_path(self):
        doc = applied({}, {"$set": {"spec.incar.ENCUT": 520}})
        assert doc == {"spec": {"incar": {"ENCUT": 520}}}

    def test_fuse_style_override(self):
        """The Fuse stores overrides in Mongo atomic update syntax."""
        stage = {"incar": {"ENCUT": 400, "ALGO": "Normal"}, "walltime": 3600}
        applied(stage, {"$set": {"incar.ALGO": "Fast"}, "$inc": {"walltime": 3600}})
        assert stage == {"incar": {"ENCUT": 400, "ALGO": "Fast"}, "walltime": 7200}

    def test_unset(self):
        assert applied({"a": 1, "b": 2}, {"$unset": {"b": ""}}) == {"a": 1}

    def test_unset_missing_noop(self):
        assert applied({"a": 1}, {"$unset": {"zzz": ""}}) == {"a": 1}

    def test_cannot_set_id(self):
        with pytest.raises(UpdateSyntaxError):
            apply_update({"_id": 1}, {"$set": {"_id": 2}})


class TestArithmetic:
    def test_inc_existing(self):
        assert applied({"n": 1}, {"$inc": {"n": 5}}) == {"n": 6}

    def test_inc_negative(self):
        assert applied({"n": 1}, {"$inc": {"n": -3}}) == {"n": -2}

    def test_inc_missing_initializes(self):
        assert applied({}, {"$inc": {"launches": 1}}) == {"launches": 1}

    def test_inc_non_numeric_rejected(self):
        with pytest.raises(UpdateSyntaxError):
            apply_update({"n": "x"}, {"$inc": {"n": 1}})
        with pytest.raises(UpdateSyntaxError):
            apply_update({"n": 1}, {"$inc": {"n": "x"}})

    def test_mul(self):
        assert applied({"n": 3}, {"$mul": {"n": 4}}) == {"n": 12}

    def test_mul_missing_gives_zero(self):
        assert applied({}, {"$mul": {"n": 4}}) == {"n": 0}

    def test_min_max(self):
        assert applied({"best": -3.0}, {"$min": {"best": -5.0}}) == {"best": -5.0}
        assert applied({"best": -3.0}, {"$min": {"best": -1.0}}) == {"best": -3.0}
        assert applied({"worst": 2}, {"$max": {"worst": 7}}) == {"worst": 7}
        assert applied({}, {"$max": {"worst": 7}}) == {"worst": 7}


class TestArrays:
    def test_push(self):
        assert applied({"log": [1]}, {"$push": {"log": 2}}) == {"log": [1, 2]}

    def test_push_creates_array(self):
        assert applied({}, {"$push": {"log": "start"}}) == {"log": ["start"]}

    def test_push_each(self):
        doc = applied({"a": [1]}, {"$push": {"a": {"$each": [2, 3]}}})
        assert doc == {"a": [1, 2, 3]}

    def test_push_each_with_slice(self):
        doc = applied({"a": [1, 2]}, {"$push": {"a": {"$each": [3, 4], "$slice": -3}}})
        assert doc == {"a": [2, 3, 4]}

    def test_push_each_with_sort(self):
        doc = applied(
            {"runs": [{"e": -2.0}]},
            {"$push": {"runs": {"$each": [{"e": -5.0}, {"e": -1.0}], "$sort": {"e": 1}}}},
        )
        assert [r["e"] for r in doc["runs"]] == [-5.0, -2.0, -1.0]

    def test_push_position(self):
        doc = applied({"a": [1, 4]}, {"$push": {"a": {"$each": [2, 3], "$position": 1}}})
        assert doc == {"a": [1, 2, 3, 4]}

    def test_push_to_non_array_rejected(self):
        with pytest.raises(UpdateSyntaxError):
            apply_update({"a": 5}, {"$push": {"a": 1}})

    def test_add_to_set(self):
        doc = applied({"tags": ["Li"]}, {"$addToSet": {"tags": "Li"}})
        assert doc == {"tags": ["Li"]}
        doc = applied(doc, {"$addToSet": {"tags": "O"}})
        assert doc == {"tags": ["Li", "O"]}

    def test_add_to_set_each(self):
        doc = applied({"tags": ["a"]}, {"$addToSet": {"tags": {"$each": ["a", "b"]}}})
        assert doc == {"tags": ["a", "b"]}

    def test_add_to_set_documents_by_value(self):
        doc = applied({"xs": [{"k": 1}]}, {"$addToSet": {"xs": {"k": 1}}})
        assert doc == {"xs": [{"k": 1}]}

    def test_pop(self):
        assert applied({"a": [1, 2, 3]}, {"$pop": {"a": 1}}) == {"a": [1, 2]}
        assert applied({"a": [1, 2, 3]}, {"$pop": {"a": -1}}) == {"a": [2, 3]}
        assert applied({}, {"$pop": {"a": 1}}) == {}

    def test_pop_validation(self):
        with pytest.raises(UpdateSyntaxError):
            apply_update({"a": [1]}, {"$pop": {"a": 2}})

    def test_pull_scalar(self):
        assert applied({"a": [1, 2, 1]}, {"$pull": {"a": 1}}) == {"a": [2]}

    def test_pull_with_condition(self):
        doc = applied({"a": [1, 5, 9]}, {"$pull": {"a": {"$gt": 4}}})
        assert doc == {"a": [1]}

    def test_pull_document_query(self):
        doc = applied(
            {"runs": [{"state": "error"}, {"state": "done"}]},
            {"$pull": {"runs": {"state": "error"}}},
        )
        assert doc == {"runs": [{"state": "done"}]}

    def test_pull_all(self):
        assert applied({"a": [1, 2, 3, 2]}, {"$pullAll": {"a": [2, 3]}}) == {"a": [1]}


class TestRenameReplaceMisc:
    def test_rename(self):
        doc = applied({"old": 5}, {"$rename": {"old": "new"}})
        assert doc == {"new": 5}

    def test_rename_missing_noop(self):
        assert applied({"a": 1}, {"$rename": {"zzz": "yyy"}}) == {"a": 1}

    def test_rename_to_nested(self):
        doc = applied({"x": 1}, {"$rename": {"x": "meta.x"}})
        assert doc == {"meta": {"x": 1}}

    def test_rename_self_rejected(self):
        with pytest.raises(UpdateSyntaxError):
            apply_update({"a": 1}, {"$rename": {"a": "a"}})

    def test_replacement_preserves_id(self):
        doc = applied({"_id": 7, "a": 1}, {"b": 2})
        assert doc == {"b": 2, "_id": 7}

    def test_set_on_insert_only_on_insert(self):
        assert applied({}, {"$setOnInsert": {"created": 1}}) == {}
        assert applied({}, {"$setOnInsert": {"created": 1}}, is_insert=True) == {
            "created": 1
        }

    def test_current_date(self):
        import time

        doc = applied({}, {"$currentDate": {"ts": True}})
        assert abs(doc["ts"] - time.time()) < 5

    def test_mixed_operators_and_fields_rejected(self):
        with pytest.raises(UpdateSyntaxError):
            apply_update({}, {"$set": {"a": 1}, "b": 2})

    def test_unknown_operator_rejected(self):
        with pytest.raises(UpdateSyntaxError):
            apply_update({}, {"$explode": {"a": 1}})

    def test_is_operator_update(self):
        assert is_operator_update({"$set": {"a": 1}})
        assert not is_operator_update({"a": 1})
