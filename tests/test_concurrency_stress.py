"""Chaos lane: concurrent stress over the wire + crash-recovery.

These tests hammer one server with many writer and reader threads and then
check global invariants — no torn reads, no lost acknowledged writes, index
entries consistent with documents.  Knobs come from the environment so the
CI chaos job (and the weekly soak) can turn up the heat:

* ``CHAOS_DURATION_S``  — seconds each stress phase runs (default 1.5)
* ``CHAOS_WRITERS``     — writer thread count (default 4)
* ``CHAOS_READERS``     — reader thread count (default 4)
"""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.docstore import DatastoreServer, DocumentStore, RemoteClient

DURATION_S = float(os.environ.get("CHAOS_DURATION_S", "1.5"))
N_WRITERS = int(os.environ.get("CHAOS_WRITERS", "4"))
N_READERS = int(os.environ.get("CHAOS_READERS", "4"))
N_GROUPS = 4


@pytest.fixture
def server():
    srv = DatastoreServer(DocumentStore())
    srv.start()
    yield srv
    srv.stop()


def _writer(client, writer_id, stop, live_keys, errors):
    """Insert / balanced-update / delete its own keys; records live set."""
    coll = client["mp"]["stress"]
    i = 0
    try:
        while not stop.is_set():
            key = f"w{writer_id}-{i}"
            coll.insert_one({
                "k": key, "group": i % N_GROUPS, "a": i, "b": -i,
            })
            live_keys.add(key)
            if i % 3 == 2:
                # Balanced increment: a+b stays 0 for every doc, always.
                coll.update_one({"k": key},
                                {"$inc": {"a": 7, "b": -7}})
            if i % 5 == 4:
                victim = f"w{writer_id}-{i - 4}"
                coll.delete_one({"k": victim})
                live_keys.discard(victim)
            i += 1
    except Exception as exc:  # pragma: no cover - failure reporting
        errors.append(f"writer {writer_id}: {exc!r}")


def _reader(client, reader_id, stop, errors):
    """Torn-read detector: every doc must satisfy a + b == 0."""
    coll = client["mp"]["stress"]
    g = reader_id % N_GROUPS
    try:
        while not stop.is_set():
            for doc in coll.find({"group": g}):
                if doc["a"] + doc["b"] != 0:
                    errors.append(
                        f"reader {reader_id}: torn read {doc['k']}: "
                        f"a={doc['a']} b={doc['b']}"
                    )
                    return
            coll.count_documents({"group": g})
    except Exception as exc:  # pragma: no cover - failure reporting
        errors.append(f"reader {reader_id}: {exc!r}")


class TestWireStress:
    def test_concurrent_writers_and_readers_hold_invariants(self, server):
        setup = RemoteClient("127.0.0.1", server.port)
        setup["mp"]["stress"].create_index("group")
        setup["mp"]["stress"].create_index("k", unique=True)
        setup.close()

        stop = threading.Event()
        errors: list = []
        live_sets = [set() for _ in range(N_WRITERS)]
        clients = [RemoteClient("127.0.0.1", server.port, pool_size=2)
                   for _ in range(N_WRITERS + N_READERS)]
        threads = [
            threading.Thread(target=_writer,
                             args=(clients[w], w, stop, live_sets[w], errors))
            for w in range(N_WRITERS)
        ] + [
            threading.Thread(target=_reader,
                             args=(clients[N_WRITERS + r], r, stop, errors))
            for r in range(N_READERS)
        ]
        for t in threads:
            t.start()
        time.sleep(DURATION_S)
        stop.set()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive(), "stress thread wedged"
        assert errors == [], errors

        # Acknowledged-write accounting: the store holds exactly the keys
        # every writer believes are live.
        coll = server.store["mp"]["stress"]
        expected = set().union(*live_sets)
        actual = {d["k"] for d in coll.all_documents()}
        assert actual == expected
        assert coll.count_documents() == len(expected)

        # Index consistency: every index tracked every surviving doc, and
        # an indexed find agrees with a raw scan.
        for name, info in coll.index_information().items():
            assert info["entries"] == len(expected), name
        for g in range(N_GROUPS):
            indexed = sorted(d["k"] for d in coll.find({"group": g}))
            scanned = sorted(d["k"] for d in coll.all_documents()
                             if d["group"] == g)
            assert indexed == scanned

        # The RW locks actually saw traffic and surfaced it.
        locks = server.store.server_status()["locks"]
        assert locks["read_acquires"] > 0
        assert locks["write_acquires"] > 0

        for c in clients:
            c.close()

    def test_concurrent_collection_create_drop(self):
        """Database-level churn: create/drop while writers hit other
        collections must never deadlock or corrupt the namespace map."""
        store = DocumentStore()
        db = store["mp"]
        stop = threading.Event()
        errors: list = []

        def churn(n):
            try:
                i = 0
                while not stop.is_set():
                    name = f"ephemeral_{n}_{i % 3}"
                    c = db[name]
                    c.insert_one({"i": i})
                    db.drop_collection(name)
                    i += 1
            except Exception as exc:  # pragma: no cover
                errors.append(f"churn {n}: {exc!r}")

        def write(n):
            try:
                i = 0
                while not stop.is_set():
                    db["durable"].insert_one({"w": n, "i": i})
                    db["durable"].count_documents({"w": n})
                    i += 1
            except Exception as exc:  # pragma: no cover
                errors.append(f"write {n}: {exc!r}")

        threads = ([threading.Thread(target=churn, args=(n,)) for n in range(2)]
                   + [threading.Thread(target=write, args=(n,)) for n in range(2)])
        for t in threads:
            t.start()
        time.sleep(min(DURATION_S, 1.0))
        stop.set()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive(), "create/drop churn deadlocked"
        assert errors == [], errors
        assert db["durable"].count_documents() > 0


_CRASH_CHILD = """\
import os, sys
from repro.docstore import DocumentStore

data_dir, acked_path, crash_at = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = DocumentStore(persistence_dir=data_dir, fsync="always")
coll = store["mp"]["crash"]
acked = open(acked_path, "a")
for i in range(crash_at + 200):
    coll.insert_one({"i": i, "a": i, "b": -i})
    # insert_one has returned: the journal record is fsynced (fsync=always),
    # so this ack is a durability promise recovery must honor.
    acked.write(f"{i}\\n")
    acked.flush()
    if i == crash_at:
        os._exit(137)  # simulate power loss: no close, no atexit, no flush
"""


class TestCrashRecovery:
    def test_acked_writes_survive_hard_kill(self, tmp_path):
        data_dir = tmp_path / "store"
        acked_path = tmp_path / "acked.txt"
        script = tmp_path / "crash_child.py"
        script.write_text(_CRASH_CHILD)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), str(data_dir), str(acked_path), "400"],
            env=env, timeout=120, capture_output=True, text=True,
        )
        assert proc.returncode == 137, proc.stderr

        acked = {int(line) for line in acked_path.read_text().split() if line}
        assert len(acked) >= 1

        recovered = DocumentStore(persistence_dir=str(data_dir))
        docs = recovered["mp"]["crash"].all_documents()
        got = {d["i"] for d in docs}
        # Every acknowledged write survived; at most the one in-flight,
        # unacknowledged insert may appear beyond the acked set.
        assert acked <= got
        assert len(got - acked) <= 1
        # No torn documents after replay.
        for d in docs:
            assert d["a"] + d["b"] == 0
        # Writes are sequential, so the recovered ids are a contiguous prefix.
        assert got == set(range(len(got)))

    def test_recovery_after_kill_then_continue_and_snapshot(self, tmp_path):
        """Recovered store keeps working: new writes, snapshot, reopen."""
        data_dir = tmp_path / "store"
        acked_path = tmp_path / "acked.txt"
        script = tmp_path / "crash_child.py"
        script.write_text(_CRASH_CHILD)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), str(data_dir), str(acked_path), "50"],
            env=env, timeout=120, capture_output=True, text=True,
        )
        assert proc.returncode == 137, proc.stderr

        store = DocumentStore(persistence_dir=str(data_dir))
        before = store["mp"]["crash"].count_documents()
        store["mp"]["crash"].insert_one({"i": 10_000, "a": 1, "b": -1})
        store.snapshot()
        store.close()

        reopened = DocumentStore(persistence_dir=str(data_dir))
        assert reopened["mp"]["crash"].count_documents() == before + 1
        assert reopened["mp"]["crash"].find_one({"i": 10_000}) is not None
        reopened.close()
