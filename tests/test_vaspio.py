"""Tests for POSCAR reading/writing."""

import pytest

from repro.errors import MatgenError
from repro.matgen import (
    make_prototype,
    read_poscar_file,
    structure_from_poscar,
    structure_to_poscar,
    write_poscar_file,
)


@pytest.fixture
def lifepo4():
    return make_prototype("olivine", ["Li", "Fe"])


class TestPoscarRoundtrip:
    def test_roundtrip(self, lifepo4):
        back = structure_from_poscar(structure_to_poscar(lifepo4))
        assert back.matches(lifepo4)
        assert back.reduced_formula == "LiFePO4"

    def test_file_roundtrip(self, lifepo4, tmp_path):
        path = str(tmp_path / "POSCAR")
        write_poscar_file(lifepo4, path, comment="olivine test")
        back = read_poscar_file(path)
        assert back.matches(lifepo4)

    def test_reads_rocket_run_directory_poscar(self, tmp_path):
        """Interop with the run-dir writer in repro.dft.io."""
        from repro.dft import FakeVASP, Resources, SCFParameters

        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        run_dir = str(tmp_path / "run")
        FakeVASP().run(
            nacl, SCFParameters(amix=0.15, algo="All", nelm=500),
            Resources(walltime_s=1e9, memory_mb=1e6), run_dir=run_dir,
        )
        back = read_poscar_file(f"{run_dir}/POSCAR")
        assert back.matches(nacl)


class TestPoscarParsing:
    SAMPLE = """fcc Cu
3.615
 1.0 0.0 0.0
 0.0 1.0 0.0
 0.0 0.0 1.0
Cu
4
Direct
 0.0 0.0 0.0
 0.5 0.5 0.0
 0.5 0.0 0.5
 0.0 0.5 0.5
"""

    def test_scale_factor_applied(self):
        s = structure_from_poscar(self.SAMPLE)
        assert s.lattice.a == pytest.approx(3.615)
        assert s.reduced_formula == "Cu"
        assert s.num_sites == 4

    def test_negative_scale_sets_volume(self):
        text = self.SAMPLE.replace("3.615", "-47.24")
        s = structure_from_poscar(text)
        assert s.volume == pytest.approx(47.24)

    def test_cartesian_mode(self):
        text = """cart test
1.0
 4.0 0.0 0.0
 0.0 4.0 0.0
 0.0 0.0 4.0
Na Cl
1 1
Cartesian
 0.0 0.0 0.0
 2.0 2.0 2.0
"""
        s = structure_from_poscar(text)
        assert s.sites[1].frac_coords == pytest.approx([0.5, 0.5, 0.5])

    def test_selective_dynamics_skipped(self):
        text = self.SAMPLE.replace("Direct", "Selective dynamics\nDirect")
        s = structure_from_poscar(text)
        assert s.num_sites == 4

    def test_vasp4_rejected(self):
        text = self.SAMPLE.replace("Cu\n4", "4")
        with pytest.raises(MatgenError):
            structure_from_poscar(text)

    def test_count_mismatch_rejected(self):
        text = self.SAMPLE.replace("Cu\n4", "Cu Na\n4")
        with pytest.raises(MatgenError):
            structure_from_poscar(text)

    def test_truncated_coordinates_rejected(self):
        lines = self.SAMPLE.strip().splitlines()
        with pytest.raises(MatgenError):
            structure_from_poscar("\n".join(lines[:-2]))

    def test_unknown_mode_rejected(self):
        text = self.SAMPLE.replace("Direct", "Spherical")
        with pytest.raises(MatgenError):
            structure_from_poscar(text)

    def test_unknown_element_rejected(self):
        text = self.SAMPLE.replace("Cu\n4", "Xx\n4")
        with pytest.raises(MatgenError):
            structure_from_poscar(text)
