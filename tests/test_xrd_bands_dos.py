"""Tests for XRD patterns, band structures, and densities of states."""

import math

import numpy as np
import pytest

from repro.errors import MatgenError
from repro.matgen import (
    BandStructure,
    DensityOfStates,
    KPath,
    Lattice,
    Structure,
    XRDCalculator,
    compute_band_structure,
    compute_dos,
    make_prototype,
)


@pytest.fixture
def nacl():
    return make_prototype("rocksalt", ["Na", "Cl"])


@pytest.fixture
def fe_bcc():
    return make_prototype("bcc", ["Fe"])


class TestXRD:
    def test_rocksalt_selection_rules(self, nacl):
        """FCC lattice: reflections with mixed-parity hkl are extinct."""
        pattern = XRDCalculator().get_pattern(nacl)
        assert len(pattern) > 3
        for hkl in pattern.hkls:
            parities = {h % 2 for h in hkl}
            assert len(parities) == 1, f"mixed-parity reflection {hkl} should be extinct"

    def test_bragg_positions(self, nacl):
        """Peak positions must satisfy Bragg's law for the lattice."""
        calc = XRDCalculator()
        pattern = calc.get_pattern(nacl)
        for two_theta, d in zip(pattern.two_theta, pattern.d_spacings):
            sin_t = math.sin(math.radians(two_theta / 2))
            assert sin_t == pytest.approx(calc.wavelength / (2 * d), rel=1e-6)

    def test_intensities_normalized(self, nacl):
        pattern = XRDCalculator().get_pattern(nacl)
        assert max(pattern.intensity) == pytest.approx(100.0)
        assert all(0 < i <= 100.0 for i in pattern.intensity)

    def test_strongest_peak(self, nacl):
        peak = XRDCalculator().get_pattern(nacl).strongest_peak
        assert peak["intensity"] == pytest.approx(100.0)
        assert peak["hkl"] in [(2, 0, 0), (0, 0, 2), (0, 2, 0), (1, 1, 1)]

    def test_peaks_within_angular_window(self, nacl):
        pattern = XRDCalculator(two_theta_range=(20, 60)).get_pattern(nacl)
        assert all(20 <= t <= 60 for t in pattern.two_theta)

    def test_larger_cell_shifts_peaks_left(self, nacl):
        """Bigger d-spacings diffract at lower angles."""
        big = nacl.scale_volume(nacl.volume * 1.3)
        p_small = XRDCalculator().get_pattern(nacl)
        p_big = XRDCalculator().get_pattern(big)
        assert min(p_big.two_theta) < min(p_small.two_theta)

    def test_pattern_dict_shape(self, nacl):
        d = XRDCalculator().get_pattern(nacl).as_dict()
        assert d["wavelength"] == pytest.approx(1.54184)
        assert all({"two_theta", "intensity", "hkl", "d"} <= set(p) for p in d["peaks"])

    def test_invalid_wavelength(self):
        with pytest.raises(MatgenError):
            XRDCalculator(wavelength=-1)

    def test_bcc_selection_rules(self, fe_bcc):
        """BCC: h+k+l odd reflections are extinct."""
        pattern = XRDCalculator().get_pattern(fe_bcc)
        for hkl in pattern.hkls:
            assert sum(hkl) % 2 == 0


class TestKPath:
    def test_default_path(self):
        kpts, labels = KPath().kpoints()
        assert labels[0] == "Γ"
        assert labels[-1] == "R"
        assert len(kpts) == len(labels)

    def test_points_per_segment(self):
        kpts, _ = KPath(points_per_segment=10).kpoints()
        assert len(kpts) == 4 * 10 + 1

    def test_custom_path_validation(self):
        with pytest.raises(MatgenError):
            KPath([("Γ", (0, 0, 0))])
        with pytest.raises(MatgenError):
            KPath(points_per_segment=1)


class TestBandStructure:
    def test_ionic_compound_has_gap(self, nacl):
        bs = compute_band_structure(nacl)
        assert not bs.is_metal
        assert bs.band_gap > 1.0  # NaCl is a wide-gap insulator

    def test_elemental_metal_is_metallic_or_small_gap(self, fe_bcc):
        bs = compute_band_structure(fe_bcc)
        # Zero ionicity: on-site energies identical; bands overlap.
        assert bs.band_gap < 0.5

    def test_gap_grows_with_ionicity(self):
        """Electronegativity spread drives the gap, like real chemistry."""
        gap_naF = compute_band_structure(make_prototype("rocksalt", ["Na", "F"])).band_gap
        gap_mgO = compute_band_structure(make_prototype("rocksalt", ["Mg", "O"])).band_gap
        gap_fe = compute_band_structure(make_prototype("bcc", ["Fe"])).band_gap
        assert gap_naF > gap_mgO > gap_fe

    def test_deterministic(self, nacl):
        b1 = compute_band_structure(nacl)
        b2 = compute_band_structure(nacl)
        assert np.allclose(b1.bands, b2.bands)

    def test_vbm_cbm(self, nacl):
        bs = compute_band_structure(nacl)
        assert bs.vbm["energy"] <= bs.fermi_level <= bs.cbm["energy"]
        assert bs.band_gap == pytest.approx(bs.cbm["energy"] - bs.vbm["energy"])

    def test_dict_roundtrip(self, nacl):
        bs = compute_band_structure(nacl)
        back = BandStructure.from_dict(bs.as_dict())
        assert back.band_gap == pytest.approx(bs.band_gap)
        assert back.formula == "NaCl"

    def test_shape_validation(self):
        with pytest.raises(MatgenError):
            BandStructure(np.zeros((5, 3)), np.zeros((2, 4)), 0.0)


class TestDOS:
    def test_dos_gap_consistent_with_bands(self, nacl):
        bs = compute_band_structure(nacl)
        dos = compute_dos(bs, sigma=0.05)
        assert dos.get_gap() == pytest.approx(bs.band_gap, abs=0.4)

    def test_metal_detection(self, fe_bcc):
        bs = compute_band_structure(fe_bcc)
        dos = compute_dos(bs)
        assert dos.is_metal == bs.is_metal or bs.band_gap < 0.3

    def test_total_states_conserved(self, nacl):
        bs = compute_band_structure(nacl)
        dos = compute_dos(bs, sigma=0.05, n_points=2000)
        total = dos.states_in_window(dos.energies[0], dos.energies[-1])
        assert total == pytest.approx(bs.n_bands, rel=0.05)

    def test_dict_roundtrip(self, nacl):
        dos = compute_dos(compute_band_structure(nacl))
        back = DensityOfStates.from_dict(dos.as_dict())
        assert back.get_gap() == pytest.approx(dos.get_gap())

    def test_negative_density_rejected(self):
        with pytest.raises(MatgenError):
            DensityOfStates(np.array([0.0, 1.0]), np.array([1.0, -1.0]), 0.0)

    def test_bad_sigma(self, nacl):
        with pytest.raises(MatgenError):
            compute_dos(compute_band_structure(nacl), sigma=0)


class TestXRDAnalytic:
    """Validate the structure-factor machinery against closed forms."""

    def test_cscl_structure_factor_ratio(self):
        """CsCl: F = f_Cs + f_Cl for even h+k+l, f_Cs - f_Cl for odd.

        With Z_Cs = 55 and Z_Cl = 17 (and equal Debye-Waller factors at
        equal sin(theta)/lambda), the |F|^2 ratio between an even and an
        odd reflection at similar angle is ((55+17)/(55-17))^2 = 3.59 up
        to the form-factor falloff, which we remove analytically.
        """
        import math

        cscl = make_prototype("cscl", ["Cs", "Cl"])
        calc = XRDCalculator(two_theta_range=(10, 90), debye_waller_b=0.0)
        pattern = calc.get_pattern(cscl, scaled=False)
        by_hkl = {p_hkl: (tt, inten) for tt, inten, p_hkl in zip(
            pattern.two_theta, pattern.intensity, pattern.hkls)}

        def lp(two_theta):
            t = math.radians(two_theta / 2)
            return (1 + math.cos(2 * t) ** 2) / (
                math.sin(t) ** 2 * math.cos(t))

        # (1,0,0): odd sum -> difference; multiplicity 6 (100,010,001 x +-).
        # (1,1,0): even sum -> sum; multiplicity 12... compare F^2 per
        # reflection after removing LP and multiplicity.
        odd_tt, odd_i = by_hkl[(1, 0, 0)]
        even_tt, even_i = by_hkl[(1, 1, 0)]
        f2_odd = odd_i / lp(odd_tt) / 6
        f2_even = even_i / lp(even_tt) / 12
        expected = ((55 + 17) / (55 - 17)) ** 2
        assert f2_even / f2_odd == pytest.approx(expected, rel=1e-6)

    def test_friedel_pairs_merge(self, nacl):
        """(hkl) and (-h,-k,-l) diffract identically and share one peak."""
        pattern = XRDCalculator().get_pattern(nacl)
        # No duplicate two_theta entries after merging.
        assert len(set(round(t, 4) for t in pattern.two_theta)) == len(pattern)

    def test_intensity_scales_with_z_squared(self):
        """Heavier scatterers diffract (much) more strongly."""
        light = make_prototype("rocksalt", ["Li", "F"])   # Z = 3, 9
        heavy = make_prototype("rocksalt", ["Cs", "I"])   # Z = 55, 53
        calc = XRDCalculator(debye_waller_b=0.0)
        p_light = calc.get_pattern(light, scaled=False)
        p_heavy = calc.get_pattern(heavy, scaled=False)
        assert max(p_heavy.intensity) > 10 * max(p_light.intensity)
