"""Tests for the workflow engine: model, LaunchPad, Rocket, failure handling."""

import pytest

from repro.docstore import DocumentStore
from repro.errors import WorkflowError
from repro.fireworks import (
    Firework,
    Fuse,
    LaunchPad,
    OutputConditionFuse,
    Rocket,
    Stage,
    VaspAnalyzer,
    VaspBinder,
    Workflow,
    component_from_spec,
    vasp_firework,
    vasp_stage,
)
from repro.matgen import make_prototype


@pytest.fixture
def db():
    return DocumentStore()["mp_test"]


@pytest.fixture
def launchpad(db):
    return LaunchPad(db)


@pytest.fixture
def nacl():
    return make_prototype("rocksalt", ["Na", "Cl"])


def easy_incar():
    """Parameters that converge for any structure (gentlest settings)."""
    return {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 400,
            "EDIFF": 1e-5}


def generous_fw(structure, **kw):
    return vasp_firework(
        structure,
        incar=kw.pop("incar", easy_incar()),
        walltime_s=kw.pop("walltime_s", 1e9),
        memory_mb=kw.pop("memory_mb", 1e6),
        **kw,
    )


class TestModel:
    def test_stage_overrides_use_mongo_syntax(self):
        stage = Stage({"incar": {"AMIX": 0.4}, "resources": {"walltime_s": 100}})
        new = stage.apply_overrides(
            {"$set": {"incar.AMIX": 0.2}, "$inc": {"resources.walltime_s": 50}}
        )
        assert new["incar"]["AMIX"] == 0.2
        assert new["resources"]["walltime_s"] == 150
        assert stage["incar"]["AMIX"] == 0.4  # original untouched

    def test_component_serialization_roundtrip(self):
        fuse = OutputConditionFuse(condition={"band_gap": {"$gt": 1.0}},
                                   overrides={"$set": {"incar.ENCUT": 600}})
        back = component_from_spec(fuse.to_spec())
        assert isinstance(back, OutputConditionFuse)
        assert back.condition == {"band_gap": {"$gt": 1.0}}

    def test_unknown_component_rejected(self):
        with pytest.raises(WorkflowError):
            component_from_spec({"_type": "FluxCapacitor", "params": {}})

    def test_binder_key(self, nacl):
        binder = VaspBinder()
        spec = vasp_stage(nacl, functional="GGA")
        spec2 = vasp_stage(nacl, functional="GGA+U")
        assert binder.key(spec) != binder.key(spec2)
        assert binder.key(spec) == binder.key(vasp_stage(nacl, functional="GGA"))

    def test_workflow_dag_validation(self, nacl):
        a = generous_fw(nacl, name="a")
        b = generous_fw(nacl, name="b")
        b.parents = [a]
        wf = Workflow([a, b])
        assert wf.roots() == [a]
        assert wf.leaves() == [b]

    def test_cycle_detection(self, nacl):
        a = generous_fw(nacl, name="a")
        b = generous_fw(nacl, name="b")
        a.parents = [b]
        b.parents = [a]
        with pytest.raises(WorkflowError):
            Workflow([a, b])

    def test_parent_outside_workflow_rejected(self, nacl):
        a = generous_fw(nacl, name="a")
        b = generous_fw(nacl, name="b")
        b.parents = [a]
        with pytest.raises(WorkflowError):
            Workflow([b])

    def test_empty_workflow_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow([])


class TestLaunchPad:
    def test_add_workflow_inserts_engine_docs(self, launchpad, nacl):
        wf = Workflow([generous_fw(nacl)])
        result = launchpad.add_workflow(wf)
        assert result["added"] == 1
        doc = launchpad.engines.find_one({"workflow_id": wf.workflow_id})
        assert doc["state"] == "READY"

    def test_children_start_waiting(self, launchpad, nacl):
        a = generous_fw(nacl, name="parent")
        b = generous_fw(nacl.substitute({"Na": "Li"}), name="child")
        b.parents = [a]
        launchpad.add_workflow(Workflow([a, b]))
        assert launchpad.fw_state(a.fw_id) == "READY"
        assert launchpad.fw_state(b.fw_id) == "WAITING"

    def test_classad_style_checkout(self, launchpad):
        """The §III-B2 query shape selects jobs by input attributes."""
        li2o = make_prototype("fluorite", ["O", "Li"]).substitute({})  # O Li2? no
        licl = make_prototype("rocksalt", ["Li", "Cl"])
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        launchpad.add_workflow(Workflow([generous_fw(licl), generous_fw(nacl)]))
        claimed = launchpad.checkout_firework(
            {"spec.elements": {"$all": ["Li", "Cl"]},
             "spec.nelectrons": {"$lte": 200}}
        )
        assert claimed is not None
        assert claimed["spec"]["formula"] == "LiCl"
        assert claimed["state"] == "RUNNING"

    def test_checkout_empty_queue(self, launchpad):
        assert launchpad.checkout_firework() is None

    def test_duplicate_detection_on_submission(self, launchpad, nacl):
        r1 = launchpad.add_workflow(Workflow([generous_fw(nacl)]))
        r2 = launchpad.add_workflow(Workflow([generous_fw(nacl)]))
        assert r1["duplicates"] == 0
        assert r2["duplicates"] == 1

    def test_idempotent_resubmission_after_completion(self, launchpad, nacl):
        """Submit, run to completion, submit again: the second points at
        the stored result instead of re-running (§III-C3)."""
        launchpad.add_workflow(Workflow([generous_fw(nacl)]))
        Rocket(launchpad).rapidfire()
        assert launchpad.tasks.count_documents({"state": "COMPLETED"}) == 1
        r2 = launchpad.add_workflow(Workflow([generous_fw(nacl)]))
        assert r2["duplicates"] == 1
        dup = launchpad.engines.find_one({"duplicate_of": {"$exists": True}})
        assert dup["state"] == "COMPLETED"
        assert dup["task_id"] is not None
        # No new task was created.
        assert launchpad.tasks.count_documents({}) == 1

    def test_approval_gated_fuse(self, launchpad, nacl):
        fw = generous_fw(nacl)
        fw.fuse = Fuse(requires_approval=True)
        launchpad.add_workflow(Workflow([fw]))
        assert launchpad.fw_state(fw.fw_id) == "WAITING"
        assert launchpad.checkout_firework() is None
        launchpad.approve(fw.fw_id)
        assert launchpad.fw_state(fw.fw_id) == "READY"
        assert launchpad.checkout_firework() is not None


class TestRocketExecution:
    def test_single_launch_completes(self, launchpad, nacl):
        launchpad.add_workflow(Workflow([generous_fw(nacl)]))
        rocket = Rocket(launchpad)
        fw_doc = rocket.launch()
        assert fw_doc is not None
        task = launchpad.tasks.find_one({"fw_id": fw_doc["fw_id"]})
        assert task["state"] == "COMPLETED"
        assert task["energy"] < 0
        assert task["formula"] == "NaCl"

    def test_rapidfire_drains_queue(self, launchpad):
        structures = [
            make_prototype("rocksalt", [m, "O"]) for m in ("Mg", "Ca", "Sr")
        ]
        launchpad.add_workflow(Workflow([generous_fw(s) for s in structures]))
        n = Rocket(launchpad).rapidfire()
        assert n == 3
        assert launchpad.tasks.count_documents({"state": "COMPLETED"}) == 3

    def test_dag_order_respected(self, launchpad, nacl):
        a = generous_fw(nacl, name="relax")
        b = generous_fw(nacl.substitute({"Na": "Li"}), name="static")
        b.parents = [a]
        wf = Workflow([a, b])
        launchpad.add_workflow(wf)
        rocket = Rocket(launchpad)
        first = rocket.launch()
        assert first["fw_id"] == a.fw_id
        # After the parent completes, the child is released and runs.
        second = rocket.launch()
        assert second["fw_id"] == b.fw_id
        assert launchpad.workflow_complete(wf.workflow_id)

    def test_output_condition_fuse_blocks_and_releases(self, launchpad):
        """Child requiring an insulating parent (band_gap > 0.5)."""
        nacl = make_prototype("rocksalt", ["Na", "Cl"])  # insulator
        a = generous_fw(nacl, name="relax")
        b = generous_fw(nacl.substitute({"Cl": "Br"}), name="followup")
        b.parents = [a]
        b.fuse = OutputConditionFuse(condition={"band_gap": {"$gt": 0.5}})
        launchpad.add_workflow(Workflow([a, b]))
        rocket = Rocket(launchpad)
        rocket.launch()
        assert launchpad.fw_state(b.fw_id) == "READY"
        rocket.launch()
        assert launchpad.fw_state(b.fw_id) == "COMPLETED"

    def test_output_condition_fuse_stays_blocked_for_metal(self, launchpad):
        fe = make_prototype("bcc", ["Fe"])  # metal: gap ~ 0
        a = generous_fw(fe, name="relax")
        b = generous_fw(make_prototype("fcc", ["Fe"]), name="followup")
        b.parents = [a]
        b.fuse = OutputConditionFuse(condition={"band_gap": {"$gt": 0.5}})
        launchpad.add_workflow(Workflow([a, b]))
        rocket = Rocket(launchpad)
        rocket.launch()
        assert launchpad.fw_state(b.fw_id) == "WAITING"

    def test_fuse_overrides_recorded(self, launchpad, nacl):
        a = generous_fw(nacl, name="relax")
        b = generous_fw(nacl.substitute({"Na": "K"}), name="hires")
        b.parents = [a]
        b.fuse = Fuse(overrides={"$set": {"incar.ENCUT": 800}})
        launchpad.add_workflow(Workflow([a, b]))
        rocket = Rocket(launchpad)
        rocket.launch()
        doc = launchpad.engines.find_one({"fw_id": b.fw_id})
        assert doc["spec"]["incar"]["ENCUT"] == 800
        assert doc["fuse_overrides_applied"] == {"$set": {"incar.ENCUT": 800}}


class TestFailureHandling:
    def test_walltime_rerun_until_success(self, launchpad, nacl):
        """The paper's re-run case: killed jobs restart with more walltime."""
        fw = vasp_firework(nacl, incar=easy_incar(), walltime_s=1000.0,
                           memory_mb=1e6)
        launchpad.add_workflow(Workflow([fw]))
        rocket = Rocket(launchpad)
        launches = rocket.rapidfire()
        doc = launchpad.engines.find_one({"fw_id": fw.fw_id})
        assert doc["state"] == "COMPLETED"
        assert launches > 1  # needed at least one rerun
        assert doc["spec"]["resources"]["walltime_s"] > 1000.0  # escalated

    def test_oom_rerun_scales_memory(self, launchpad, nacl):
        fw = vasp_firework(nacl, incar=easy_incar(), walltime_s=1e9,
                           memory_mb=200.0)
        launchpad.add_workflow(Workflow([fw]))
        Rocket(launchpad).rapidfire()
        doc = launchpad.engines.find_one({"fw_id": fw.fw_id})
        assert doc["state"] == "COMPLETED"
        assert doc["spec"]["resources"]["memory_mb"] > 200.0

    def test_scf_detour_softens_parameters(self, launchpad):
        """The paper's detour case: SCF failures retry with changed inputs."""
        hard = _hard_structure()
        fw = vasp_firework(
            hard,
            incar={"ENCUT": 520, "AMIX": 0.9, "ALGO": "Fast", "NELM": 40,
                   "EDIFF": 1e-5},
            walltime_s=1e9, memory_mb=1e6,
        )
        launchpad.add_workflow(Workflow([fw]))
        Rocket(launchpad).rapidfire()
        doc = launchpad.engines.find_one({"fw_id": fw.fw_id})
        assert doc["state"] == "COMPLETED"
        assert doc["detours"] >= 1
        assert doc["spec"]["incar"]["AMIX"] < 0.9  # softened
        history = doc.get("resubmit_history", [])
        assert len(history) >= 1

    def test_unfixable_workflow_flagged_for_manual_intervention(
        self, launchpad, nacl
    ):
        """Beyond automated repair → abort + manual-intervention flag."""
        fw = vasp_firework(nacl, incar=easy_incar(), walltime_s=1e9,
                           memory_mb=1e6)
        # Sabotage: an unknown failure kind cannot be repaired.
        fw.spec["code"] = "mystery_code"
        wf = Workflow([fw])
        launchpad.add_workflow(wf)
        Rocket(launchpad).rapidfire()
        assert launchpad.fw_state(fw.fw_id) == "FIZZLED"
        flagged = launchpad.flagged_workflows()
        assert any(w["workflow_id"] == wf.workflow_id for w in flagged)

    def test_abort_defuses_descendants(self, launchpad, nacl):
        a = vasp_firework(nacl, incar=easy_incar())
        a.spec["code"] = "mystery_code"  # will fizzle
        b = vasp_firework(nacl.substitute({"Na": "Li"}), incar=easy_incar())
        b.parents = [a]
        launchpad.add_workflow(Workflow([a, b]))
        Rocket(launchpad).rapidfire()
        assert launchpad.fw_state(a.fw_id) == "FIZZLED"
        assert launchpad.fw_state(b.fw_id) == "DEFUSED"

    def test_max_launches_bound(self, db, nacl):
        """Even repairable failures stop after the launch budget."""
        launchpad = LaunchPad(db, max_launches=2)
        fw = vasp_firework(nacl, incar=easy_incar(), walltime_s=0.0001,
                           memory_mb=1e6)
        # walltime so small that even doubling never catches the need
        launchpad.add_workflow(Workflow([fw]))
        Rocket(launchpad).rapidfire(max_launches=10)
        assert launchpad.fw_state(fw.fw_id) == "FIZZLED"


def _hard_structure():
    from repro.dft import structure_difficulty
    from repro.matgen import ELEMENTS

    for el in (e.symbol for e in ELEMENTS if e.is_metal):
        for proto in ("rocksalt", "zincblende", "cscl"):
            s = make_prototype(proto, [el, "O"])
            if structure_difficulty(s) > 0.9:
                return s
    raise RuntimeError("no hard structure found")


class TestOverheadLedger:
    def test_db_overhead_negligible_vs_simulated_calc(self, launchpad):
        """§III-C: workflow-engine overhead is a negligible fraction of
        the (simulated) calculation time."""
        structures = [
            make_prototype("rocksalt", [m, "O"])
            for m in ("Mg", "Ca", "Sr", "Ba", "Ni")
        ]
        launchpad.add_workflow(
            Workflow([generous_fw(s) for s in structures])
        )
        rocket = Rocket(launchpad)
        rocket.rapidfire()
        assert rocket.simulated_calc_s > 0
        assert rocket.overhead_fraction() < 0.05
