"""Tests for distributed tracing, currentOp/killOp, and the provenance DAG."""

import json
import threading
import urllib.request

import pytest

from repro.api import MaterialsAPI, MaterialsAPIServer, QueryEngine
from repro.builders import MaterialsBuilder, XRDBuilder
from repro.docstore import (
    DatastoreProxy,
    DatastoreServer,
    DocumentStore,
    RemoteClient,
    ShardedCollection,
    query_shape,
)
from repro.errors import NotFoundError, OperationKilled
from repro.fireworks import LaunchPad, Rocket, Workflow
from repro.matgen import make_prototype
from repro.obs import (
    MetricsRegistry,
    clear_traces,
    export_traces,
    format_provenance,
    format_trace,
    get_registry,
    provenance_graph,
    remote_span,
    set_registry,
    span,
    stitch_spans,
    trace_context,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    """Isolate each test behind its own metrics registry and trace buffer."""
    previous = get_registry()
    registry = MetricsRegistry()
    set_registry(registry)
    clear_traces()
    yield registry
    set_registry(previous)


@pytest.fixture
def store():
    return DocumentStore()


@pytest.fixture
def server(store):
    srv = DatastoreServer(store)
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    c = RemoteClient("127.0.0.1", server.port)
    yield c
    c.close()


class TestTraceIds:
    def test_root_span_ids_are_hex_and_unique(self):
        with span("a") as a:
            pass
        with span("b") as b:
            pass
        assert a.span_id != b.span_id
        assert a.trace_id == a.span_id
        int(a.span_id, 16)  # valid hex

    def test_children_share_trace_id(self):
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_span_id == outer.span_id

    def test_trace_context_none_without_span(self):
        assert trace_context() is None

    def test_trace_context_reflects_current_span(self):
        with span("work") as s:
            ctx = trace_context()
            assert ctx == {"trace_id": s.trace_id, "span_id": s.span_id}

    def test_remote_span_continues_foreign_trace(self):
        ctx = {"trace_id": "cafe000000000001", "span_id": "cafe000000000002"}
        with remote_span("wire.find", ctx) as s:
            assert s.trace_id == "cafe000000000001"
            assert s.parent_span_id == "cafe000000000002"
        assert export_traces("cafe000000000001")

    def test_remote_span_without_context_is_plain_span(self):
        with remote_span("wire.find", None) as s:
            assert s.trace_id == s.span_id


class TestStitchAndFormat:
    def test_stitch_grafts_remote_root_under_client_span(self):
        with span("query") as root:
            with span("client.find"):
                ctx = trace_context()
        with remote_span("wire.find", ctx):
            pass
        exported = export_traces(root.trace_id)
        stitched = stitch_spans([root.to_dict()] + exported)
        assert len(stitched) == 1
        text = format_trace([root.to_dict()] + exported)
        assert "client.find" in text and "wire.find" in text
        # The server span renders indented under the client span.
        client_line = next(i for i, l in enumerate(text.splitlines())
                           if "client.find" in l)
        wire_line = next(i for i, l in enumerate(text.splitlines())
                         if "wire.find" in l)
        assert wire_line > client_line

    def test_unmatched_roots_stay_top_level(self):
        with span("lonely") as s:
            pass
        stitched = stitch_spans([s.to_dict()])
        assert stitched[0]["name"] == "lonely"

    def test_format_trace_marks_errors(self):
        with pytest.raises(ValueError):
            with span("boom") as s:
                raise ValueError("nope")
        assert "[error: ValueError: nope]" in format_trace(s)


class TestWireTracePropagation:
    def test_single_trace_across_client_and_server(self, store, client):
        store["mp"].set_profiling_level(2)
        coll = client["mp"]["tasks"]
        coll.insert_one({"task_id": "t1"})
        with span("tour.remote_query") as root:
            coll.find({"task_id": "t1"})
        client_spans = root.find("client.find")
        assert client_spans and client_spans[0].trace_id == root.trace_id
        # The server recorded profile entries under the same trace id.
        profiled = [e for e in store["mp"].profile_log
                    if e.get("trace_id") == root.trace_id]
        assert any(e["op"] == "find" for e in profiled)
        # The server's span buffer exports and stitches under the client.
        server_spans = client.export_traces(root.trace_id)
        assert server_spans
        text = format_trace([root.to_dict()] + server_spans)
        assert text.count("trace ") == 1
        assert "wire.find" in text

    def test_untraced_request_adds_no_trace_field(self, store, client):
        client["mp"]["tasks"].insert_one({"task_id": "t2"})
        client["mp"]["tasks"].find({})
        assert client.export_traces() == []

    def test_trace_through_proxy(self, server, store):
        store["mp"].set_profiling_level(2)
        with DatastoreProxy("127.0.0.1", server.port) as proxy:
            with proxy.client() as c:
                c["mp"]["tasks"].insert_one({"task_id": "t1"})
                with span("tour.via_proxy") as root:
                    c["mp"]["tasks"].find({"task_id": "t1"})
                exported = c.export_traces(root.trace_id)
        # Both the proxy hop and the server dispatch joined the trace.
        names = {d["name"] for d in exported}
        assert "proxy.forward" in names
        assert any(n.startswith("wire.") for n in names)
        text = format_trace([root.to_dict()] + exported)
        assert text.count("trace ") == 1
        lines = text.splitlines()
        order = [next(i for i, l in enumerate(lines) if key in l)
                 for key in ("client.find", "proxy.forward", "wire.find")]
        assert order == sorted(order)

    def test_sharded_query_through_proxy_one_trace(self, server, store):
        """The acceptance scenario: sharded remote store behind the proxy."""
        store["mp"].set_profiling_level(2)
        with DatastoreProxy("127.0.0.1", server.port) as proxy:
            with proxy.client() as c:
                shards = [c["mp"]["tasks_shard0"], c["mp"]["tasks_shard1"]]
                sc = ShardedCollection("tasks", "mps_id", shards)
                sc.insert_many(
                    [{"mps_id": f"mps-{i}", "n": i} for i in range(10)]
                )
                with span("tour.sharded_query") as root:
                    docs = sc.find({})
                exported = c.export_traces(root.trace_id)
        assert len(docs) == 10
        # Fan-out children carry the root's trace id locally...
        assert root.find("sharded.find")
        assert all(s.trace_id == root.trace_id
                   for s in root.find("shard.find"))
        # ...and every server-side dispatch joined the same trace.
        assert all(d["trace_id"] == root.trace_id for d in exported)
        profiled = {e["ns"] for e in store["mp"].profile_log
                    if e.get("trace_id") == root.trace_id}
        assert {"mp.tasks_shard0", "mp.tasks_shard1"} <= profiled
        assert format_trace([root.to_dict()] + exported).count("trace ") == 1


class TestCurrentOpKillOp:
    def test_query_shape_elides_values(self):
        shape = query_shape({"state": "READY", "n": {"$lte": 200},
                             "tags": {"$in": [1, 2, 3, 4, 5, 6]}})
        assert shape["state"] == "?str"
        assert shape["n"] == {"$lte": "?int"}
        assert shape["tags"]["$in"][-1] == "..."

    def test_current_op_empty_when_idle(self, store):
        assert store.current_op() == []
        assert store.kill_op(999) is False

    def test_killed_find_raises_cleanly(self, store):
        coll = store["mp"]["tasks"]
        coll.insert_many([{"n": i} for i in range(10)])
        started, release = threading.Event(), threading.Event()
        original = coll._candidates

        def gated(query, matcher):
            for doc in original(query, matcher):
                started.set()
                release.wait(timeout=5)
                yield doc

        coll._candidates = gated
        failures = []

        def scan():
            try:
                coll.find({}).to_list()
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        t = threading.Thread(target=scan)
        t.start()
        assert started.wait(timeout=5)
        ops = store.current_op()
        assert len(ops) == 1
        assert ops[0]["op"] == "find" and ops[0]["ns"] == "mp.tasks"
        assert store.kill_op(ops[0]["opid"]) is True
        release.set()
        t.join(timeout=5)
        assert len(failures) == 1
        assert isinstance(failures[0], OperationKilled)
        # The table is clean again: finish() ran despite the raise.
        assert store.current_op() == []

    def test_inflight_mapreduce_listed_and_killed(self, store):
        coll = store["mp"]["tasks"]
        coll.insert_many([{"mps_id": f"m{i}", "e": float(i)}
                          for i in range(10)])
        started, release = threading.Event(), threading.Event()
        failures = []

        def mapper(doc):
            started.set()
            release.wait(timeout=5)
            yield doc["mps_id"], doc["e"]

        def job():
            try:
                coll.map_reduce(mapper, lambda k, vs: min(vs))
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        t = threading.Thread(target=job)
        t.start()
        assert started.wait(timeout=5)
        ops = store.current_op()
        assert any(o["op"] == "mapreduce" for o in ops)
        opid = next(o["opid"] for o in ops if o["op"] == "mapreduce")
        assert store.kill_op(opid) is True
        release.set()
        t.join(timeout=5)
        assert len(failures) == 1
        assert isinstance(failures[0], OperationKilled)
        assert store.current_op() == []

    def test_current_op_and_kill_op_over_wire(self, store, client):
        coll = store["mp"]["tasks"]
        coll.insert_many([{"n": i} for i in range(5)])
        started, release = threading.Event(), threading.Event()
        original = coll._candidates

        def gated(query, matcher):
            for doc in original(query, matcher):
                started.set()
                release.wait(timeout=5)
                yield doc

        coll._candidates = gated
        failures = []

        def scan():
            try:
                coll.find({}).to_list()
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        t = threading.Thread(target=scan)
        t.start()
        assert started.wait(timeout=5)
        ops = client.current_op()
        assert ops and ops[0]["query_shape"] is not None
        assert client.kill_op(ops[0]["opid"]) is True
        release.set()
        t.join(timeout=5)
        assert isinstance(failures[0], OperationKilled)

    def test_system_collections_not_tracked(self, store):
        db = store["mp"]
        db.set_profiling_level(2)
        db["tasks"].insert_one({"n": 1})
        db["tasks"].find({}).to_list()
        # Profiler reads its own system.profile without registering ops.
        assert db.profile_log
        assert store.current_op() == []


def _run_small_workflow(db):
    """One real launch so task docs carry launcher provenance stamps."""
    from tests.test_fireworks import generous_fw

    nacl = make_prototype("rocksalt", ["Na", "Cl"])
    launchpad = LaunchPad(db)
    workflow = Workflow([generous_fw(nacl, mps_id="mps-nacl")])
    launchpad.add_workflow(workflow)
    Rocket(launchpad).rapidfire()
    return workflow


class TestProvenance:
    def test_launcher_stamps_tasks(self):
        db = DocumentStore()["mp"]
        wf = _run_small_workflow(db)
        task = db["tasks"].find_one({"state": "COMPLETED"})
        prov = task["provenance"]
        assert prov["source"] == "launcher"
        assert prov["workflow_id"] == wf.workflow_id
        assert prov["trace_id"] is not None
        assert prov["source_task_ids"] == []

    def test_graph_resolves_source_task_ids(self):
        db = DocumentStore()["mp"]
        _run_small_workflow(db)
        MaterialsBuilder(db).run()
        material = db["materials"].find_one({})
        graph = provenance_graph(db, material["material_id"])
        task_ids = {t["_id"] for t in db["tasks"].find({"state": "COMPLETED"})}
        graph_tasks = {n["id"] for n in graph["nodes"] if n["kind"] == "task"}
        assert graph_tasks == {f"task:{tid}" for tid in task_ids}
        kinds = {n["kind"] for n in graph["nodes"]}
        assert {"material", "task", "firework", "workflow"} <= kinds
        assert material["provenance"]["source_task_ids"]
        rendered = format_provenance(graph)
        assert graph["root"] in rendered and "<-built_from-" in rendered

    def test_unknown_material_raises(self):
        db = DocumentStore()["mp"]
        with pytest.raises(NotFoundError):
            provenance_graph(db, "mp-404")

    def test_derived_builder_stamps_sources(self):
        db = DocumentStore()["mp"]
        _run_small_workflow(db)
        MaterialsBuilder(db).run()
        XRDBuilder(db).run()
        xrd = db["xrd"].find_one({})
        prov = xrd["provenance"]
        assert prov["builder"] == "xrd"
        assert prov["source_material_ids"] == [xrd["material_id"]]


class TestHTTPEndpoints:
    def _serve(self, db):
        return MaterialsAPIServer(MaterialsAPI(QueryEngine(db)))

    def test_ops_endpoint(self):
        db = DocumentStore()["mp"]
        with self._serve(db) as srv:
            with urllib.request.urlopen(f"{srv.base_url}/ops") as resp:
                body = json.loads(resp.read())
        assert body == {"inprog": []}

    def test_provenance_endpoint(self):
        db = DocumentStore()["mp"]
        _run_small_workflow(db)
        MaterialsBuilder(db).run()
        material_id = db["materials"].find_one({})["material_id"]
        with self._serve(db) as srv:
            url = f"{srv.base_url}/provenance/{material_id}"
            with urllib.request.urlopen(url) as resp:
                graph = json.loads(resp.read())
            assert graph["material_id"] == material_id
            assert any(n["kind"] == "task" for n in graph["nodes"])
            missing = f"{srv.base_url}/provenance/mp-404"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(missing)
            assert err.value.code == 404


class TestWireErrorAccounting:
    def test_error_bytes_counted_with_error_label(self, fresh_registry,
                                                  client):
        with pytest.raises(Exception):
            client.request({"op": "frobnicate", "db": "mp", "coll": "x"})
        snapshot = fresh_registry.snapshot()
        errors = snapshot["repro_wire_errors_total"]["series"]
        assert any("WireProtocolError" in labels for labels in errors)
        traffic = snapshot["repro_wire_bytes_total"]["series"]
        assert any('error="WireProtocolError"' in labels and value > 0
                   for labels, value in traffic.items())


class TestTaskfarmSpans:
    def test_execute_traces_slots_and_tasks(self):
        from repro.hpc import FarmTask, TaskFarm

        farm = TaskFarm(
            [FarmTask(f"t{i}", estimated_runtime_s=10.0) for i in range(4)],
            n_slots=2,
        )
        with span("farm.root") as root:
            out = farm.execute(
                lambda task: task.estimated_runtime_s * 2
            )
        assert out["results"] == {f"t{i}": 20.0 for i in range(4)}
        assert out["failures"] == {}
        assert len(root.find("taskfarm.slot")) == 2
        assert len(root.find("taskfarm.task")) == 4

    def test_execute_captures_task_failures(self):
        from repro.hpc import FarmTask, TaskFarm

        farm = TaskFarm([FarmTask("ok", 5.0), FarmTask("bad", 5.0)],
                        n_slots=1)

        def runner(task):
            if task.name == "bad":
                raise RuntimeError("exploded")
            return 1

        out = farm.execute(runner)
        assert out["results"] == {"ok": 1}
        assert out["failures"] == {"bad": "RuntimeError: exploded"}
