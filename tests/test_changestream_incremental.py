"""Tests for change streams, bulk_write, and the incremental builder."""

import pytest

from repro.builders import IncrementalMaterialsBuilder, MaterialsBuilder
from repro.docstore import ChangeStream, Collection, DocumentStore
from repro.errors import DocstoreError, DuplicateKeyError
from repro.matgen import make_prototype


class TestChangeStream:
    def test_insert_update_delete_events(self):
        coll = Collection("c")
        stream = coll.watch()
        coll.insert_one({"_id": 1, "v": 0})
        coll.update_one({"_id": 1}, {"$set": {"v": 1}})
        coll.delete_one({"_id": 1})
        events = stream.drain()
        assert [e.operation for e in events] == ["insert", "update", "delete"]
        assert events[0].document == {"_id": 1, "v": 0}
        assert events[1].document["v"] == 1
        assert events[2].document_id == 1

    def test_sequence_numbers_monotone(self):
        coll = Collection("c")
        stream = coll.watch()
        coll.insert_many([{"i": i} for i in range(5)])
        seqs = [e.seq for e in stream.drain()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_drain_with_limit(self):
        coll = Collection("c")
        stream = coll.watch()
        coll.insert_many([{} for _ in range(10)])
        assert len(stream.drain(max_events=4)) == 4
        assert stream.pending() == 6

    def test_overflow_forces_resync(self):
        coll = Collection("c")
        stream = coll.watch(max_buffer=5)
        coll.insert_many([{} for _ in range(10)])
        with pytest.raises(DocstoreError):
            stream.drain()
        # After the overflow error, the stream is usable again.
        coll.insert_one({})
        assert len(stream.drain()) == 1

    def test_closed_stream_ignores_writes(self):
        coll = Collection("c")
        stream = coll.watch()
        stream.close()
        coll.insert_one({})
        assert stream.pending() == 0

    def test_multiple_independent_streams(self):
        coll = Collection("c")
        a = coll.watch()
        b = coll.watch()
        coll.insert_one({})
        assert len(a.drain()) == 1
        assert len(b.drain()) == 1


class TestBulkWrite:
    def test_mixed_batch(self):
        coll = Collection("c")
        result = coll.bulk_write([
            {"insert_one": {"document": {"_id": 1, "v": 0}}},
            {"insert_one": {"document": {"_id": 2, "v": 0}}},
            {"update_one": {"filter": {"_id": 1}, "update": {"$inc": {"v": 5}}}},
            {"update_many": {"filter": {}, "update": {"$set": {"tag": "x"}}}},
            {"delete_one": {"filter": {"_id": 2}}},
        ])
        assert result.inserted_count == 2
        assert result.deleted_count == 1
        assert coll.find_one({"_id": 1})["v"] == 5

    def test_upsert_counts_as_insert(self):
        coll = Collection("c")
        result = coll.bulk_write([
            {"update_one": {"filter": {"k": 1}, "update": {"$set": {"v": 1}},
                            "upsert": True}},
        ])
        assert result.inserted_count == 1

    def test_ordered_stops_at_error_with_partial_result(self):
        coll = Collection("c")
        coll.insert_one({"_id": 1})
        with pytest.raises(DuplicateKeyError) as excinfo:
            coll.bulk_write([
                {"insert_one": {"document": {"_id": 2}}},
                {"insert_one": {"document": {"_id": 1}}},  # duplicate
                {"insert_one": {"document": {"_id": 3}}},  # never reached
            ])
        assert excinfo.value.partial_result.inserted_count == 1
        assert coll.find_one({"_id": 3}) is None

    def test_unordered_skips_errors(self):
        coll = Collection("c")
        coll.insert_one({"_id": 1})
        result = coll.bulk_write([
            {"insert_one": {"document": {"_id": 1}}},  # duplicate: skipped
            {"insert_one": {"document": {"_id": 3}}},
        ], ordered=False)
        assert result.inserted_count == 1
        assert coll.find_one({"_id": 3}) is not None

    def test_malformed_op_rejected(self):
        coll = Collection("c")
        with pytest.raises(DocstoreError):
            coll.bulk_write([{"explode": {}}])
        with pytest.raises(DocstoreError):
            coll.bulk_write([{"a": 1, "b": 2}])


class TestIncrementalBuilder:
    def _task(self, structure, mps_id, encut=520):
        from tests.test_builders import _insert_task

        return _insert_task  # reuse the canonical task factory

    def test_refreshes_only_touched_groups(self):
        from tests.test_builders import _insert_task

        db = DocumentStore()["mp"]
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        kcl = make_prototype("rocksalt", ["K", "Cl"])
        _insert_task(db, nacl, "mps-nacl")
        _insert_task(db, kcl, "mps-kcl")
        MaterialsBuilder(db).run()

        builder = IncrementalMaterialsBuilder(db)
        builder.stream.drain()  # ignore history before we start tailing

        # A better NaCl task arrives; KCl untouched.
        _insert_task(db, nacl, "mps-nacl", encut=800)
        result = builder.process_pending()
        assert result["mode"] == "incremental"
        assert result["materials_refreshed"] == 1
        mat = db["materials"].find_one({"mps_id": "mps-nacl"})
        assert mat["provenance"]["parameters"]["ENCUT"] == 800

    def test_new_mps_group_creates_material(self):
        from tests.test_builders import _insert_task

        db = DocumentStore()["mp"]
        MaterialsBuilder(db)  # initialize indexes
        builder = IncrementalMaterialsBuilder(db)
        _insert_task(db, make_prototype("rocksalt", ["Mg", "O"]), "mps-mgo")
        result = builder.process_pending()
        assert result["materials_refreshed"] == 1
        assert db["materials"].find_one({"mps_id": "mps-mgo"}) is not None

    def test_material_ids_stable_across_refreshes(self):
        from tests.test_builders import _insert_task

        db = DocumentStore()["mp"]
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        _insert_task(db, nacl, "mps-nacl")
        MaterialsBuilder(db).run()
        before = db["materials"].find_one({"mps_id": "mps-nacl"})["material_id"]
        builder = IncrementalMaterialsBuilder(db)
        builder.stream.drain()
        _insert_task(db, nacl, "mps-nacl", encut=900)
        builder.process_pending()
        after = db["materials"].find_one({"mps_id": "mps-nacl"})["material_id"]
        assert before == after

    def test_task_deletion_retires_material(self):
        from tests.test_builders import _insert_task

        db = DocumentStore()["mp"]
        nacl = make_prototype("rocksalt", ["Na", "Cl"])
        _insert_task(db, nacl, "mps-nacl")
        MaterialsBuilder(db).run()
        builder = IncrementalMaterialsBuilder(db)
        builder.stream.drain()
        db["tasks"].delete_many({"mps_id": "mps-nacl"})
        builder.process_pending()
        assert db["materials"].find_one({"mps_id": "mps-nacl"}) is None

    def test_incremental_matches_batch_rebuild(self):
        """The invariant: incremental state == a fresh batch build."""
        from tests.test_builders import _insert_task

        db = DocumentStore()["mp"]
        MaterialsBuilder(db)
        builder = IncrementalMaterialsBuilder(db)
        for i, (metal, mid) in enumerate(
            [("Mg", "m1"), ("Ca", "m2"), ("Sr", "m3")]
        ):
            _insert_task(db, make_prototype("rocksalt", [metal, "O"]),
                         f"mps-{mid}", encut=400 + 100 * i)
            builder.process_pending()
        incremental = {
            d["mps_id"]: d["energy_per_atom"]
            for d in db["materials"].find({})
        }
        # Rebuild from scratch into a second database, compare.
        db2 = DocumentStore()["mp2"]
        for doc in db["tasks"].find({}):
            doc.pop("_id")
            db2["tasks"].insert_one(doc)
        MaterialsBuilder(db2).run()
        batch = {
            d["mps_id"]: d["energy_per_atom"]
            for d in db2["materials"].find({})
        }
        assert incremental == batch

    def test_overflow_triggers_full_rebuild(self):
        from tests.test_builders import _insert_task

        db = DocumentStore()["mp"]
        MaterialsBuilder(db)
        builder = IncrementalMaterialsBuilder(db)
        builder.stream.max_buffer = 3
        for i, metal in enumerate(["Mg", "Ca", "Sr", "Ba", "Ni"]):
            _insert_task(db, make_prototype("rocksalt", [metal, "O"]),
                         f"mps-{i}")
        result = builder.process_pending()
        assert result["mode"] == "full-rebuild"
        assert builder.full_rebuilds == 1
        assert db["materials"].count_documents() == 5
