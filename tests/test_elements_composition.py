"""Tests for the periodic table and composition parsing."""

import pytest

from repro.errors import CompositionError
from repro.matgen import Composition, Element, ELEMENTS, element


class TestElement:
    def test_basic_data(self):
        fe = Element("Fe")
        assert fe.Z == 26
        assert fe.name == "Iron"
        assert fe.atomic_mass == pytest.approx(55.845)
        assert fe.electronegativity == pytest.approx(1.83)

    def test_interning(self):
        assert Element("Fe") is Element("Fe")
        assert element("O") is Element("O")

    def test_unknown_symbol(self):
        with pytest.raises(CompositionError):
            Element("Xx")

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Element("Fe").Z = 99

    def test_ordering_by_z(self):
        assert Element("H") < Element("Fe") < Element("U")
        assert sorted([Element("O"), Element("Li")])[0] == Element("Li")

    def test_classifications(self):
        assert Element("Li").is_alkali
        assert Element("Fe").is_transition_metal
        assert not Element("O").is_metal
        assert Element("Fe").is_metal

    def test_oxidation_states(self):
        assert Element("O").min_oxidation_state == -2
        assert Element("Mn").max_oxidation_state == 7

    def test_noble_gas_chi_defaults_zero(self):
        assert Element("Ne").chi == 0.0

    def test_full_table_loaded(self):
        assert len(ELEMENTS) == 92
        assert all(e.atomic_mass > 0 for e in ELEMENTS)
        assert all(e.atomic_radius > 0 for e in ELEMENTS)

    def test_z_sequence_contiguous(self):
        zs = sorted(e.Z for e in ELEMENTS)
        assert zs == list(range(1, 93))


class TestCompositionParsing:
    def test_simple(self):
        c = Composition("Fe2O3")
        assert c["Fe"] == 2 and c["O"] == 3

    def test_implicit_one(self):
        c = Composition("LiFePO4")
        assert c["Li"] == 1 and c["P"] == 1 and c["O"] == 4

    def test_parentheses(self):
        c = Composition("Li(CoO2)2")
        assert c["Li"] == 1 and c["Co"] == 2 and c["O"] == 4

    def test_nested_parentheses(self):
        c = Composition("Ca(Al(OH)2)2")
        assert c.as_dict() == {"Ca": 1.0, "Al": 2.0, "O": 4.0, "H": 4.0}

    def test_fractional_amounts(self):
        c = Composition("Li0.5CoO2")
        assert c["Li"] == pytest.approx(0.5)

    def test_repeated_element_sums(self):
        c = Composition("FeOFe")
        assert c["Fe"] == 2

    def test_from_dict_and_kwargs(self):
        assert Composition({"Fe": 2, "O": 3}) == Composition(Fe=2, O=3)
        assert Composition("Fe2O3") == Composition(Fe=2, O=3)

    def test_invalid_formula(self):
        with pytest.raises(CompositionError):
            Composition("2FeO")
        with pytest.raises(CompositionError):
            Composition("Fe(O2")
        with pytest.raises(CompositionError):
            Composition("")
        with pytest.raises(CompositionError):
            Composition("Fe2O3)")

    def test_negative_amount_rejected(self):
        with pytest.raises(CompositionError):
            Composition({"Fe": -1})


class TestCompositionProperties:
    def test_num_atoms_and_weight(self):
        c = Composition("Fe2O3")
        assert c.num_atoms == 5
        assert c.weight == pytest.approx(2 * 55.845 + 3 * 15.999, rel=1e-6)

    def test_nelectrons(self):
        # The paper's job-matching field: Fe2O3 has 2*26 + 3*8 = 76.
        assert Composition("Fe2O3").nelectrons == 76

    def test_chemical_system(self):
        assert Composition("LiFePO4").chemical_system == "Fe-Li-O-P"

    def test_atomic_fraction(self):
        assert Composition("Fe2O3").get_atomic_fraction("O") == pytest.approx(0.6)

    def test_reduced_formula(self):
        assert Composition("Fe4O6").reduced_formula == "Fe2O3"
        assert Composition("Fe2O3").reduced_formula == "Fe2O3"
        assert Composition("Li2Fe2P2O8").reduced_formula == "LiFePO4"

    def test_formula_electronegativity_order(self):
        # Li (0.98) before Fe (1.83) before P (2.19) before O (3.44).
        assert Composition({"O": 4, "Li": 1, "P": 1, "Fe": 1}).formula == "LiFePO4"

    def test_alphabetical_formula(self):
        assert Composition("LiFePO4").alphabetical_formula == "FeLiO4P"

    def test_anonymized_formula(self):
        assert Composition("LiFePO4").anonymized_formula == "ABC D4".replace(" ", "")
        assert Composition("Fe2O3").anonymized_formula == "A2B3"

    def test_is_element(self):
        assert Composition("Fe").is_element
        assert not Composition("FeO").is_element

    def test_fractional_composition(self):
        fc = Composition("Fe2O3").fractional_composition()
        assert fc.num_atoms == pytest.approx(1.0)
        assert fc["Fe"] == pytest.approx(0.4)


class TestCompositionArithmetic:
    def test_add(self):
        assert Composition("FePO4") + Composition("Li") == Composition("LiFePO4")

    def test_sub(self):
        assert Composition("LiFePO4") - Composition("Li") == Composition("FePO4")

    def test_sub_negative_rejected(self):
        with pytest.raises(CompositionError):
            Composition("FeO") - Composition("Fe2O")

    def test_mul(self):
        assert Composition("FeO") * 2 == Composition("Fe2O2")
        assert (2 * Composition("FeO"))["Fe"] == 2

    def test_mul_nonpositive_rejected(self):
        with pytest.raises(CompositionError):
            Composition("FeO") * 0

    def test_equality_is_tolerant(self):
        a = Composition({"Fe": 1.0})
        b = Composition({"Fe": 1.0 + 1e-9})
        assert a == b

    def test_mapping_protocol(self):
        c = Composition("Fe2O3")
        assert len(c) == 2
        assert "Fe" in c and Element("O") in c and "Li" not in c
        assert c["Li"] == 0.0  # absent elements read as zero
        assert set(el.symbol for el in c) == {"Fe", "O"}

    def test_roundtrip_dict(self):
        c = Composition("LiFePO4")
        assert Composition.from_dict(c.as_dict()) == c
