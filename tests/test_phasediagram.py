"""Tests for convex-hull phase diagrams and battery electrode analysis."""

import pytest

from repro.errors import MatgenError
from repro.matgen import (
    Composition,
    ConversionElectrode,
    InsertionElectrode,
    PDEntry,
    PhaseDiagram,
)


@pytest.fixture
def li_o_entries():
    """A hand-built Li-O system with known hull structure.

    Formation energies per atom: Li2O -2.0 (stable), Li2O2 -1.6 (strictly
    below the Li2O-O tie line, stable), LiO2 -0.5 (unstable: the hull at
    x_O = 2/3 runs through Li2O2 + O at -1.0667 eV/atom).
    """
    return [
        PDEntry("Li", 0.0, entry_id="li"),
        PDEntry("O", 0.0, entry_id="o"),
        PDEntry("Li2O", -6.0, entry_id="li2o"),     # -2.0 eV/atom formation
        PDEntry("Li2O2", -6.4, entry_id="li2o2"),   # -1.6 eV/atom
        PDEntry("LiO2", -1.5, entry_id="lio2"),     # -0.5 eV/atom
    ]


class TestPhaseDiagram:
    def test_formation_energy(self, li_o_entries):
        pd = PhaseDiagram(li_o_entries)
        li2o = next(e for e in li_o_entries if e.entry_id == "li2o")
        assert pd.get_form_energy_per_atom(li2o) == pytest.approx(-2.0)

    def test_elemental_references_have_zero_formation(self, li_o_entries):
        pd = PhaseDiagram(li_o_entries)
        for e in li_o_entries[:2]:
            assert pd.get_form_energy_per_atom(e) == pytest.approx(0.0)

    def test_stable_entries(self, li_o_entries):
        pd = PhaseDiagram(li_o_entries)
        stable = {e.entry_id for e in pd.stable_entries}
        assert {"li", "o", "li2o", "li2o2"} <= stable
        # LiO2 at -0.5 eV/atom sits 0.567 eV/atom above the Li2O2-O tie line.
        assert "lio2" not in stable

    def test_e_above_hull(self, li_o_entries):
        pd = PhaseDiagram(li_o_entries)
        lio2 = next(e for e in li_o_entries if e.entry_id == "lio2")
        # Hull at x_O = 2/3 is (2/3) * (-1.6) = -1.0667; LiO2 is at -0.5.
        assert pd.get_e_above_hull(lio2) == pytest.approx(0.5667, abs=1e-3)
        li2o = next(e for e in li_o_entries if e.entry_id == "li2o")
        assert pd.get_e_above_hull(li2o) == pytest.approx(0.0, abs=1e-8)

    def test_decomposition_of_unstable(self, li_o_entries):
        pd = PhaseDiagram(li_o_entries)
        decomp = pd.get_decomposition(Composition("LiO2"))
        ids = {e.entry_id for e in decomp}
        assert ids == {"li2o2", "o"}
        assert sum(decomp.values()) == pytest.approx(1.0)

    def test_hull_energy_interpolates(self, li_o_entries):
        pd = PhaseDiagram(li_o_entries)
        # Midpoint of Li and Li2O tie line (x_O = 1/6): hull = -1.0 eV/atom.
        e = pd.get_hull_energy_per_atom(Composition({"Li": 5, "O": 1}))
        assert e == pytest.approx(-1.0, abs=1e-6)

    def test_missing_elemental_ref_rejected(self):
        with pytest.raises(MatgenError):
            PhaseDiagram([PDEntry("Li2O", -6.0)])

    def test_out_of_system_composition_rejected(self, li_o_entries):
        pd = PhaseDiagram(li_o_entries)
        with pytest.raises(MatgenError):
            pd.get_hull_energy_per_atom(Composition("NaCl"))

    def test_ternary_hull(self):
        entries = [
            PDEntry("Li", 0.0), PDEntry("Fe", 0.0), PDEntry("O", 0.0),
            PDEntry("Fe2O3", -8.0),
            PDEntry("Li2O", -6.0),
            PDEntry("LiFeO2", -7.2),
        ]
        pd = PhaseDiagram(entries)
        stable = {e.composition.reduced_formula for e in pd.stable_entries}
        assert "LiFeO2" in stable

    def test_reaction_energy(self, li_o_entries):
        pd = PhaseDiagram(li_o_entries)
        li = li_o_entries[0]
        o = li_o_entries[1]
        li2o = li_o_entries[2]
        # 2 Li + 1/2 O2-ish: use integer amounts 2Li + O -> Li2O.
        e = pd.get_reaction_energy([li, li, o], [li2o])
        assert e == pytest.approx(-6.0)

    def test_reaction_must_balance(self, li_o_entries):
        pd = PhaseDiagram(li_o_entries)
        with pytest.raises(MatgenError):
            pd.get_reaction_energy([li_o_entries[0]], [li_o_entries[2]])

    def test_summary(self, li_o_entries):
        pd = PhaseDiagram(li_o_entries)
        s = pd.summary()
        assert s["chemical_system"] == "Li-O"
        assert s["n_entries"] == 5
        assert "Li2O" in s["stable_formulas"]

    def test_duplicate_composition_keeps_lowest(self):
        entries = [
            PDEntry("Li", 0.0), PDEntry("O", 0.0),
            PDEntry("Li2O", -6.0), PDEntry("Li2O", -5.0),
        ]
        pd = PhaseDiagram(entries)
        stable = [e for e in pd.stable_entries
                  if e.composition.reduced_formula == "Li2O"]
        assert len(stable) == 1
        assert stable[0].energy == -6.0


class TestInsertionElectrode:
    def make_electrode(self, e_host=-10.0, e_lix=-14.0):
        """FePO4 + Li -> LiFePO4 with tunable energies.

        V = -(e_lix - e_host - 1 * e_li_ref) with e_li_ref = -1.9 (bcc Li
        cohesive-ish); defaults give V = -(-14 + 10 + 1.9) = 2.1 V... set
        per-test.
        """
        charged = PDEntry("FePO4", e_host)
        discharged = PDEntry("LiFePO4", e_lix)
        return InsertionElectrode([charged, discharged], "Li",
                                  ion_reference_epa=-1.9)

    def test_voltage_formula(self):
        elec = self.make_electrode(e_host=-10.0, e_lix=-15.4)
        # V = -(-15.4 + 10.0 + 1.9) / 1 = 3.5
        assert elec.average_voltage == pytest.approx(3.5)

    def test_capacity_lifepo4(self):
        elec = self.make_electrode()
        # Theoretical LiFePO4 capacity is ~170 mAh/g.
        assert elec.capacity_grav == pytest.approx(170, rel=0.02)

    def test_specific_energy(self):
        elec = self.make_electrode(e_host=-10.0, e_lix=-15.4)
        assert elec.specific_energy == pytest.approx(3.5 * elec.capacity_grav)

    def test_multistep_profile(self):
        entries = [
            PDEntry("FePO4", -10.0),
            PDEntry({"Li": 0.5, "Fe": 1, "P": 1, "O": 4}, -12.5),
            PDEntry("LiFePO4", -14.6),
        ]
        elec = InsertionElectrode(entries, "Li", ion_reference_epa=-1.9)
        assert len(elec.voltage_pairs) == 2
        v1, v2 = [p.voltage for p in elec.voltage_pairs]
        # First step: -(–12.5+10.0+0.5*1.9)/0.5 = 3.1; second: -(-14.6+12.5+0.95)/0.5
        assert v1 == pytest.approx(3.1)
        assert v2 == pytest.approx(2.3)
        assert elec.max_voltage > elec.min_voltage

    def test_framework_mismatch_rejected(self):
        with pytest.raises(MatgenError):
            InsertionElectrode(
                [PDEntry("FePO4", -10), PDEntry("LiCoO2", -12)],
                "Li", ion_reference_epa=-1.9,
            )

    def test_summary_dict_shape(self):
        d = self.make_electrode().get_summary_dict()
        assert d["battery_type"] == "intercalation"
        assert d["working_ion"] == "Li"
        assert d["framework"] == "FePO4"
        assert len(d["steps"]) == d["n_steps"]

    def test_needs_two_entries(self):
        with pytest.raises(MatgenError):
            InsertionElectrode([PDEntry("FePO4", -10)], "Li", -1.9)


class TestConversionElectrode:
    def test_conversion_voltage_positive_for_favourable_reaction(self):
        entries = [
            PDEntry("Li", -1.9),
            PDEntry("Fe", 0.0),
            PDEntry("O", 0.0),
            PDEntry("Fe2O3", -9.0),
            PDEntry("Li2O", -8.0),
        ]
        pd = PhaseDiagram(entries)
        host = next(e for e in entries if e.composition.reduced_formula == "Fe2O3")
        elec = ConversionElectrode(host, pd, "Li", x_max=6.0, n_steps=3)
        assert elec.average_voltage > 0
        assert elec.capacity_grav > 0
        d = elec.get_summary_dict()
        assert d["battery_type"] == "conversion"
        assert len(d["profile"]) == 3

    def test_requires_ion_in_system(self):
        entries = [PDEntry("Fe", 0.0), PDEntry("O", 0.0), PDEntry("Fe2O3", -9.0)]
        pd = PhaseDiagram(entries)
        with pytest.raises(MatgenError):
            ConversionElectrode(entries[2], pd, "Li")
