"""Sharded-cluster subsystem tests: chunks, balancer, elections, routing.

The chaos-lane failover test reuses the writer-fleet pattern from
``test_concurrency_stress.py``: hammer the cluster with concurrent writers,
kill a primary mid-flight, and assert re-election, client re-routing, and
zero acknowledged-write loss.  Knobs:

* ``CHAOS_DURATION_S`` — seconds the failover fleet runs (default 1.5)
* ``CHAOS_WRITERS``    — writer thread count (default 4)
"""

import os
import threading
import time

import pytest

from repro.docstore import (
    Balancer,
    DatastoreServer,
    DocumentStore,
    RemoteClient,
    ShardedCluster,
)
from repro.docstore.cluster import MAX_KEY, MIN_KEY
from repro.docstore.cluster.config import bound_sort_key
from repro.errors import (
    ClusterError,
    ElectionFailed,
    ShardingError,
    StaleEpoch,
)

DURATION_S = float(os.environ.get("CHAOS_DURATION_S", "1.5"))
N_WRITERS = int(os.environ.get("CHAOS_WRITERS", "4"))


def make_cluster(n_shards=2, n_replicas=3, split_threshold=1000, **kw):
    cluster = ShardedCluster(n_replicas=n_replicas,
                             split_threshold=split_threshold, **kw)
    for i in range(n_shards):
        cluster.add_shard(f"s{i}")
    return cluster


class TestChunksAndConfig:
    def test_hashed_collection_pre_splits_across_shards(self):
        cluster = make_cluster(n_shards=4)
        cluster.shard_collection("mp.materials", "material_id")
        chunks = cluster.config.chunks("mp.materials")
        assert len(chunks) == 8  # 2 pre-split chunks per shard
        assert {c.shard for c in chunks} == {"s0", "s1", "s2", "s3"}
        # Chunks tile the hash space: contiguous, no gaps.
        for left, right in zip(chunks, chunks[1:]):
            assert left.max == right.min
        assert chunks[0].min == MIN_KEY or chunks[0].min == 0
        assert chunks[-1].max == MAX_KEY or isinstance(chunks[-1].max, int)

    def test_ranged_collection_starts_with_one_chunk(self):
        cluster = make_cluster()
        cluster.shard_collection("mp.tasks", "task_id", strategy="range")
        chunks = cluster.config.chunks("mp.tasks")
        assert len(chunks) == 1
        assert chunks[0].min == MIN_KEY and chunks[0].max == MAX_KEY

    def test_bound_sort_key_totally_orders_sentinels(self):
        assert bound_sort_key(MIN_KEY) < bound_sort_key("anything")
        assert bound_sort_key("anything") < bound_sort_key(MAX_KEY)
        assert not bound_sort_key(MAX_KEY) < bound_sort_key(MAX_KEY)

    def test_auto_split_past_threshold(self):
        cluster = make_cluster(n_shards=1, split_threshold=40)
        coll = cluster.shard_collection("mp.m", "mid", strategy="range")
        for i in range(200):
            coll.insert_one({"mid": f"mp-{i:04d}", "n": i})
        chunks = cluster.config.chunks("mp.m")
        assert len(chunks) > 1
        assert cluster.splits > 0
        # The split bumped the collection epoch.
        assert cluster.config.epoch("mp.m") > 1
        assert coll.count_documents({}) == 200

    def test_epoch_bumps_on_move(self):
        cluster = make_cluster()
        coll = cluster.shard_collection("mp.m", "mid")
        for i in range(20):
            coll.insert_one({"mid": f"mp-{i}"})
        before = cluster.config.epoch("mp.m")
        victim = next(c for c in cluster.config.chunks("mp.m")
                      if c.shard == "s0")
        moved = cluster.move_chunk("mp.m", victim.chunk_id, "s1")
        assert cluster.config.epoch("mp.m") == before + 1
        assert cluster.config.get_chunk("mp.m", victim.chunk_id).shard == "s1"
        assert coll.count_documents({}) == 20
        assert cluster.migrations == 1 and cluster.migrated_docs == moved

    def test_config_survives_restart_through_journal(self, tmp_path):
        store = DocumentStore(persistence_dir=str(tmp_path / "config"))
        cluster = make_cluster(n_shards=3, config_store=store)
        coll = cluster.shard_collection("mp.m", "mid")
        for i in range(30):
            coll.insert_one({"mid": f"mp-{i}"})
        epoch = cluster.config.epoch("mp.m")
        chunk_map = {c.chunk_id: c.shard for c in cluster.config.chunks("mp.m")}
        store.close()

        reopened = DocumentStore(persistence_dir=str(tmp_path / "config"))
        recovered = ShardedCluster(config_store=reopened)
        assert sorted(recovered.config.shard_ids()) == ["s0", "s1", "s2"]
        assert recovered.config.epoch("mp.m") == epoch
        assert {c.chunk_id: c.shard
                for c in recovered.config.chunks("mp.m")} == chunk_map
        # Rebuilt shard handles own exactly the recovered chunks.
        for chunk_id, shard_id in chunk_map.items():
            assert recovered.shard(shard_id).owns("mp.m", chunk_id)
        reopened.close()


class TestRoutingAndExplain:
    @pytest.fixture
    def cluster(self):
        c = make_cluster(n_shards=4)
        coll = c.shard_collection("mp.materials", "material_id")
        for i in range(200):
            coll.insert_one({"material_id": f"mp-{i}", "nelements": i % 5})
        yield c
        c.stop()

    def test_eq_on_shard_key_is_single_shard(self, cluster):
        coll = cluster.collection("mp.materials")
        plan = coll.explain({"material_id": "mp-42"})
        assert plan["mode"] == "SINGLE_SHARD"
        assert len(plan["shards"]) == 1
        assert coll.find_one({"material_id": "mp-42"})["nelements"] == 2

    def test_unconstrained_query_scatter_gathers(self, cluster):
        coll = cluster.collection("mp.materials")
        plan = coll.explain({"nelements": 3})
        assert plan["mode"] == "SCATTER_GATHER"
        assert len(plan["shards"]) == 4
        assert len(coll.find({"nelements": 3})) == 40

    def test_in_on_shard_key_targets_owner_union(self, cluster):
        coll = cluster.collection("mp.materials")
        plan = coll.explain(
            {"material_id": {"$in": ["mp-1", "mp-2", "mp-3"]}})
        assert plan["mode"] in ("SINGLE_SHARD", "SCATTER_GATHER")
        assert 1 <= len(plan["shards"]) <= 3
        assert len(coll.find(
            {"material_id": {"$in": ["mp-1", "mp-2", "mp-3"]}})) == 3

    def test_range_on_ranged_key_prunes_chunks(self):
        cluster = make_cluster(n_shards=1, split_threshold=30)
        coll = cluster.shard_collection("mp.t", "tid", strategy="range")
        for i in range(150):
            coll.insert_one({"tid": f"t-{i:04d}"})
        # Spread the split chunks over a second shard.
        cluster.add_shard("s1")
        balancer = Balancer(cluster)
        while balancer.balance_once():
            pass
        plan = coll.explain({"tid": {"$gte": "t-0000", "$lte": "t-0009"}})
        total = len(cluster.config.chunks("mp.t"))
        consulted = sum(s["chunks"] for s in plan["shards"].values())
        assert consulted < total
        assert len(coll.find(
            {"tid": {"$gte": "t-0000", "$lte": "t-0009"}})) == 10

    def test_sorted_find_streams_k_way_merge(self, cluster):
        coll = cluster.collection("mp.materials")
        plan = coll.explain({}, sort=[("material_id", 1)])
        assert plan["mergeSort"] == "STREAMING_K_WAY"
        top = coll.find({}, sort=[("nelements", -1), ("material_id", 1)],
                        limit=7)
        assert len(top) == 7
        assert [d["nelements"] for d in top] == [4] * 7
        ordered = coll.find({}, sort=[("material_id", 1)])
        ids = [d["material_id"] for d in ordered]
        assert ids == sorted(ids) and len(ids) == 200

    def test_shard_key_update_rejected(self, cluster):
        coll = cluster.collection("mp.materials")
        with pytest.raises(ShardingError):
            coll.update_many({"nelements": 1},
                             {"$set": {"material_id": "mp-clone"}})
        # Non-key updates still route and apply.
        modified = coll.update_many({"material_id": "mp-7"},
                                    {"$set": {"tag": "x"}})
        assert modified == 1


class TestStaleEpochRetry:
    def test_stale_router_refreshes_and_retries(self):
        from repro.docstore.cluster.router import ClusterCollection

        cluster = make_cluster()
        coll = cluster.shard_collection("mp.m", "mid")
        docs = [{"mid": f"mp-{i}"} for i in range(40)]
        coll.insert_many(docs)

        # A second router handle with its own (soon stale) chunk cache:
        # move_chunk only invalidates the cluster's registered handles.
        stale = ClusterCollection(cluster, "mp.m")
        stale.find_one({"mid": "mp-0"})  # populate the cache
        moved_any = False
        for chunk in list(cluster.config.chunks("mp.m")):
            if chunk.shard == "s0":
                cluster.move_chunk("mp.m", chunk.chunk_id, "s1")
                moved_any = True
        assert moved_any
        before = cluster.stale_retries
        stale.insert_one({"mid": "mp-new"})
        assert stale.find_one({"mid": "mp-new"}) is not None
        assert cluster.stale_retries > before
        assert cluster.collection("mp.m").count_documents({}) == 41

    def test_direct_stale_write_raises(self):
        cluster = make_cluster()
        coll = cluster.shard_collection("mp.m", "mid")
        coll.insert_one({"mid": "mp-0"})
        chunk = next(c for c in cluster.config.chunks("mp.m")
                     if c.shard == "s0")
        cluster.move_chunk("mp.m", chunk.chunk_id, "s1")
        with pytest.raises(StaleEpoch):
            cluster.shard("s0").write(
                "mp.m", chunk.chunk_id, lambda c: c.insert_one({"mid": "x"}))


class TestBalancer:
    def test_converges_after_skewed_ingest(self):
        cluster = make_cluster(n_shards=1, split_threshold=25)
        coll = cluster.shard_collection("mp.skew", "mid", strategy="range")
        for i in range(300):
            coll.insert_one({"mid": f"mp-{i:05d}", "n": i})
        # Everything landed on s0; now grow the cluster.
        for s in ("s1", "s2", "s3"):
            cluster.add_shard(s)
        counts = cluster.config.chunk_counts("mp.skew")
        assert counts.get("s1", 0) == 0  # skewed before balancing

        balancer = Balancer(cluster, balance_threshold=1.1)
        moves = 0
        while True:
            moved = balancer.balance_once()
            if not moved:
                break
            moves += len(moved)
        assert moves > 0
        counts = cluster.config.chunk_counts("mp.skew")
        assert set(counts) == {"s0", "s1", "s2", "s3"}
        # Acceptance: chunk counts within 10% (spread <= 1 chunk here).
        assert max(counts.values()) - min(counts.values()) <= 1
        assert balancer.is_balanced("mp.skew")
        # No data harmed in the course of rebalancing.
        assert coll.count_documents({}) == 300
        assert coll.find_one({"mid": "mp-00000"}) is not None
        assert coll.find_one({"mid": "mp-00299"}) is not None

    def test_background_balancer_daemon(self):
        cluster = make_cluster(n_shards=1, split_threshold=25)
        coll = cluster.shard_collection("mp.skew", "mid", strategy="range")
        for i in range(200):
            coll.insert_one({"mid": f"mp-{i:05d}"})
        cluster.add_shard("s1")
        cluster.start_balancer(interval_s=0.02)
        deadline = time.time() + 10
        while time.time() < deadline:
            if cluster.balance_factor("mp.skew") <= 1.34:
                break
            time.sleep(0.02)
        cluster.stop()
        counts = cluster.config.chunk_counts("mp.skew")
        assert counts.get("s1", 0) > 0
        assert coll.count_documents({}) == 200


class TestElections:
    def test_kill_primary_elects_most_up_to_date(self):
        cluster = make_cluster(n_shards=1)
        coll = cluster.shard_collection("mp.m", "mid")
        for i in range(10):
            coll.insert_one({"mid": f"mp-{i}"})
        rs = cluster.shard("s0").rs
        old = rs.primary.name
        rs.kill(old)
        winner = rs.elect()
        assert winner != old
        assert rs.term == 1
        # Writes keep flowing on a 2/3 majority.
        coll.insert_one({"mid": "mp-after"})
        assert coll.find_one({"mid": "mp-after"}) is not None

    def test_no_majority_no_election(self):
        cluster = make_cluster(n_shards=1)
        cluster.shard_collection("mp.m", "mid")
        rs = cluster.shard("s0").rs
        rs.kill(rs.members[0].name)
        rs.kill(rs.members[1].name)
        with pytest.raises(ElectionFailed):
            rs.elect()

    def test_revive_catches_up_via_changestream_delta(self):
        cluster = make_cluster(n_shards=1)
        coll = cluster.shard_collection("mp.m", "mid")
        for i in range(5):
            coll.insert_one({"mid": f"mp-{i}"})
        rs = cluster.shard("s0").rs
        secondary = next(m.name for m in rs.members
                         if m is not rs.primary)
        rs.kill(secondary)
        for i in range(5, 15):
            coll.insert_one({"mid": f"mp-{i}"})
        assert rs.revive(secondary) == "delta"
        optimes = {m.applied_optime for m in rs.members}
        assert len(optimes) == 1  # fully caught up

    def test_revive_falls_back_to_full_resync(self):
        cluster = make_cluster(n_shards=1)
        coll = cluster.shard_collection("mp.m", "mid")
        coll.insert_one({"mid": "mp-0"})
        rs = cluster.shard("s0").rs
        secondary = next(m.name for m in rs.members
                         if m is not rs.primary)
        rs.kill(secondary)
        # A namespace born while the member was down cannot be covered by
        # the changestreams opened at kill time -> full resync.
        rs.write("mp", "born_later", lambda c: c.insert_one({"x": 1}))
        assert rs.revive(secondary) == "resync"
        node = rs.node(secondary)
        assert node.store["mp"]["born_later"].count_documents() == 1

    def test_step_down_hands_over_and_bumps_term(self):
        cluster = make_cluster(n_shards=1)
        cluster.shard_collection("mp.m", "mid")
        rs = cluster.shard("s0").rs
        old = rs.primary.name
        new = cluster.step_down("s0")
        assert new != old and rs.primary.name == new
        assert rs.term == 1


class TestChaosFailover:
    def test_primary_kill_mid_writer_fleet_loses_no_acked_writes(self):
        cluster = make_cluster(n_shards=2, split_threshold=100_000)
        coll = cluster.shard_collection("mp.stress", "k")
        cluster.start_heartbeat(interval_s=0.02)

        stop = threading.Event()
        errors: list = []
        acked = [set() for _ in range(N_WRITERS)]
        acked_after_kill = [set() for _ in range(N_WRITERS)]
        killed = threading.Event()

        def writer(w):
            i = 0
            try:
                while not stop.is_set():
                    key = f"w{w}-{i}"
                    coll.insert_one({"k": key, "w": w, "i": i})
                    # insert_one returned: this write is acknowledged.
                    acked[w].add(key)
                    if killed.is_set():
                        acked_after_kill[w].add(key)
                    i += 1
            except Exception as exc:  # pragma: no cover - failure report
                errors.append(f"writer {w}: {exc!r}")

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(N_WRITERS)]
        for t in threads:
            t.start()
        time.sleep(DURATION_S * 0.3)

        rs = cluster.shard("s0").rs
        victim = rs.primary.name
        rs.kill(victim)
        killed.set()

        time.sleep(DURATION_S * 0.7)
        stop.set()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "writer wedged"
        cluster.stop()
        assert errors == [], errors

        # Re-election happened and the fleet kept writing through it.
        assert rs.primary is not None and rs.primary.name != victim
        assert rs.term >= 1
        progressed = set().union(*acked_after_kill)
        assert progressed, "no writes acknowledged after the kill"

        # Zero acknowledged-write loss, exactly-once.
        expected = set().union(*acked)
        assert coll.count_documents({}) == len(expected)
        actual = {d["k"] for d in coll.find({})}
        missing = expected - actual
        assert not missing, f"lost {len(missing)} acked writes"
        # The router recorded the NotPrimary re-routing it performed.
        stats = cluster.sharding_stats()
        assert stats["elections"] >= 1


class TestWireOpsAndObservability:
    @pytest.fixture
    def served(self):
        cluster = make_cluster(n_shards=2)
        coll = cluster.shard_collection("mp.materials", "material_id")
        for i in range(30):
            coll.insert_one({"material_id": f"mp-{i}"})
        store = DocumentStore()
        store.attach_cluster(cluster)
        srv = DatastoreServer(store).start()
        client = RemoteClient("127.0.0.1", srv.port)
        yield cluster, store, client
        client.close()
        srv.stop()
        cluster.stop()

    def test_shard_status_over_the_wire(self, served):
        cluster, _, client = served
        status = client.shard_status()
        assert sorted(status["shards"]) == ["s0", "s1"]
        ns = status["namespaces"]["mp.materials"]
        assert ns["shardKey"] == "material_id"

    def test_add_shard_and_move_chunk_over_the_wire(self, served):
        cluster, _, client = served
        assert "s9" in client.add_shard("s9")["shards"]
        chunk = next(c for c in cluster.config.chunks("mp.materials")
                     if c.shard != "s9")
        reply = client.move_chunk("mp.materials", chunk.chunk_id, "s9")
        assert reply["to"] == "s9"
        assert cluster.config.get_chunk(
            "mp.materials", chunk.chunk_id).shard == "s9"

    def test_step_down_over_the_wire(self, served):
        cluster, _, client = served
        old = cluster.shard("s0").rs.primary.name
        reply = client.step_down("s0")
        assert reply["primary"] != old

    def test_remote_cluster_errors_map_to_typed_exceptions(self, served):
        _, _, client = served
        with pytest.raises(ClusterError):
            client.move_chunk("mp.materials", "nope|0", "s1")

    def test_server_status_and_mongostat_surface_sharding(self, served):
        from repro.obs.health import ServerStatusSampler, format_stat_table

        cluster, store, _ = served
        sharding = store.server_status()["sharding"]
        assert sharding["shards"] == 2
        assert sum(sharding["chunksPerShard"].values()) == len(
            cluster.config.chunks("mp.materials"))
        sampler = ServerStatusSampler(store)
        table = format_stat_table([sampler.sample(), sampler.sample()])
        assert "shards" in table

    def test_cluster_events_land_in_telemetry_events(self):
        from repro.obs.warehouse import TelemetryWarehouse

        warehouse = TelemetryWarehouse(DocumentStore())
        cluster = ShardedCluster(
            n_replicas=3, event_sink=warehouse.record_flight_event)
        cluster.add_shard("s0")
        cluster.add_shard("s1")
        coll = cluster.shard_collection("mp.m", "mid")
        for i in range(20):
            coll.insert_one({"mid": f"mp-{i}"})
        chunk = next(c for c in cluster.config.chunks("mp.m")
                     if c.shard == "s0")
        cluster.move_chunk("mp.m", chunk.chunk_id, "s1")
        cluster.step_down("s0")
        types = {e["type"] for e in warehouse.flight_events()}
        assert {"add_shard", "migration", "election"} <= types

    def test_cli_cluster_commands(self, served):
        from repro.cli import main

        cluster, _, client = served
        argv = ["--host", client.host, "--port", str(client.port)]
        assert main(["cluster", "status"] + argv) == 0
        assert main(["cluster", "status", "--json"] + argv) == 0
        assert main(["cluster", "add-shard", "--shard", "s7"] + argv) == 0
        assert "s7" in cluster.shards


class TestHPCDeployment:
    def test_cluster_survives_batch_queue_churn(self):
        from repro.hpc import deploy_cluster_scenario

        report = deploy_cluster_scenario(
            n_shards=2, n_replicas=3, n_compute=4,
            lease_s=480.0, walltime_request_s=600.0, max_restarts=1)
        assert report["members"] == 6
        assert report["outages"] > 0
        assert report["elections"] > 0
        assert report["failed_elections"] == 0
        assert report["all_shards_have_primary"]
        assert report["docs_surviving"] == 32
        assert report["restarts"] == 6

    def test_reservation_exempts_fleet_from_user_limits(self):
        from repro.docstore.cluster import ShardedCluster as SC
        from repro.hpc import BatchQueue, Cluster, SimClock
        from repro.hpc.deploy import ClusterDeployment

        clock = SimClock()
        queue = BatchQueue(Cluster.build(n_compute=4), clock=clock)
        cluster = SC(n_replicas=3)
        for i in range(3):
            cluster.add_shard(f"s{i}")
        deployment = ClusterDeployment(cluster, queue, max_restarts=0)
        jobs = deployment.submit_all()
        # 9 member jobs from one user: beyond the default per-user cap,
        # runnable only because of the advance reservation.
        assert len(jobs) == 9
        deployment.run_until_idle()
        report = deployment.report()
        assert report["members"] == 9
