"""Tests for the pseudo-DFT engine: energies, SCF, FakeVASP, run-dir I/O."""

import math

import pytest

from repro.dft import (
    FakeVASP,
    Resources,
    SCFParameters,
    estimate_memory_mb,
    estimate_walltime_s,
    expected_iterations,
    formation_energy_per_atom,
    parse_run_directory,
    raw_output_size,
    reference_energy_per_atom,
    run_scf,
    structure_difficulty,
    total_energy,
)
from repro.errors import (
    ConvergenceError,
    InputError,
    MemoryExceeded,
    WalltimeExceeded,
)
from repro.matgen import make_prototype


@pytest.fixture
def nacl():
    return make_prototype("rocksalt", ["Na", "Cl"])


@pytest.fixture
def lifepo4():
    return make_prototype("olivine", ["Li", "Fe"])


class TestEnergyModel:
    def test_deterministic(self, nacl):
        assert total_energy(nacl) == total_energy(nacl)

    def test_ionic_compounds_form(self, nacl):
        """Electronegativity contrast must yield negative formation energy."""
        assert formation_energy_per_atom(nacl) < -0.5

    def test_elemental_crystal_near_zero_formation(self):
        fe = make_prototype("bcc", ["Fe"])
        assert abs(formation_energy_per_atom(fe)) < 0.3

    def test_more_ionic_is_more_stable(self):
        nacl = make_prototype("rocksalt", ["Na", "Cl"])  # Δχ = 2.23
        gaas = make_prototype("zincblende", ["Ga", "As"])  # Δχ = 0.37
        assert formation_energy_per_atom(nacl) < formation_energy_per_atom(gaas)

    def test_polymorphs_have_distinct_energies(self):
        rs = make_prototype("rocksalt", ["Mg", "O"])
        zb = make_prototype("zincblende", ["Mg", "O"])
        assert total_energy(rs) / 8 != pytest.approx(total_energy(zb) / 8, abs=1e-6)

    def test_reference_energies_negative(self):
        for sym in ("Li", "Fe", "O", "U"):
            assert reference_energy_per_atom(sym) < -1.0

    def test_energy_extensive(self, nacl):
        """Supercell energy must scale with the number of atoms."""
        sc = nacl.make_supercell((2, 1, 1))
        assert total_energy(sc) == pytest.approx(2 * total_energy(nacl), rel=1e-3)

    def test_lithiation_releases_energy(self):
        """Li insertion into an oxide framework must be exothermic enough
        for a positive voltage — this anchors the Fig. 1 reproduction."""
        host = make_prototype("olivine", ["Li", "Fe"]).remove_species(["Li"])
        lix = make_prototype("olivine", ["Li", "Fe"])
        e_li = reference_energy_per_atom("Li") + 0.0  # bcc Li ref ~ same model
        voltage = -(total_energy(lix) - total_energy(host) - e_li)
        assert voltage > 0.5


class TestSCF:
    def test_easy_structure_converges(self, nacl):
        result = run_scf(nacl, SCFParameters(amix=0.3, algo="Normal"))
        assert result.converged
        assert result.n_iterations < 60
        assert result.residuals[-1] < result.parameters.ediff

    def test_iterations_match_prediction(self, nacl):
        params = SCFParameters(amix=0.3, algo="Normal")
        result = run_scf(nacl, params)
        predicted = expected_iterations(nacl, params)
        assert result.n_iterations == pytest.approx(predicted, abs=2)

    def test_gentler_mixing_takes_more_iterations(self, nacl):
        fast = run_scf(nacl, SCFParameters(amix=0.5, algo="Normal", nelm=500))
        slow = run_scf(nacl, SCFParameters(amix=0.1, algo="Normal", nelm=500))
        assert slow.n_iterations > fast.n_iterations

    def test_hard_structure_diverges_with_aggressive_mixing(self):
        """Some structures must fail with default params and succeed after
        the detour (reduced AMIX / ALGO=Normal) — the paper's detour case."""
        hard = _find_hard_structure()
        with pytest.raises(ConvergenceError):
            run_scf(hard, SCFParameters(amix=0.9, algo="Fast", nelm=40))
        result = run_scf(hard, SCFParameters(amix=0.2, algo="All", nelm=200))
        assert result.converged

    def test_cutoff_bias_decays(self, nacl):
        lo = run_scf(nacl, SCFParameters(encut=200, amix=0.3, algo="Normal"))
        hi = run_scf(nacl, SCFParameters(encut=800, amix=0.3, algo="Normal"))
        exact = total_energy(nacl)
        assert abs(hi.energy - exact) < abs(lo.energy - exact)
        assert lo.energy > hi.energy  # finite cutoff biases upward

    def test_parameter_validation(self):
        with pytest.raises(InputError):
            SCFParameters(encut=-1)
        with pytest.raises(InputError):
            SCFParameters(amix=0)
        with pytest.raises(InputError):
            SCFParameters(algo="Turbo")
        with pytest.raises(InputError):
            SCFParameters(nelm=0)

    def test_difficulty_distribution(self):
        """~15% of a structure population should be 'hard' (> 0.85)."""
        from repro.matgen import ELEMENTS

        metals = [e.symbol for e in ELEMENTS if e.is_metal][:40]
        hard = 0
        total = 0
        for m in metals:
            for proto in ("rocksalt", "zincblende"):
                s = make_prototype(proto, [m, "O"])
                total += 1
                if structure_difficulty(s) > 0.85:
                    hard += 1
        assert 0.02 < hard / total < 0.4


def _find_hard_structure():
    """Deterministically locate a structure with difficulty > 0.9."""
    from repro.matgen import ELEMENTS

    for el in (e.symbol for e in ELEMENTS if e.is_metal):
        for proto in ("rocksalt", "zincblende", "cscl"):
            s = make_prototype(proto, [el, "O"])
            if structure_difficulty(s) > 0.9:
                return s
    raise RuntimeError("no hard structure found — difficulty model broken")


class TestFakeVASP:
    def test_successful_run(self, nacl, tmp_path):
        run = FakeVASP().run(
            nacl,
            SCFParameters(amix=0.3, algo="Normal"),
            Resources(walltime_s=1e6, memory_mb=1e5),
            run_dir=str(tmp_path / "run"),
        )
        assert run.scf.converged
        assert run.final_energy == pytest.approx(
            total_energy(nacl), abs=0.8 * 8 * math.exp(-520 / 150) + 1e-6
        )
        assert run.band_gap > 0
        assert run.walltime_used_s > 0

    def test_walltime_kill(self, nacl, tmp_path):
        with pytest.raises(WalltimeExceeded):
            FakeVASP().run(
                nacl,
                SCFParameters(),
                Resources(walltime_s=0.001, memory_mb=1e5),
                run_dir=str(tmp_path / "killed"),
            )
        doc = parse_run_directory(str(tmp_path / "killed"))
        assert doc["status"] == "FAILED"
        assert doc["error_kind"] == "WALLTIME"

    def test_memory_kill(self, nacl):
        with pytest.raises(MemoryExceeded):
            FakeVASP().run(nacl, SCFParameters(), Resources(memory_mb=1.0))

    def test_estimates_deterministic(self, nacl):
        p = SCFParameters()
        assert estimate_walltime_s(nacl, p) == estimate_walltime_s(nacl, p)
        assert estimate_memory_mb(nacl, p) == estimate_memory_mb(nacl, p)

    def test_walltime_grows_with_system_size(self):
        p = SCFParameters()
        small = make_prototype("cscl", ["Cs", "Cl"])  # 2 sites
        big = small.make_supercell((2, 2, 2))         # 16 sites
        assert estimate_walltime_s(big, p) > 5 * estimate_walltime_s(small, p)

    def test_walltime_unpredictability_spread(self):
        """Across a population, runtime jitter spans a wide multiplicative
        range ('high degree of uncertainty', §III-C1)."""
        from repro.matgen import ELEMENTS

        p = SCFParameters()
        times = []
        for el in [e.symbol for e in ELEMENTS if e.is_metal][:30]:
            s = make_prototype("rocksalt", [el, "O"])
            times.append(estimate_walltime_s(s, p) / s.num_sites ** 2.5)
        assert max(times) / min(times) > 3.0


class TestRunDirIO:
    def test_parse_roundtrip(self, nacl, tmp_path):
        run_dir = str(tmp_path / "run")
        run = FakeVASP().run(
            nacl, SCFParameters(amix=0.3, algo="Normal"),
            Resources(walltime_s=1e6, memory_mb=1e5), run_dir=run_dir,
        )
        doc = parse_run_directory(run_dir)
        assert doc["status"] == "COMPLETED"
        assert doc["energy"] == pytest.approx(run.final_energy)
        assert doc["n_iterations"] == run.scf.n_iterations
        assert doc["band_gap"] == pytest.approx(run.band_gap, abs=1e-6)
        assert doc["outcar"]["iterations_seen"] == run.scf.n_iterations

    def test_reduction_factor(self, nacl, tmp_path):
        """Raw output must dwarf the reduced document (the paper's point)."""
        import json

        run_dir = str(tmp_path / "run")
        FakeVASP().run(
            nacl, SCFParameters(amix=0.3, algo="Normal"),
            Resources(walltime_s=1e6, memory_mb=1e5), run_dir=run_dir,
        )
        raw = raw_output_size(run_dir)
        doc = parse_run_directory(run_dir)
        doc.pop("structure", None)
        reduced = len(json.dumps(doc))
        assert raw > 100_000  # bulky raw output
        assert raw / reduced > 50  # serious reduction

    def test_parse_empty_dir_fails(self, tmp_path):
        from repro.errors import DFTError

        with pytest.raises(DFTError):
            parse_run_directory(str(tmp_path))

    def test_scf_failure_artifacts(self, tmp_path):
        hard = _find_hard_structure()
        run_dir = str(tmp_path / "scf_fail")
        with pytest.raises(ConvergenceError):
            FakeVASP().run(
                hard, SCFParameters(amix=0.9, algo="Fast", nelm=30),
                Resources(walltime_s=1e9, memory_mb=1e6), run_dir=run_dir,
            )
        doc = parse_run_directory(run_dir)
        assert doc["status"] == "FAILED"
        assert doc["error_kind"] == "SCF"
