"""Tests for the MapReduce framework: executor equivalence, combiner, staging."""

import math

import pytest

from repro.docstore import Collection
from repro.errors import ReproError
from repro.mapreduce import (
    LocalExecutor,
    MapReduceJob,
    ParallelExecutor,
    StagedStore,
    partition_for_key,
)


# Module-level functions: required for the process backend (picklable).
def count_by_state_mapper(doc):
    yield doc.get("state", "UNKNOWN"), 1


def sum_reducer(key, values):
    return sum(values)


def energy_stats_mapper(doc):
    yield doc["chemsys"], (doc["energy"], doc["energy"] ** 2, 1)


def energy_stats_reducer(key, values):
    s = sum(v[0] for v in values)
    s2 = sum(v[1] for v in values)
    n = sum(v[2] for v in values)
    return (s, s2, n)


def energy_stats_finalize(key, value):
    s, s2, n = value
    mean = s / n
    var = max(0.0, s2 / n - mean ** 2)
    return {"mean": mean, "std": math.sqrt(var), "n": n}


def heavy_mapper(doc):
    """CPU-bound mapper for the speedup comparison.

    Heavy enough (~5 ms/doc) that process-pool startup amortizes; real
    Hadoop deployments keep the cluster warm, which we cannot.
    """
    acc = 0.0
    for i in range(20000):
        acc += math.sin(doc["x"] + i) ** 2
    yield doc["x"] % 7, acc


@pytest.fixture
def task_docs():
    return [
        {"_id": i, "state": "COMPLETED" if i % 3 else "FIZZLED",
         "chemsys": ["Li-O", "Fe-O", "Na-Cl"][i % 3],
         "energy": -5.0 - (i % 10) * 0.1, "x": i}
        for i in range(60)
    ]


class TestExecutorEquivalence:
    def test_count_job_matches(self, task_docs):
        job = MapReduceJob(count_by_state_mapper, sum_reducer)
        local = LocalExecutor().run(job, task_docs)
        par = ParallelExecutor(n_workers=3, backend="thread").run(job, task_docs)
        assert local.sorted_rows() == par.sorted_rows()

    def test_process_backend_matches(self, task_docs):
        job = MapReduceJob(count_by_state_mapper, sum_reducer)
        local = LocalExecutor().run(job, task_docs)
        par = ParallelExecutor(n_workers=2, backend="process").run(job, task_docs)
        assert local.sorted_rows() == par.sorted_rows()

    def test_stats_job_with_finalize(self, task_docs):
        job = MapReduceJob(
            energy_stats_mapper, energy_stats_reducer,
            combiner=energy_stats_reducer, finalize=energy_stats_finalize,
        )
        local = LocalExecutor().run(job, task_docs)
        par = ParallelExecutor(n_workers=4, backend="thread").run(job, task_docs)
        l_rows = {r["_id"]: r["value"] for r in local}
        p_rows = {r["_id"]: r["value"] for r in par}
        assert set(l_rows) == set(p_rows) == {"Li-O", "Fe-O", "Na-Cl"}
        for key in l_rows:
            assert l_rows[key]["mean"] == pytest.approx(p_rows[key]["mean"])
            assert l_rows[key]["n"] == p_rows[key]["n"]

    def test_empty_input(self):
        job = MapReduceJob(count_by_state_mapper, sum_reducer)
        assert len(LocalExecutor().run(job, [])) == 0
        assert len(ParallelExecutor(2, backend="thread").run(job, [])) == 0

    def test_counts_metadata(self, task_docs):
        job = MapReduceJob(count_by_state_mapper, sum_reducer)
        result = LocalExecutor().run(job, task_docs)
        assert result.counts["input"] == 60
        assert result.counts["emit"] == 60
        assert result.counts["output"] == 2

    def test_combiner_reduces_shuffle_volume(self, task_docs):
        """With a combiner, each map split ships one value per key."""
        from repro.mapreduce.parallel import _map_task

        job = MapReduceJob(count_by_state_mapper, sum_reducer,
                           combiner=sum_reducer)
        buckets, _task_s = _map_task((job, task_docs, 2))
        for bucket in buckets:
            for _ck, (_key, values) in bucket.items():
                assert len(values) == 1

    def test_partitioning_is_stable(self):
        assert partition_for_key("Li-O", 8) == partition_for_key("Li-O", 8)
        spread = {partition_for_key(f"key-{i}", 8) for i in range(100)}
        assert len(spread) == 8  # all partitions used

    def test_validation(self):
        with pytest.raises(ReproError):
            ParallelExecutor(0)
        with pytest.raises(ReproError):
            ParallelExecutor(2, backend="gpu")
        with pytest.raises(ReproError):
            MapReduceJob("not-callable", sum_reducer)


class TestSpeedup:
    def test_parallel_critical_path_beats_single_thread(self):
        """The §IV-B2 shape: parallel execution several times faster.

        Compares the local wall time against the parallel executor's
        *critical-path* (simulated cluster) time, which is the honest
        figure on single-core CI hosts; on a real multi-core machine the
        measured wall time converges to it.
        """
        docs = [{"x": i} for i in range(300)]
        job = MapReduceJob(heavy_mapper, sum_reducer)
        local = LocalExecutor().run(job, docs)
        par = ParallelExecutor(n_workers=4, backend="process").run(job, docs)
        assert par.sorted_rows() == local.sorted_rows()
        simulated = par.counts["simulated_wall_time_s"]
        assert local.wall_time_s / simulated > 2.0


class TestStaging:
    def test_stage_and_rerun(self, task_docs, tmp_path):
        coll = Collection("tasks")
        coll.insert_many(task_docs)
        store = StagedStore(str(tmp_path / "hdfs"), n_partitions=4)
        ref = store.stage_collection(coll)
        assert ref["n_documents"] == 60
        assert len(store) == 60

        job = MapReduceJob(count_by_state_mapper, sum_reducer)
        from_files = store.run_job(job, LocalExecutor())
        from_coll = LocalExecutor().run(job, coll.find({}).to_list())
        assert from_files.sorted_rows() == from_coll.sorted_rows()

    def test_reference_written_back_to_store(self, task_docs, tmp_path):
        from repro.docstore import DocumentStore

        db = DocumentStore()["mp"]
        db["tasks"].insert_many(task_docs)
        store = StagedStore(str(tmp_path / "hdfs"), n_partitions=2)
        store.stage_collection(db["tasks"])
        ref = db["staged_refs"].find_one({"source_collection": "tasks"})
        assert ref is not None
        assert ref["n_documents"] == 60

    def test_partitions_cover_all_docs_once(self, task_docs, tmp_path):
        coll = Collection("tasks")
        coll.insert_many(task_docs)
        store = StagedStore(str(tmp_path / "s"), n_partitions=3)
        store.stage_collection(coll)
        ids = [d["_id"] for d in store.iter_all()]
        assert sorted(ids) == list(range(60))

    def test_staging_records_cost(self, task_docs, tmp_path):
        coll = Collection("tasks")
        coll.insert_many(task_docs)
        store = StagedStore(str(tmp_path / "s"))
        store.stage_collection(coll)
        assert store.staging_time_s > 0
