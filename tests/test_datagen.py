"""Tests for the synthetic ICSD and the query-workload generators."""

import pytest

from repro.datagen import (
    QueryWorkload,
    SyntheticICSD,
    elemental_references,
    generate_battery_candidates,
)
from repro.matgen import validate_mps


class TestSyntheticICSD:
    def test_deterministic_given_seed(self):
        a = SyntheticICSD(seed=7).structures(20)
        b = SyntheticICSD(seed=7).structures(20)
        assert [s.structure_hash() for s in a] == [s.structure_hash() for s in b]

    def test_different_seeds_differ(self):
        a = SyntheticICSD(seed=1).structures(20)
        b = SyntheticICSD(seed=2).structures(20)
        assert [s.structure_hash() for s in a] != [s.structure_hash() for s in b]

    def test_structures_are_distinct(self):
        structures = SyntheticICSD().structures(100)
        hashes = {s.structure_hash() for s in structures}
        assert len(hashes) == 100

    def test_structures_are_physical(self):
        for s in SyntheticICSD().structures(50):
            assert s.min_bond_length() > 1.0
            assert 0.3 < s.density < 25

    def test_chemical_diversity(self):
        structures = SyntheticICSD().structures(100)
        systems = {s.chemical_system for s in structures}
        assert len(systems) > 30

    def test_mps_records_validate(self):
        records = SyntheticICSD().mps_records(20)
        for record in records:
            validate_mps(record)
            assert record["about"]["metadata"]["icsd_id"] >= 100000

    def test_ternary_fraction(self):
        structures = SyntheticICSD().structures(100, ternary_fraction=1.0)
        assert all(len(s.elements) >= 2 for s in structures)
        ternary = [s for s in structures if len(s.elements) == 3]
        assert len(ternary) > 50


class TestBatteryCandidates:
    def test_pairs_share_framework(self):
        pairs = generate_battery_candidates("Li", metals=["Fe", "Mn", "Co"])
        assert len(pairs) >= 6  # 3 frameworks x 3 metals (some may drop)
        for pair in pairs:
            d, c = pair["discharged"], pair["charged"]
            assert "Li" in d.elements
            assert "Li" not in c.elements
            # Topotactic: host composition = discharged minus Li.
            from repro.matgen import Composition

            expect = Composition(
                {el: a for el, a in d.composition.items() if el.symbol != "Li"}
            )
            assert c.composition.almost_equals(expect)

    def test_sodium_works_too(self):
        pairs = generate_battery_candidates("Na", metals=["Fe", "Mn"])
        assert pairs
        assert all("Na" in p["discharged"].elements for p in pairs)

    def test_elemental_references(self):
        refs = elemental_references(["Li", "Fe", "O", "Fe"])
        assert len(refs) == 3
        assert all(r.composition.is_element for r in refs)


class TestQueryWorkload:
    def make(self, **kw):
        return QueryWorkload(
            formulas=["NaCl", "LiFePO4", "Fe2O3", "LiCoO2", "MgO"],
            chemical_systems=["Cl-Na", "Fe-Li-O-P", "Fe-O"],
            elements=["Li", "Fe", "O", "Na", "Cl", "Co"],
            **kw,
        )

    def test_deterministic(self):
        a = self.make(seed=3).generate(100)
        b = self.make(seed=3).generate(100)
        assert [(q.archetype, q.arrival_s) for q in a] == [
            (q.archetype, q.arrival_s) for q in b
        ]

    def test_count_and_ordering(self):
        queries = self.make().generate(500)
        assert len(queries) == 500
        arrivals = [q.arrival_s for q in queries]
        assert arrivals == sorted(arrivals)
        assert all(0 <= t <= 7 * 24 * 3600 for t in arrivals)

    def test_archetype_mix_roughly_matches_weights(self):
        wl = self.make()
        queries = wl.generate(3000)
        mix = wl.archetype_mix(queries)
        assert mix["formula_lookup"] / 3000 == pytest.approx(0.40, abs=0.05)
        assert mix["full_browse"] / 3000 == pytest.approx(0.05, abs=0.03)

    def test_queries_are_executable(self):
        """Every generated query must run against a real collection."""
        from repro.docstore import Collection

        coll = Collection("materials")
        coll.insert_many(
            [{"reduced_formula": "NaCl", "chemical_system": "Cl-Na",
              "elements": ["Cl", "Na"], "band_gap": 2.0,
              "formation_energy_per_atom": -1.0, "energy_per_atom": -4.0}]
        )
        for q in self.make().generate(200):
            if q.collection != "materials":
                continue
            cursor = coll.find(q.query)
            if q.sort:
                cursor = cursor.sort(list(q.sort))
            cursor.limit(q.limit).to_list()  # must not raise

    def test_popularity_is_heavy_tailed(self):
        wl = self.make()
        queries = [q for q in wl.generate(2000)
                   if q.archetype == "formula_lookup"]
        counts = {}
        for q in queries:
            f = q.query["reduced_formula"]
            counts[f] = counts.get(f, 0) + 1
        top = max(counts.values())
        bottom = min(counts.values())
        assert top > 2 * bottom  # rank-skewed

    def test_validation(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            QueryWorkload([], [], [])
