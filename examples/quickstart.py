"""Quickstart: the whole Materials Project stack in ~60 lines of calls.

Builds a small community datastore end to end — input crystals, workflow
execution, derived collections, and REST dissemination — then asks it the
paper's canonical question: what is the energy of Fe2O3?

Run:  python examples/quickstart.py
"""

from repro.api import MaterialsAPI, MPRester, QueryEngine
from repro.builders import MaterialsBuilder, PhaseDiagramBuilder
from repro.docstore import DocumentStore
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.matgen import make_prototype, mps_from_structure

ROBUST_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500}


def main() -> None:
    # 1. One document store is the center of everything (paper §III-A).
    store = DocumentStore()
    db = store["mp"]

    # 2. Input crystals -> MPS records in the `mps` collection.
    structures = [
        make_prototype("rocksalt", ["Fe", "O"]),      # FeO... and friends
        make_prototype("rocksalt", ["Na", "Cl"]),
        make_prototype("layered", ["Li", "Co"]),
        make_prototype("bcc", ["Fe"]),
        make_prototype("fcc", ["O"]),
    ]
    records = [mps_from_structure(s) for s in structures]
    db["mps"].insert_many(records)
    print(f"[inputs]    {len(records)} MPS records stored")

    # 3. The workflow engine runs pseudo-DFT on every input.
    launchpad = LaunchPad(db)
    launchpad.add_workflow(
        Workflow([
            vasp_firework(s, mps_id=r["mps_id"], incar=dict(ROBUST_INCAR),
                          walltime_s=1e9, memory_mb=1e6)
            for s, r in zip(structures, records)
        ])
    )
    launches = Rocket(launchpad).rapidfire()
    print(f"[workflow]  {launches} calculations completed "
          f"(states: {launchpad.stats()})")

    # 4. Builders turn raw tasks into the public materials collection.
    print(f"[builders]  {MaterialsBuilder(db).run()}")
    print(f"[builders]  {PhaseDiagramBuilder(db).run()}")

    # 5. Dissemination: the Materials API (Fig. 4's URI), via the client.
    api = MaterialsAPI(QueryEngine(db))
    client = MPRester(router=api)
    energy = client.get_energy("FeO")
    gap = client.get_band_gap("NaCl")
    print(f"[api]       energy(FeO)   = {energy:.3f} eV "
          f"(GET /rest/v1/materials/FeO/vasp/energy)")
    print(f"[api]       band_gap(NaCl) = {gap:.2f} eV")

    # 6. Remote data feeds local analysis (the pymatgen loop).
    structure = client.get_structure_by_formula("LiCoO2")
    print(f"[analysis]  fetched {structure!r}; density "
          f"{structure.density:.2f} g/cm^3")


if __name__ == "__main__":
    main()
