"""FireWorks failure handling live: re-runs, detours, manual intervention.

Submits three deliberately troubled calculations and watches the engine
repair them (§III-C3):

* a job killed at its walltime  -> automatic re-run with 2x walltime;
* an SCF divergence             -> detours that soften AMIX / switch ALGO;
* an unrepairable job           -> FIZZLED + the workflow flagged for
  manual intervention.

Run:  python examples/failure_recovery.py
"""

from repro.dft import structure_difficulty
from repro.docstore import DocumentStore
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.matgen import ELEMENTS, make_prototype


def find_hard_structure():
    """A structure whose SCF diverges under aggressive mixing."""
    for el in (e.symbol for e in ELEMENTS if e.is_metal):
        for proto in ("rocksalt", "zincblende", "cscl"):
            s = make_prototype(proto, [el, "O"])
            if structure_difficulty(s) > 0.9:
                return s
    raise RuntimeError("difficulty model broken")


def main() -> None:
    db = DocumentStore()["mp"]
    launchpad = LaunchPad(db)

    # 1. Walltime victim: asks for 1000s but needs several thousand.
    walltime_victim = vasp_firework(
        make_prototype("rocksalt", ["Mg", "O"]),
        name="walltime-victim",
        incar={"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500},
        walltime_s=1000.0, memory_mb=1e6,
    )

    # 2. SCF diverger: a hard structure with aggressive mixing.
    scf_diverger = vasp_firework(
        find_hard_structure(),
        name="scf-diverger",
        incar={"ENCUT": 520, "AMIX": 0.9, "ALGO": "Fast", "NELM": 40},
        walltime_s=1e9, memory_mb=1e6,
    )

    # 3. Hopeless: an unknown code nothing can assemble.
    hopeless = vasp_firework(
        make_prototype("rocksalt", ["Ca", "O"]),
        name="hopeless",
        incar={"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500},
        walltime_s=1e9, memory_mb=1e6,
    )
    hopeless.spec["code"] = "mystery_code"

    wf = Workflow([walltime_victim, scf_diverger, hopeless], name="troubled")
    launchpad.add_workflow(wf)
    Rocket(launchpad).rapidfire()

    for fw in (walltime_victim, scf_diverger, hopeless):
        doc = launchpad.engines.find_one({"fw_id": fw.fw_id})
        print(f"\n{doc['name']}: state={doc['state']}, "
              f"launches={doc['launches']}, detours={doc.get('detours', 0)}")
        if doc["name"] == "walltime-victim":
            print(f"  walltime escalated to "
                  f"{doc['spec']['resources']['walltime_s']:.0f}s "
                  "(re-runs with more resources)")
        if doc["name"] == "scf-diverger":
            incar = doc["spec"]["incar"]
            print(f"  final parameters after detours: AMIX={incar['AMIX']}, "
                  f"ALGO={incar['ALGO']}, NELM={incar['NELM']}")
            for step in doc.get("resubmit_history", []):
                print(f"    detour applied: {step['overrides']}")
        if doc["state"] == "FIZZLED":
            print(f"  fizzle reason: {doc.get('fizzle_reason')}")

    flagged = launchpad.flagged_workflows()
    print(f"\nworkflows flagged for manual intervention: "
          f"{[w['workflow_id'] for w in flagged]}")


if __name__ == "__main__":
    main()
