"""Run the Materials API over real HTTP with auth + rate limiting.

Starts the full dissemination stack — populated store, QueryEngine with
aliases, delegated auth (simulated Google), per-user rate limits — serves
it on a local port, and exercises it with raw HTTP requests and the
MPRester client, including the security failure modes.

Run:  python examples/materials_api_server.py
"""

import json
from urllib.error import HTTPError
from urllib.request import Request, urlopen

from repro.api import (
    AuthRegistry,
    MaterialsAPI,
    MaterialsAPIServer,
    MPRester,
    QueryEngine,
    RateLimiter,
    ThirdPartyProvider,
)
from repro.builders import MaterialsBuilder
from repro.datagen import SyntheticICSD
from repro.docstore import DocumentStore
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.matgen import mps_from_structure

ROBUST_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500}


def populate(db) -> None:
    structures = SyntheticICSD(seed=11).structures(25)
    records = [mps_from_structure(s) for s in structures]
    db["mps"].insert_many(records)
    launchpad = LaunchPad(db)
    launchpad.add_workflow(Workflow([
        vasp_firework(s, mps_id=r["mps_id"], incar=dict(ROBUST_INCAR),
                      walltime_s=1e9, memory_mb=1e6)
        for s, r in zip(structures, records)
    ]))
    Rocket(launchpad).rapidfire()
    MaterialsBuilder(db).run()


def main() -> None:
    db = DocumentStore()["mp"]
    populate(db)

    # Security stack: delegated auth + rate limiting (paper §IV-D1).
    auth = AuthRegistry()
    google = ThirdPartyProvider("google")
    auth.register_provider(google)
    token = auth.sign_in(google.assert_identity("alice@lbl.gov"))
    api_key = auth.issue_api_key(token)
    limiter = RateLimiter(max_requests=5, window_s=60.0)

    qe = QueryEngine(db, aliases={"gap": "band_gap"})
    api = MaterialsAPI(qe, auth=auth, rate_limiter=limiter, require_auth=True)

    with MaterialsAPIServer(api) as server:
        print(f"Materials API serving on {server.base_url}")
        formula = db["materials"].find_one({})["reduced_formula"]
        uri = f"/rest/v1/materials/{formula}/vasp/energy"

        # Unauthenticated request: 401.
        try:
            urlopen(server.base_url + uri, timeout=10)
        except HTTPError as err:
            print(f"GET {uri} without key        -> HTTP {err.code}")

        # Authenticated request: 200 + data.
        request = Request(server.base_url + uri,
                          headers={"X-API-KEY": api_key})
        with urlopen(request, timeout=10) as response:
            envelope = json.loads(response.read())
        print(f"GET {uri} with key           -> HTTP {response.status}, "
              f"energy={envelope['response'][0]['energy']:.3f} eV")

        # The MPRester client, and the rate limit kicking in.
        client = MPRester(base_url=server.base_url, api_key=api_key)
        served = 0
        try:
            for _ in range(10):
                client.get_material(formula)
                served += 1
        except Exception as exc:  # noqa: BLE001 - demonstration
            print(f"rate limit after {served + 2} requests: "
                  f"{type(exc).__name__}: {exc}")

        print(f"query log: {qe.query_log.summary()}")


if __name__ == "__main__":
    main()
