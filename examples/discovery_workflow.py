"""The Figure 3 discovery lifecycle, stage by stage, with a narrative.

A user (alice) mines the public database for an idea, submits candidate
crystals, computes them, keeps the results in a private sandbox, analyzes
stability with the open library, and finally publishes — the a → f loop the
Materials Project infrastructure exists to serve.

Run:  python examples/discovery_workflow.py
"""

from repro.api import QueryEngine, SandboxManager
from repro.builders import MaterialsBuilder, PhaseDiagramBuilder
from repro.datagen import SyntheticICSD
from repro.dft.energy import reference_energy_per_atom
from repro.docstore import DocumentStore
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.matgen import PDEntry, PhaseDiagram, Structure, mps_from_structure

ROBUST_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500}


def build_core_database(db) -> None:
    """The pre-existing public MP core (what alice mines)."""
    structures = SyntheticICSD(seed=5).structures(40)
    records = [mps_from_structure(s) for s in structures]
    db["mps"].insert_many(records)
    launchpad = LaunchPad(db)
    launchpad.add_workflow(Workflow([
        vasp_firework(s, mps_id=r["mps_id"], incar=dict(ROBUST_INCAR),
                      walltime_s=1e9, memory_mb=1e6)
        for s, r in zip(structures, records)
    ]))
    Rocket(launchpad).rapidfire()
    MaterialsBuilder(db).run()
    PhaseDiagramBuilder(db).run()


def main() -> None:
    db = DocumentStore()["mp"]
    build_core_database(db)
    qe = QueryEngine(db)
    launchpad = LaunchPad(db)
    sandboxes = SandboxManager(db)

    # (a) Ideas from mining the public data.
    mined = qe.query(
        {"band_gap": {"$gt": 1.0}, "e_above_hull": {"$lte": 0.02},
         "elements": "O"},
        limit=2, user="alice",
    )
    print(f"(a) mined {len(mined)} stable oxide insulators: "
          f"{[d['reduced_formula'] for d in mined]}")

    # (b) New candidates: the sulfide analogs, serialized as MPS records.
    candidates = [
        Structure.from_dict(d["structure"]).substitute({"O": "S"})
        for d in mined
    ]
    records = [mps_from_structure(s, source="user-idea", created_by="alice")
               for s in candidates]
    db["mps"].insert_many(records)
    print(f"(b) proposed sulfide analogs: "
          f"{[r['reduced_formula'] for r in records]}")

    # (c) Computation through the shared workflow engine.
    wf = Workflow([
        vasp_firework(s, mps_id=r["mps_id"], incar=dict(ROBUST_INCAR),
                      walltime_s=1e9, memory_mb=1e6)
        for s, r in zip(candidates, records)
    ], name="alice-sulfides")
    launchpad.add_workflow(wf)
    Rocket(launchpad, worker_name="alice").rapidfire()
    print(f"(c) workflow {wf.workflow_id} complete: "
          f"{launchpad.workflow_states(wf.workflow_id)}")

    # (d) Private sandbox for the raw results.
    sandbox = sandboxes.create_sandbox("alice", "sulfide-analogs")
    for record in records:
        task = launchpad.tasks.find_one({"mps_id": record["mps_id"]})
        task.pop("_id")
        sandboxes.submit(sandbox, "alice", "sandbox_results", task)
    print(f"(d) {len(records)} results in private sandbox {sandbox} "
          f"(bob sees {len(sandboxes.visible_query('bob', 'sandbox_results'))} docs)")

    # (e) Analysis: are the new phases stable?
    verdicts = []
    for task in sandboxes.visible_query("alice", "sandbox_results"):
        elements = sorted(task["elements"])
        refs = [PDEntry(el, reference_energy_per_atom(el)) for el in elements]
        entry = PDEntry(task["formula"], task["energy"])
        e_hull = PhaseDiagram(refs + [entry]).get_e_above_hull(entry)
        verdicts.append((task["formula"], e_hull))
        print(f"(e) {task['formula']:14s} e_above_hull = {e_hull:.3f} eV/atom"
              f" -> {'promising' if e_hull < 0.05 else 'metastable'}")

    # (f) Publication after the (simulated) patent filing.
    published = sandboxes.publish(sandbox, "alice", "sandbox_results")
    public = len(sandboxes.visible_query(None, "sandbox_results"))
    print(f"(f) published {published} documents; anonymous users now see "
          f"{public} sandbox results")


if __name__ == "__main__":
    main()
