"""Battery screening: the paper's Figure 1 workload as a user script.

Screens Li intercalation candidates across three framework families and ten
redox metals: generates charged/discharged pairs, computes their energies
through the workflow engine, builds the electrode collection, and prints
the voltage/capacity screen with the known-materials envelope — the
motivating use case from the paper's introduction.

Run:  python examples/battery_screening.py
"""

from repro.builders import BatteryBuilder, MaterialsBuilder
from repro.datagen import elemental_references, generate_battery_candidates
from repro.docstore import DocumentStore
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.matgen import mps_from_structure

ROBUST_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500}


def main() -> None:
    db = DocumentStore()["mp"]

    # Candidate electrode pairs + elemental references.
    pairs = generate_battery_candidates("Li")
    structures = []
    for pair in pairs:
        structures.extend([pair["discharged"], pair["charged"]])
    elements = sorted({el for s in structures for el in s.elements})
    structures.extend(elemental_references(elements))
    seen, unique = set(), []
    for s in structures:
        if s.structure_hash() not in seen:
            seen.add(s.structure_hash())
            unique.append(s)
    print(f"screening {len(pairs)} framework/metal pairs "
          f"({len(unique)} distinct structures)")

    # Compute everything through the workflow engine.
    launchpad = LaunchPad(db)
    records = [mps_from_structure(s) for s in unique]
    db["mps"].insert_many(records)
    launchpad.add_workflow(Workflow([
        vasp_firework(s, mps_id=r["mps_id"], incar=dict(ROBUST_INCAR),
                      walltime_s=1e9, memory_mb=1e6)
        for s, r in zip(unique, records)
    ]))
    print(f"computed {Rocket(launchpad).rapidfire()} structures")

    # Build materials + electrodes.
    MaterialsBuilder(db).run()
    built = BatteryBuilder(db, "Li").run_intercalation()
    print(f"built {built['intercalation_built']} intercalation electrodes\n")

    # The Figure 1 scatter, as text.
    electrodes = db["batteries"].find(
        {"battery_type": "intercalation"}
    ).sort("specific_energy", -1).to_list()
    print(f"{'framework':>12s} {'V (V)':>7s} {'C (mAh/g)':>10s} {'E (Wh/kg)':>10s}")
    for e in electrodes:
        marker = ""
        if 3.0 <= e["average_voltage"] <= 4.3 and 100 <= e["capacity_grav"] <= 200:
            marker = "   <- inside known-materials envelope"
        print(f"{e['framework']:>12s} {e['average_voltage']:7.2f} "
              f"{e['capacity_grav']:10.0f} {e['specific_energy']:10.0f}{marker}")
    best = electrodes[0]
    print(f"\nbest candidate: {best['framework']} "
          f"({best['specific_energy']:.0f} Wh/kg)")

    # The paper's follow-up screen: "screen promising candidates for other
    # important properties such as Li diffusivity (related to power)".
    from repro.matgen import Structure, estimate_diffusion

    print(f"\nrate screen of the top candidates "
          f"(geometric migration barriers):")
    print(f"{'framework':>12s} {'Ea (eV)':>8s} {'D@300K (cm^2/s)':>16s} "
          f"{'class':>14s}")
    for e in electrodes[:8]:
        doc = db["materials"].find_one({"material_id": e["discharged_material"]})
        est = estimate_diffusion(Structure.from_dict(doc["structure"]), "Li")
        print(f"{e['framework']:>12s} {est.barrier_ev:8.2f} "
              f"{est.diffusivity(300):16.2e} {est.as_dict()['rate_class']:>14s}")


if __name__ == "__main__":
    main()
