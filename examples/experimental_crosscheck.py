"""An experimentalist cross-checks the database — CIF in, annotation out.

The community loop the paper is built for: a synthesis lab measures a powder
pattern, exports their refined structure as a CIF, pulls the computed
reference from the Materials Project, compares diffraction patterns peak by
peak, and publicly annotates the material with the verdict (§III-A
"collaborative tools allow users to publicly annotate the data").

Run:  python examples/experimental_crosscheck.py
"""

from repro.api import AnnotationStore, QueryEngine, WebUI
from repro.builders import MaterialsBuilder, XRDBuilder
from repro.docstore import DocumentStore
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.matgen import (
    XRDCalculator,
    make_prototype,
    mps_from_structure,
    structure_from_cif,
    structure_to_cif,
)

ROBUST_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500}


def build_reference_database(db):
    """The computed MP side: MgO through the full pipeline."""
    mgo = make_prototype("rocksalt", ["Mg", "O"])
    record = mps_from_structure(mgo)
    db["mps"].insert_one(record)
    launchpad = LaunchPad(db)
    launchpad.add_workflow(Workflow([
        vasp_firework(mgo, mps_id=record["mps_id"], incar=dict(ROBUST_INCAR),
                      walltime_s=1e9, memory_mb=1e6)
    ]))
    Rocket(launchpad).rapidfire()
    MaterialsBuilder(db).run()
    XRDBuilder(db).run()
    return mgo


def main() -> None:
    db = DocumentStore()["mp"]
    computed_structure = build_reference_database(db)
    material = db["materials"].find_one({"reduced_formula": "MgO"})
    print(f"computed reference: {material['material_id']} "
          f"({material['reduced_formula']})")

    # --- the experimental side -------------------------------------------
    # The lab's refined cell is 1.2% larger (thermal expansion, real
    # samples never match 0 K calculations exactly).  It arrives as a CIF.
    lab_structure = computed_structure.scale_volume(
        computed_structure.volume * 1.036
    )
    cif_text = structure_to_cif(lab_structure, data_name="MgO_lab_300K")
    print(f"received CIF ({len(cif_text)} bytes, "
          f"data_{'MgO_lab_300K'})")

    imported = structure_from_cif(cif_text)
    lab_pattern = XRDCalculator().get_pattern(imported)
    ref_pattern_doc = db["xrd"].find_one(
        {"material_id": material["material_id"]}
    )

    # --- peak-by-peak comparison ------------------------------------------
    print(f"\n{'computed 2θ':>12s} {'lab 2θ':>8s} {'Δ2θ':>7s} "
          f"{'I_comp':>7s} {'I_lab':>6s}")
    shifts = []
    for ref_peak, lab_peak in zip(ref_pattern_doc["peaks"][:6],
                                  lab_pattern.as_dict()["peaks"][:6]):
        delta = lab_peak["two_theta"] - ref_peak["two_theta"]
        shifts.append(delta)
        print(f"{ref_peak['two_theta']:12.2f} {lab_peak['two_theta']:8.2f} "
              f"{delta:7.2f} {ref_peak['intensity']:7.0f} "
              f"{lab_peak['intensity']:6.0f}")
    mean_shift = sum(shifts) / len(shifts)
    verdict = (
        "peak positions agree to within thermal expansion; structure CONFIRMED"
        if abs(mean_shift) < 1.0
        else "systematic peak shift too large; needs investigation"
    )
    print(f"\nmean peak shift: {mean_shift:+.2f} deg -> {verdict}")

    # --- the public annotation ---------------------------------------------
    annotations = AnnotationStore(db)
    note = annotations.annotate(
        "synthesis-lab@university.edu",
        "materials",
        material["material_id"],
        f"Synthesized and measured powder XRD at 300 K. {verdict} "
        f"(mean peak shift {mean_shift:+.2f} deg vs computed pattern).",
    )
    reply = annotations.annotate(
        "mp-core-team",
        "materials",
        material["material_id"],
        "Thanks! Expected: computed patterns are athermal (0 K cell).",
        reply_to=note,
    )
    thread = annotations.for_target("materials", material["material_id"])
    print(f"\nannotation thread on {material['material_id']}:")
    for entry in thread:
        print(f"  {'  ' * entry['depth']}{entry['author']}: {entry['text']}")

    # And the Web UI page now shows the thread next to the pattern.
    page = WebUI(QueryEngine(db), annotations).material_page(
        material["material_id"]
    )
    print(f"\nWeb UI page renders {page.count('<svg')} SVG visualizations "
          f"and {page.count('annotation')} annotation elements")


if __name__ == "__main__":
    main()
