"""Observability tour: profiler, opcounters, traces, and /metrics.

Runs a small workflow while every observability signal is switched on, then
shows what each one captured: the MongoDB-style ``system.profile``
collection, ``serverStatus`` opcounters, the trace tree of one firework
launch, a *stitched* distributed trace crossing client → proxy → server,
the provenance DAG of a built material, and the Prometheus-style
``/metrics`` document served live over HTTP.

Run:  python examples/observability_tour.py
"""

import urllib.request

from repro.api import MaterialsAPI, MaterialsAPIServer, QueryEngine
from repro.api.querylog import access_top
from repro.builders import MaterialsBuilder
from repro.docstore import DatastoreProxy, DatastoreServer, DocumentStore
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.matgen import make_prototype, mps_from_structure
from repro.obs import (
    TelemetryWarehouse,
    format_provenance,
    format_trace,
    get_registry,
    provenance_graph,
    recent_traces,
    span,
)

ROBUST_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500}


def show_trace(spn, indent=0):
    attrs = " ".join(f"{k}={v}" for k, v in spn.attributes.items())
    print(f"[trace]     {'  ' * indent}{spn.name} "
          f"{spn.duration_ms:.2f}ms {attrs}")
    for child in spn.children:
        show_trace(child, indent + 1)


def main() -> None:
    store = DocumentStore()
    db = store["mp"]

    # 1. Profiling level 2: record *every* operation, like `db.setProfilingLevel(2)`.
    db.set_profiling_level(2)

    # 2. Run one calculation under tracing — the launch opens a root span and
    #    the SCF loop and each docstore write attach themselves as children.
    structure = make_prototype("rocksalt", ["Na", "Cl"])
    pad = LaunchPad(db)
    pad.add_workflow(Workflow([
        vasp_firework(structure, mps_id=mps_from_structure(structure)["mps_id"],
                      incar=dict(ROBUST_INCAR), walltime_s=1e9, memory_mb=1e6)
    ]))
    Rocket(pad).rapidfire()
    MaterialsBuilder(db).run()

    for trace in recent_traces():
        if trace.name == "firework.launch":
            show_trace(trace)

    # 3. The profiler fed a real, queryable system.profile collection.
    slow = db["system.profile"].find({"op": "find"}).to_list()
    print(f"[profiler]  {db['system.profile'].count_documents()} ops recorded; "
          f"{len(slow)} finds, e.g. "
          f"{ {k: slow[0][k] for k in ('ns', 'op', 'millis', 'nreturned')} }")

    # 4. serverStatus-style opcounters aggregate the same op stream.
    print(f"[status]    opcounters = {db.server_status()['opcounters']}")

    # 5. Latency distributions live in the metrics registry.
    summary = get_registry().histogram("repro_docstore_op_millis").summary(
        db="mp", op="query")
    print(f"[metrics]   query latency: p50={summary['p50']:.3f}ms "
          f"p95={summary['p95']:.3f}ms p99={summary['p99']:.3f}ms "
          f"(n={summary['count']})")

    # 6. Distributed tracing: the same query issued through the full
    #    client → proxy → server wire topology, under one root span.  Each
    #    hop joins the trace via the "$trace" wire field; exporting the
    #    server-side buffer and stitching yields one tree across processes.
    with DatastoreServer(store) as server:
        with DatastoreProxy("127.0.0.1", server.port) as proxy:
            with proxy.client() as client:
                with span("tour.remote_query") as root:
                    client["mp"]["tasks"].find({"state": "COMPLETED"})
                exported = client.export_traces(root.trace_id)
    stitched = format_trace([root.to_dict()] + exported)
    for line in stitched.splitlines():
        print(f"[stitched]  {line}")

    # 7. The provenance ledger: every material resolves back through its
    #    source tasks to the fireworks and workflow that produced them.
    material = db["materials"].find_one({})
    graph = provenance_graph(db, material["material_id"])
    print(f"[provenance] {len(graph['nodes'])} nodes, "
          f"{len(graph['edges'])} edges for {material['material_id']}")
    for line in format_provenance(graph).splitlines():
        print(f"[provenance] {line}")

    # 8. The API server scrapes the same registry at GET /metrics, lists
    #    in-flight ops at GET /ops, and serves the DAG at GET /provenance.
    #    With a telemetry warehouse attached it also writes every request
    #    into the queryable telemetry.access collection.
    warehouse = TelemetryWarehouse(store)
    warehouse.tail_sampler.install()
    api = MaterialsAPI(QueryEngine(db))
    with MaterialsAPIServer(api, warehouse=warehouse) as srv:
        urllib.request.urlopen(
            f"{srv.base_url}/rest/v1/materials/NaCl/vasp/band_gap").read()
        text = urllib.request.urlopen(f"{srv.base_url}/metrics").read().decode()
        ops = urllib.request.urlopen(f"{srv.base_url}/ops").read().decode()
    lines = [ln for ln in text.splitlines()
             if ln.startswith("repro_api_quer") or ln.startswith("# TYPE repro_api")]
    print("[/metrics]  " + "\n[/metrics]  ".join(lines))
    print(f"[/ops]      {ops}")

    # 9. The telemetry warehouse dogfoods the datastore: one tick snapshots
    #    the metrics registry into telemetry.metrics (counters as deltas),
    #    downsamples into rollup buckets, and the access log above is
    #    already sitting in an indexed collection.  TTL indexes on every
    #    telemetry collection bound retention — the reaper sweep below
    #    deletes points planted with an already-expired timestamp.
    tick = warehouse.tick()
    print(f"[warehouse] tick wrote {tick['metric_points']} metric points; "
          f"rollup mode={tick['rollup']['mode']}")
    for row in access_top(warehouse.access.collection, by="count", limit=3):
        print(f"[warehouse] access {row['endpoint']}: {row['count']} reqs, "
              f"mean {row['mean_ms']:.2f}ms")
    plan = warehouse.db["access"].explain(
        {"endpoint": "rest/v1/materials", "ts": {"$gte": 0.0}})
    print(f"[warehouse] access query plan: {plan['planSummary']}")
    warehouse.db["metrics"].insert_one(
        {"ts": 1.0, "name": "tour_stale_point", "value": 0.0})
    reaped = store.start_ttl_reaper().sweep()
    store.stop_ttl_reaper()
    print(f"[warehouse] ttl sweep reaped {reaped} expired docs")

    # 10. Continuous profiling: sample a hot loop's stacks, attribute a
    #     lock wait to its (waiter, holder) call sites, and dissect an
    #     aggregation pipeline stage by stage.  The same data is live on
    #     GET /debug/profile|flamegraph|locks and `repro profile`.
    import threading
    import time as _time

    from repro.obs import SamplingProfiler

    profiler = SamplingProfiler(hz=100)
    stop = threading.Event()

    def tour_hot_loop():
        while not stop.is_set():
            sum(i * i for i in range(200))

    hot = threading.Thread(target=tour_hot_loop, daemon=True)
    hot.start()
    for _ in range(50):  # deterministic passes instead of the daemon
        profiler.sample_once()
        _time.sleep(0.002)
    stop.set()
    hot.join()
    snap = profiler.snapshot(limit=3)
    print(f"[profiler]  {snap['samples']} samples over {snap['passes']} "
          f"passes, {snap['distinct_stacks']} distinct stacks")
    for line in profiler.folded(limit=3):
        print(f"[profiler]  {line}")

    coll = db["materials"]
    held, release = threading.Event(), threading.Event()

    def tour_writer_hold():
        with coll._lock.write():
            held.set()
            release.wait(timeout=5)

    blocker = threading.Thread(target=tour_writer_hold, daemon=True)
    blocker.start()
    held.wait(timeout=5)
    reader = threading.Thread(
        target=lambda: coll.find_one({}), daemon=True)
    reader.start()
    _time.sleep(0.02)
    release.set()
    reader.join(timeout=5)
    blocker.join(timeout=5)
    for row in store.lock_report(limit=2)["top_contended"]:
        print(f"[locks]     {row['mode']} wait {row['wait_ms']:.1f}ms: "
              f"{row['waiter']} blocked by {row['holder']}")

    report = coll.aggregate([
        {"$match": {"band_gap": {"$gte": 0.0}}},
        {"$group": {"_id": "$reduced_formula",
                    "gap": {"$avg": "$band_gap"}}},
        {"$sort": {"gap": -1}},
    ], explain=True)
    print(f"[aggregate] {report['ns']} pipeline={report['pipeline']} "
          f"total {report['executionTimeMillis']:.2f}ms")
    for stage in report["stages"]:
        extra = (f" state={stage['state_size']}"
                 if "state_size" in stage else "")
        print(f"[aggregate] {stage['stage']:<8s} "
              f"in={stage['docs_in']} out={stage['docs_out']} "
              f"{stage['elapsed_ms']:.3f}ms{extra}")

    # 11. The flight recorder: an out-of-band black box appending full
    #     diagnostic snapshots (serverStatus, /proc, metric deltas) to a
    #     size-capped on-disk ring of delta-compressed chunks, plus a
    #     stall watchdog that dumps every thread's stack the moment a
    #     lock, the journal committer, or wire dispatch wedges.  After a
    #     crash the ring alone reconstructs the final pre-crash window —
    #     `repro diagnose --crash` never has to open the datastore.
    import tempfile

    from repro.obs.flight import (
        FlightRecorder,
        StallWatchdog,
        build_crash_report,
        decode_ring,
    )

    flight_dir = tempfile.mkdtemp(prefix="tour-flight-")
    rec = FlightRecorder(store, flight_dir, interval_s=60.0)
    for _ in range(5):
        db["materials"].find_one({})
        rec.capture()
    rec.flush()

    dog = StallWatchdog(rec, store=store, stall_timeout_s=0.01)
    held, release = threading.Event(), threading.Event()

    def tour_lock_wedge():
        with coll._lock.write():
            held.set()
            release.wait(timeout=5)

    wedge = threading.Thread(target=tour_lock_wedge, daemon=True)
    wedge.start()
    held.wait(timeout=5)
    dog.check_once()          # arms the probe: lock failure must sustain
    _time.sleep(0.05)
    for event in dog.check_once():
        print(f"[flight] stall {event['probe']}: {event['detail']}; "
              f"{len(event['stacks'])} thread stacks dumped")
    release.set()
    wedge.join(timeout=5)
    rec.stop()

    ring = decode_ring(flight_dir)
    print(f"[flight] ring decoded: {ring['records']} records in "
          f"{ring['chunks'] if isinstance(ring['chunks'], int) else len(ring['chunks'])} chunks -> "
          f"{len(ring['snapshots'])} snapshots, {len(ring['events'])} events")
    final = build_crash_report(flight_dir, window_s=60.0)
    print(f"[flight] pre-crash window: {final['snapshots_in_window']} "
          f"snapshots, final opcounters {final['final']['opcounters']}")

    # 12. The sharded cluster: shard a collection, watch a newly added
    #     shard start empty (imbalance), let the balancer migrate chunks
    #     to it (copy -> delta drain -> epoch-bumped commit), then show a
    #     shard-key query routing to a single shard while everything else
    #     scatter-gathers.  Cluster events (migrations, elections) land in
    #     telemetry.events through the same warehouse as step 9.
    from repro.docstore import Balancer, ShardedCluster

    cluster = ShardedCluster(n_replicas=3, split_threshold=40,
                             event_sink=warehouse.record_flight_event)
    cluster.add_shard("shard0")
    materials = cluster.shard_collection("mp.materials", "material_id",
                                         strategy="range")
    materials.insert_many([
        {"material_id": f"mp-{i:05d}", "nelements": 1 + i % 4}
        for i in range(200)
    ])
    cluster.add_shard("shard1")
    counts = cluster.config.chunk_counts("mp.materials")
    print(f"[cluster] skewed ingest: chunks per shard = "
          f"{dict(sorted(counts.items()))}")

    balancer = Balancer(cluster)
    moves = 0
    while True:
        moved = balancer.balance_once()
        if not moved:
            break
        moves += len(moved)
    counts = cluster.config.chunk_counts("mp.materials")
    print(f"[cluster] balancer moved {moves} chunks -> "
          f"{dict(sorted(counts.items()))} "
          f"(balance factor {cluster.balance_factor('mp.materials'):.2f})")

    targeted = materials.explain({"material_id": "mp-00007"})
    scatter = materials.explain({"nelements": 3})
    print(f"[cluster] explain material_id=mp-00007: {targeted['mode']} "
          f"({len(targeted['shards'])} of {len(cluster.shards)} shards)")
    print(f"[cluster] explain nelements=3: {scatter['mode']} "
          f"({len(scatter['shards'])} of {len(cluster.shards)} shards)")

    primary_before = cluster.shard("shard0").rs.primary.name
    cluster.shard("shard0").rs.kill(primary_before)
    cluster.await_primaries()
    materials.insert_one({"material_id": "mp-99999", "nelements": 2})
    print(f"[cluster] killed primary {primary_before}; re-elected "
          f"{cluster.shard('shard0').rs.primary.name} "
          f"(term {cluster.shard('shard0').rs.term}), writes resumed")
    migrations = [e for e in warehouse.flight_events("migration")]
    elections = [e for e in warehouse.flight_events("election")]
    print(f"[cluster] telemetry.events recorded {len(migrations)} "
          f"migrations, {len(elections)} elections")
    cluster.stop()


if __name__ == "__main__":
    main()
