"""Observability tour: profiler, opcounters, traces, and /metrics.

Runs a small workflow while every observability signal is switched on, then
shows what each one captured: the MongoDB-style ``system.profile``
collection, ``serverStatus`` opcounters, the trace tree of one firework
launch, and the Prometheus-style ``/metrics`` document served live over
HTTP.

Run:  python examples/observability_tour.py
"""

import urllib.request

from repro.api import MaterialsAPI, MaterialsAPIServer, QueryEngine
from repro.builders import MaterialsBuilder
from repro.docstore import DocumentStore
from repro.fireworks import LaunchPad, Rocket, Workflow, vasp_firework
from repro.matgen import make_prototype, mps_from_structure
from repro.obs import get_registry, recent_traces

ROBUST_INCAR = {"ENCUT": 520, "AMIX": 0.15, "ALGO": "All", "NELM": 500}


def show_trace(spn, indent=0):
    attrs = " ".join(f"{k}={v}" for k, v in spn.attributes.items())
    print(f"[trace]     {'  ' * indent}{spn.name} "
          f"{spn.duration_ms:.2f}ms {attrs}")
    for child in spn.children:
        show_trace(child, indent + 1)


def main() -> None:
    store = DocumentStore()
    db = store["mp"]

    # 1. Profiling level 2: record *every* operation, like `db.setProfilingLevel(2)`.
    db.set_profiling_level(2)

    # 2. Run one calculation under tracing — the launch opens a root span and
    #    the SCF loop and each docstore write attach themselves as children.
    structure = make_prototype("rocksalt", ["Na", "Cl"])
    pad = LaunchPad(db)
    pad.add_workflow(Workflow([
        vasp_firework(structure, mps_id=mps_from_structure(structure)["mps_id"],
                      incar=dict(ROBUST_INCAR), walltime_s=1e9, memory_mb=1e6)
    ]))
    Rocket(pad).rapidfire()
    MaterialsBuilder(db).run()

    for trace in recent_traces():
        if trace.name == "firework.launch":
            show_trace(trace)

    # 3. The profiler fed a real, queryable system.profile collection.
    slow = db["system.profile"].find({"op": "find"}).to_list()
    print(f"[profiler]  {db['system.profile'].count_documents()} ops recorded; "
          f"{len(slow)} finds, e.g. "
          f"{ {k: slow[0][k] for k in ('ns', 'op', 'millis', 'nreturned')} }")

    # 4. serverStatus-style opcounters aggregate the same op stream.
    print(f"[status]    opcounters = {db.server_status()['opcounters']}")

    # 5. Latency distributions live in the metrics registry.
    summary = get_registry().histogram("repro_docstore_op_millis").summary(
        db="mp", op="query")
    print(f"[metrics]   query latency: p50={summary['p50']:.3f}ms "
          f"p95={summary['p95']:.3f}ms p99={summary['p99']:.3f}ms "
          f"(n={summary['count']})")

    # 6. The API server scrapes the same registry at GET /metrics.
    api = MaterialsAPI(QueryEngine(db))
    with MaterialsAPIServer(api) as srv:
        urllib.request.urlopen(
            f"{srv.base_url}/rest/v1/materials/NaCl/vasp/band_gap").read()
        text = urllib.request.urlopen(f"{srv.base_url}/metrics").read().decode()
    lines = [ln for ln in text.splitlines()
             if ln.startswith("repro_api_quer") or ln.startswith("# TYPE repro_api")]
    print("[/metrics]  " + "\n[/metrics]  ".join(lines))


if __name__ == "__main__":
    main()
